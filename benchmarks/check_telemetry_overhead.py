"""CI gate: disabled telemetry < 3 %, audit-enabled tick < 5 % overhead.

The controller guards its hot-path span sites behind a cached
``_tel_on`` flag (set once at construction), so a clean tier-2 scaling
tick with telemetry disabled pays only branch checks — no null-span
``with`` blocks, no method calls into the backend.  Per tick that is:
one flag check in ``_scaling_tick``, two attribute reads plus three
local flag checks in ``_scaling_tick_body``, and an attribute read plus
a flag check in ``_apply_gpu_frequencies``.

This script measures that probe sequence in isolation (minus the bare
loop cost) and divides it by the wall time of the *genuine*
``GreenGpuController._scaling_tick`` driven against a calibrated
testbed — no synthetic stand-in for the denominator.  The minimum over
several trials is used for each quantity (minimums are robust to
scheduler noise on shared CI runners).  Exit status 0 iff

    probe_cost / (tick_cost - probe_cost) < BUDGET

The decision audit trail (:mod:`repro.telemetry.audit`) has its own
budget: its ``note_*`` writers append raw tuples and copy one small
weight matrix per tick, deferring every derivation to render time, so an
audit-enabled tick must stay within ``--audit-budget`` (default 5 %) of
the bare tick.  Measured the same way: real controller, real testbed,
minimum over trials.

The distributed-tracing layer rides the same span sites, so the same
disabled-path gate covers it: a disabled run never derives a span id.
Two informational rows size the *enabled* tracing cost — the null
facade's trace surface (``current_context``/``child_context``/
``record_span`` no-ops, what library code pays when it threads contexts
unconditionally) and a live span enter/exit including deterministic id
derivation — so a regression in either is visible in the CI log before
it is felt in a run.

Run:  python benchmarks/check_telemetry_overhead.py [--budget 0.03]
          [--audit-budget 0.05]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.config import GreenGpuConfig
from repro.core.policies import GreenGpuPolicy
from repro.sim.platform import make_testbed
from repro.telemetry import NOOP

TICKS = 50_000
TRIALS = 7


class _Carrier:
    """Instance-attribute stand-in for the controller's cached state."""

    def __init__(self) -> None:
        self._tel_on = NOOP.enabled
        self.telemetry = NOOP
        self.recorder = None


def bench_baseline() -> float:
    """Bare loop cost, subtracted from the probe measurement."""
    t0 = time.perf_counter()
    for _ in range(TICKS):
        pass
    return time.perf_counter() - t0


def bench_probes() -> float:
    """The exact per-tick probe sequence of a clean disabled scaling tick."""
    self = _Carrier()
    t0 = time.perf_counter()
    for _ in range(TICKS):
        if self._tel_on:                    # _scaling_tick wrapper
            pass
        telemetry = self.telemetry          # _scaling_tick_body prologue
        tel_on = self._tel_on
        if tel_on:                          # monitor_read span site
            pass
        if tel_on:                          # wma_update span site
            pass
        if tel_on:                          # wma event/gauge block
            pass
        telemetry = self.telemetry          # _apply_gpu_frequencies
        if self._tel_on:                    # freq_actuation span site
            pass
        if tel_on or self.recorder is not None:  # power/trace block
            pass
    return time.perf_counter() - t0


def bench_noop_trace() -> float:
    """The disabled facade's tracing surface, per call triple."""
    t0 = time.perf_counter()
    for _ in range(TICKS):
        context = NOOP.current_context()
        NOOP.child_context("tick")
        NOOP.record_span(context, "tick", wall_s=0.0)
    return time.perf_counter() - t0


def bench_enabled_span() -> float:
    """Live span enter/exit: stack push/pop + deterministic id derivation."""
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    t0 = time.perf_counter()
    for _ in range(TICKS):
        with telemetry.span("tick"):
            pass
    return time.perf_counter() - t0


def bench_tick(audit: bool = False) -> float:
    """Real scaling ticks: monitor query, WMA step, actuate + verify."""
    from repro.telemetry.audit import AuditTrail

    controller = GreenGpuPolicy(config=GreenGpuConfig()).make_controller(
        None, audit=AuditTrail() if audit else None
    )
    controller.attach(make_testbed())
    interval = controller.config.scaling_interval_s
    tick = controller._scaling_tick
    t0 = time.perf_counter()
    for i in range(TICKS):
        tick(i * interval)
    elapsed = time.perf_counter() - t0
    controller.detach()
    return elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.03,
                        help="allowed fractional overhead (default 0.03)")
    parser.add_argument("--audit-budget", type=float, default=0.05,
                        help="allowed audit-enabled tick overhead "
                             "(default 0.05)")
    args = parser.parse_args(argv)

    baseline = min(bench_baseline() for _ in range(TRIALS))
    probes = min(bench_probes() for _ in range(TRIALS))
    noop_trace = min(bench_noop_trace() for _ in range(TRIALS))
    enabled_span = min(bench_enabled_span() for _ in range(TRIALS))
    tick = min(bench_tick() for _ in range(TRIALS))
    tick_audit = min(bench_tick(audit=True) for _ in range(TRIALS))
    probe_cost = max(probes - baseline, 0.0)
    overhead = probe_cost / (tick - probe_cost)
    audit_overhead = (tick_audit - tick) / tick

    per_tick = 1e9 / TICKS
    print(f"probe sequence : {probe_cost * per_tick:9.1f} ns/tick "
          f"(min of {TRIALS}, {TICKS} ticks)")
    print(f"noop trace api : "
          f"{max(noop_trace - baseline, 0.0) * per_tick:9.1f} ns/triple "
          f"(informational)")
    print(f"enabled span   : "
          f"{max(enabled_span - baseline, 0.0) * per_tick:9.1f} ns/span "
          f"(informational)")
    print(f"scaling tick   : {tick * per_tick:9.1f} ns/tick")
    print(f"audited tick   : {tick_audit * per_tick:9.1f} ns/tick")
    print(f"disabled-telemetry overhead: {overhead:+.2%} "
          f"(budget {args.budget:.0%})")
    print(f"audit-trail overhead       : {audit_overhead:+.2%} "
          f"(budget {args.audit_budget:.0%})")
    failed = False
    if overhead >= args.budget:
        print("FAIL: disabled telemetry exceeds the overhead budget",
              file=sys.stderr)
        failed = True
    if audit_overhead >= args.audit_budget:
        print("FAIL: the audit trail exceeds its per-tick budget",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
