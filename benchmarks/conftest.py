"""Shared helpers for the benchmark harness.

Every paper artifact (table/figure) has one benchmark module that
regenerates it at a reduced time scale, attaches the reproduced numbers
to the benchmark record (``extra_info``), and asserts the paper's shape
claims.  Run with::

    pytest benchmarks/ --benchmark-only

Each experiment executes exactly once per benchmark (rounds=1): the
interesting output is the reproduced artifact, not the harness's wall
time, and the simulator is deterministic anyway.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` once under pytest-benchmark and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return _run
