"""Fleet-scale gate: 1000 nodes, one budget, three allocators.

Runs the canonical fleet benchmark — a 1000-node diurnal scenario under
a tight datacenter budget (35 % of the fleet's headroom above its floor
draw) — once per allocator, and records the numbers the fleet subsystem
promises:

- **equal enforcement** — every allocator ends with the same cap
  violation count (zero: caps are enforced as conservative frequency
  ceilings, so no policy can trade violations for energy);
- **the demand-aware win** — the efficiency-weighted allocator finishes
  the fleet's backlog sooner than the static uniform cap and therefore
  spends less total wall energy to the fleet makespan (the idle-tail
  margin of racing the datacenter to idle).

The simulation is deterministic, so the committed baseline
(``BENCH_8.json``) transfers across machines; ``--check`` re-measures
and gates both the invariants above and the per-allocator energies
against the baseline.

Modes::

    python benchmarks/fleet_scale.py                  # measure + print
    python benchmarks/fleet_scale.py --out BENCH_8.json    # write baseline
    python benchmarks/fleet_scale.py --check BENCH_8.json  # CI gate
    python benchmarks/fleet_scale.py --nodes 100           # quick look
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.fleet import make_scenario, run_fleet

N_NODES = 1000
SEED = 42
BUDGET_FRAC = 0.35
SCENARIO = "diurnal"
ALLOCATORS = ("uniform-cap", "proportional-share", "efficiency-weighted")

#: The gate's absolute floor on the efficiency-weighted allocator's
#: energy saving over the uniform cap (fraction of uniform energy).
SAVING_FLOOR = 0.005


def measure(n_nodes: int = N_NODES) -> dict:
    scenario = make_scenario(SCENARIO, n_nodes=n_nodes, seed=SEED,
                             budget_frac=BUDGET_FRAC)
    allocators = {}
    for name in ALLOCATORS:
        t0 = time.perf_counter()
        result = run_fleet(scenario, name)
        allocators[name] = {
            "energy_j": round(result.energy_j, 3),
            "measured_energy_j": round(result.measured_energy_j, 3),
            "idle_tail_energy_j": round(result.idle_tail_energy_j, 3),
            "makespan_s": round(result.makespan_s, 6),
            "violation_ticks": result.violation_ticks,
            "plan_ticks": result.plan_ticks,
            "wall_s": round(time.perf_counter() - t0, 3),
        }
    uniform = allocators["uniform-cap"]["energy_j"]
    efficient = allocators["efficiency-weighted"]["energy_j"]
    return {
        "bench_schema": 1,
        "scenario": SCENARIO,
        "n_nodes": n_nodes,
        "seed": SEED,
        "budget_frac": BUDGET_FRAC,
        "saving_floor": SAVING_FLOOR,
        "allocators": allocators,
        "saving_frac": round((uniform - efficient) / uniform, 6),
    }


def report(results: dict) -> None:
    print(f"fleet_scale: {results['n_nodes']} nodes, {results['scenario']}, "
          f"budget {results['budget_frac']:.0%} of headroom, "
          f"seed {results['seed']}")
    for name, row in results["allocators"].items():
        print(f"  {name:22s} energy {row['energy_j'] / 1e6:9.4f} MJ   "
              f"makespan {row['makespan_s']:8.1f} s   "
              f"violations {row['violation_ticks']}   "
              f"({row['wall_s']:.1f}s wall)")
    print(f"  efficiency-weighted saves {100 * results['saving_frac']:.2f}% "
          "fleet energy vs uniform-cap")


def check(results: dict, baseline_path: Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []

    rows = results["allocators"]
    violations = {name: row["violation_ticks"] for name, row in rows.items()}
    if len(set(violations.values())) != 1:
        failures.append(f"cap violation counts differ: {violations}")
    base_violations = {
        name: row["violation_ticks"]
        for name, row in baseline["allocators"].items()
    }
    if violations != base_violations:
        failures.append(
            f"violation counts {violations} != baseline {base_violations}"
        )

    uniform = rows["uniform-cap"]["energy_j"]
    efficient = rows["efficiency-weighted"]["energy_j"]
    if not efficient < uniform:
        failures.append(
            f"efficiency-weighted ({efficient:.0f} J) does not beat "
            f"uniform-cap ({uniform:.0f} J)"
        )
    floor = baseline.get("saving_floor", SAVING_FLOOR)
    if results["saving_frac"] < floor:
        failures.append(
            f"saving {results['saving_frac']:.4f} below floor {floor:.4f}"
        )

    for name, row in baseline["allocators"].items():
        measured = rows.get(name)
        if measured is None:
            failures.append(f"allocator {name} missing from measurement")
            continue
        base_energy = row["energy_j"]
        drift = abs(measured["energy_j"] - base_energy) / base_energy
        if drift > tolerance:
            failures.append(
                f"{name}: energy {measured['energy_j']:.0f} J drifts "
                f"{100 * drift:.2f}% from baseline {base_energy:.0f} J "
                f"(tolerance {100 * tolerance:.2f}%)"
            )

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print("fleet_scale gate OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None, metavar="FILE",
                        help="write measured results as the new baseline")
    parser.add_argument("--check", type=Path, default=None, metavar="FILE",
                        help="gate the measurement against a committed "
                             "baseline (CI mode)")
    parser.add_argument("--tolerance", type=float, default=0.005,
                        help="allowed fractional energy drift vs the "
                             "baseline (the sim is deterministic; default "
                             "0.5%%)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the fleet size (measure mode only)")
    args = parser.parse_args(argv)

    if args.nodes is not None and args.check is not None:
        parser.error("--nodes cannot be combined with --check (the gate "
                     "compares the baseline's own fleet size)")

    results = measure(args.nodes if args.nodes is not None else N_NODES)
    report(results)
    if args.out is not None:
        args.out.write_text(json.dumps(results, indent=2, sort_keys=True)
                            + "\n")
        print(f"baseline written to {args.out}")
    if args.check is not None:
        return check(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
