"""Perf gate for the fast-path engine, the result cache, and batching.

Four scenarios, all reported as hardware-independent *speedup ratios* so
the committed baseline (``BENCH_10.json``) transfers across machines:

- **single_run** — one GreenGPU kmeans run on the fast engine vs the
  same run on a *legacy harness* that faithfully reproduces the pre-PR
  hot path: per-call roofline estimates (no ``_cached_estimate``), lazy
  queue-head scans on every query (no ``_current_head``), checked
  uncached power-model calls, the per-window meter loop, and the
  pop-and-push clock dispatch.  The two paths must be bit-identical
  (the run aborts if not) — the ratio is pure overhead removed, not a
  semantic change.
- **warm_sweep** — a supervised static-division sweep with an empty
  result cache (cold) vs the identical sweep again over the same cache
  (warm, every point served as ``skipped_cached``).
- **batched_sweep** — a 256-point static-division grid through the
  lockstep batch engine vs the legacy supervised sweep path (run_jobs +
  legacy harness), measured on a probe subset and extrapolated by point
  count.  Lane equivalence against scalar ``run_workload`` is asserted
  bit-for-bit before any timing (the run aborts on divergence).
- **batched_sweep_vs_scalar** — the same batched grid vs the *current*
  scalar fast path, isolating the batching win from the fast-path win.

Each quantity is the minimum over several interleaved trials (minimums
are robust to scheduler noise on shared CI runners; interleaving defeats
thermal/frequency drift favouring whichever side runs first).  The two
batched ratios divide a batch time and a per-point time measured in the
same process moments apart, so machine-wide load cancels out.

Modes::

    python benchmarks/perf_suite.py                  # measure + print
    python benchmarks/perf_suite.py --out BENCH_10.json    # write baseline
    python benchmarks/perf_suite.py --check BENCH_10.json  # CI gate

The check mode re-measures and requires each scenario's speedup to be at
least the absolute floor (3x single-run, 10x warm sweep, 100x batched
sweep over legacy, 4x batched over scalar — the PRs' acceptance bars)
*and* within ``--tolerance`` of the committed baseline ratio, whichever
is stricter.  Exit status 0 iff all gates hold.
"""

from __future__ import annotations

import argparse
import heapq
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.serialize import result_to_dict
from repro.cache import ResultCache
from repro.cache.keys import ENGINE_SCHEMA_VERSION
from repro.core.policies import GreenGpuPolicy, StaticPolicy
from repro.experiments.common import scaled_config, scaled_options, scaled_workload
from repro.harness.supervisor import run_jobs
from repro.harness.suite_jobs import sweep_specs
from repro.runtime.executor import run_workload
from repro.sim.cpu import CpuDevice
from repro.sim.gpu import GpuDevice
from repro.sim.platform import HeteroSystem

TRIALS = 7
COLD_TRIALS = 3

#: Width of the batched static-division grid (the N in "N=256").
BATCH_N = 256

FLOORS = {
    "single_run": 3.0,
    "warm_sweep": 10.0,
    "batched_sweep": 100.0,
    "batched_sweep_vs_scalar": 4.0,
}

# -- legacy harness (pre-PR hot path, reproduced faithfully) -----------


def _legacy_accumulate(meter, p: float, dt: float) -> None:
    """Pre-PR PowerMeter.accumulate: walk every sample window in a loop."""
    meter.energy_j += p * dt
    meter.elapsed_s += dt
    remaining = dt
    while remaining > 0.0:
        room = meter.sample_period_s - meter._window_elapsed
        step = min(remaining, room)
        meter._window_energy += p * step
        meter._window_elapsed += step
        remaining -= step
        if meter._window_elapsed >= meter.sample_period_s - 1e-12:
            meter.samples.append(meter._window_energy / meter._window_elapsed)
            meter._window_energy = 0.0
            meter._window_elapsed = 0.0


def _legacy_advance_to(clock, when: float) -> None:
    """Pre-PR SimClock.advance_to: pop-and-push dispatch, cancelled scan."""
    while True:
        while clock._heap and clock._heap[0].cancelled:
            heapq.heappop(clock._heap)
        deadline = clock._heap[0].deadline if clock._heap else None
        if deadline is None or deadline > when:
            break
        task = heapq.heappop(clock._heap)
        clock._now = max(clock._now, task.deadline)
        if task.period > 0.0 and not task.cancelled:
            task.deadline += task.period
            heapq.heappush(clock._heap, task)
        clock._in_dispatch = True
        try:
            task.callback(clock._now)
        finally:
            clock._in_dispatch = False
    clock._now = max(clock._now, when)


def _legacy_step(self, horizon=None):
    """Pre-PR HeteroSystem.step: meter source calls, separate clock call."""
    dt = self._next_dt(horizon)
    for meter in (self.meter_cpu, self.meter_gpu):
        _legacy_accumulate(meter, meter.instantaneous_power(), dt)
    self.gpu.advance(dt)
    self.cpu.advance(dt)
    _legacy_advance_to(self.clock, self.clock.now + dt)
    return dt


#: (class, attribute, pre-PR implementation).  Replacing these five cache
#: reads with their recompute-every-call bodies plus the legacy step is
#: exactly the seed engine; everything else is shared code.
_LEGACY_PATCHES = [
    (GpuDevice, "_cached_estimate", lambda self, k: self._phase_estimate(k)),
    (GpuDevice, "_current_head", lambda self: self._queue.head),
    (GpuDevice, "instantaneous_power", GpuDevice.instantaneous_power_uncached),
    (CpuDevice, "_cached_estimate", lambda self, k: self._phase_estimate(k)),
    (CpuDevice, "_current_head", lambda self: self._queue.head),
    (CpuDevice, "instantaneous_power", CpuDevice.instantaneous_power_uncached),
    (HeteroSystem, "step", _legacy_step),
]


class legacy_engine:
    """Context manager swapping the fast paths for their pre-PR bodies."""

    def __enter__(self):
        self._saved = [(c, n, c.__dict__[n]) for c, n, _ in _LEGACY_PATCHES]
        for cls, name, impl in _LEGACY_PATCHES:
            setattr(cls, name, impl)
        return self

    def __exit__(self, *exc):
        for cls, name, impl in self._saved:
            setattr(cls, name, impl)
        return False


# -- scenario: single_run ----------------------------------------------


def _single_run():
    time_scale = 0.25
    return run_workload(
        scaled_workload("kmeans", time_scale),
        GreenGpuPolicy(config=scaled_config(time_scale)),
        n_iterations=4,
        options=scaled_options(time_scale),
    )


def bench_single_run() -> dict:
    fast_result = _single_run()
    with legacy_engine():
        legacy_result = _single_run()
    if result_to_dict(fast_result) != result_to_dict(legacy_result):
        raise SystemExit(
            "FATAL: fast engine and legacy harness diverged — the "
            "measured ratio would compare different computations"
        )
    fast_best = legacy_best = float("inf")
    for _ in range(TRIALS):
        t0 = time.perf_counter()
        _single_run()
        fast_best = min(fast_best, time.perf_counter() - t0)
        with legacy_engine():
            t0 = time.perf_counter()
            _single_run()
            legacy_best = min(legacy_best, time.perf_counter() - t0)
    return {
        "fast_s": round(fast_best, 6),
        "legacy_s": round(legacy_best, 6),
        "speedup": round(legacy_best / fast_best, 3),
    }


# -- scenario: warm_sweep ----------------------------------------------


def _sweep_once(cache: ResultCache, run_dir: Path) -> float:
    specs = sweep_specs(
        "kmeans",
        ratios=[i / 12 for i in range(1, 12)],
        n_iterations=6,
        time_scale=0.25,
    )
    t0 = time.perf_counter()
    result = run_jobs(specs, run_dir, isolate=False, cache=cache)
    elapsed = time.perf_counter() - t0
    if not result.report.ok:
        raise SystemExit("FATAL: sweep jobs failed during the benchmark")
    return elapsed


def bench_warm_sweep() -> dict:
    cold_best = warm_best = float("inf")
    with tempfile.TemporaryDirectory(prefix="perf-suite-") as tmp:
        tmp_path = Path(tmp)
        for trial in range(COLD_TRIALS):
            cache_dir = tmp_path / f"cache-{trial}"
            cache = ResultCache(cache_dir)
            cold = _sweep_once(cache, tmp_path / f"cold-{trial}")
            cold_best = min(cold_best, cold)
            warm = _sweep_once(cache, tmp_path / f"warm-{trial}")
            warm_best = min(warm_best, warm)
            shutil.rmtree(cache_dir)
    return {
        "cold_s": round(cold_best, 6),
        "warm_s": round(warm_best, 6),
        "speedup": round(cold_best / warm_best, 3),
    }


# -- scenarios: batched_sweep / batched_sweep_vs_scalar ----------------


def bench_batched_sweep() -> tuple[dict, dict]:
    """Time the 256-lane lockstep grid against both baselines.

    The legacy and scalar baselines run a 16-ratio probe subset of the
    grid and extrapolate by point count — per-point cost of a static
    sweep is ratio-independent to first order, and a full 256-point
    legacy sweep would dominate the suite's runtime for no extra signal.
    """
    from repro.runtime.batch_executor import BatchExecutor, RunRequest

    workload = scaled_workload("kmeans", 1.0)
    options = scaled_options(1.0)
    n_iterations = 6

    def grid() -> list[RunRequest]:
        return [
            RunRequest(workload=workload,
                       policy=StaticPolicy(0, 0, ratio=i / BATCH_N),
                       n_iterations=n_iterations, options=options)
            for i in range(BATCH_N)
        ]

    probe_idx = list(range(8, BATCH_N, 16))
    subset = [i / BATCH_N for i in probe_idx]

    # Equivalence gate before any timing: every probe lane must be
    # bit-identical to its scalar run, or the ratio below would compare
    # different computations.
    batch_results = BatchExecutor().run_many(grid())
    if any(r.engine != "batch" for r in batch_results):
        raise SystemExit(
            "FATAL: grid did not route through the batch engine"
        )
    for i in probe_idx:
        scalar = run_workload(
            workload, StaticPolicy(0, 0, ratio=i / BATCH_N),
            n_iterations=n_iterations, options=options,
        )
        if result_to_dict(batch_results[i]) != result_to_dict(scalar):
            raise SystemExit(
                f"FATAL: batch lane {i} diverged from the scalar engine"
            )

    # Interleave the three measurements within every round: the host
    # this runs on can swing absolute times severalfold (single-vCPU
    # guest, noisy neighbours), so each side of the ratio must get the
    # same shot at every quiet stretch — the minimums then come from
    # the same window instead of whichever side dodged the bursts.
    batch_best = scalar_best = legacy_best = float("inf")
    with tempfile.TemporaryDirectory(prefix="perf-batched-") as tmp:
        for trial in range(TRIALS):
            t0 = time.perf_counter()
            BatchExecutor().run_many(grid())
            batch_best = min(batch_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            for r in subset:
                run_workload(workload, StaticPolicy(0, 0, ratio=r),
                             n_iterations=n_iterations, options=options)
            scalar_best = min(scalar_best, time.perf_counter() - t0)
            # Single-point sweep jobs take the scalar:singleton dispatch
            # path, so the legacy patches actually govern the hot loop.
            specs = sweep_specs("kmeans", ratios=subset,
                                n_iterations=n_iterations, time_scale=1.0)
            with legacy_engine():
                t0 = time.perf_counter()
                outcome = run_jobs(specs, Path(tmp) / f"legacy-{trial}",
                                   isolate=False)
                elapsed = time.perf_counter() - t0
            if not outcome.report.ok:
                raise SystemExit(
                    "FATAL: legacy sweep jobs failed during the benchmark"
                )
            legacy_best = min(legacy_best, elapsed)

    legacy_point = legacy_best / len(subset)
    scalar_point = scalar_best / len(subset)
    batched = {
        "batch_s": round(batch_best, 6),
        "legacy_point_s": round(legacy_point, 6),
        "speedup": round(legacy_point * BATCH_N / batch_best, 3),
    }
    vs_scalar = {
        "batch_s": round(batch_best, 6),
        "scalar_point_s": round(scalar_point, 6),
        "speedup": round(scalar_point * BATCH_N / batch_best, 3),
    }
    return batched, vs_scalar


# -- driver ------------------------------------------------------------


def measure() -> dict:
    batched, vs_scalar = bench_batched_sweep()
    return {
        "bench_schema": 1,
        "engine_schema_version": ENGINE_SCHEMA_VERSION,
        "trials": TRIALS,
        "floors": FLOORS,
        "scenarios": {
            "single_run": bench_single_run(),
            "warm_sweep": bench_warm_sweep(),
            "batched_sweep": batched,
            "batched_sweep_vs_scalar": vs_scalar,
        },
    }


def report(results: dict) -> None:
    for name, data in results["scenarios"].items():
        floor = FLOORS[name]
        times = "  ".join(
            f"{k} {v:.4f}s" for k, v in data.items() if k != "speedup"
        )
        print(f"{name:12s} {times}  speedup {data['speedup']:.2f}x "
              f"(floor {floor:.0f}x)")


def check(results: dict, baseline_path: Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    status = 0
    for name, data in results["scenarios"].items():
        speedup = data["speedup"]
        floor = FLOORS[name]
        base = baseline["scenarios"].get(name, {}).get("speedup", floor)
        required = max(floor, base * (1.0 - tolerance))
        verdict = "ok" if speedup >= required else "REGRESSION"
        print(f"{name:12s} measured {speedup:.2f}x  baseline {base:.2f}x  "
              f"required {required:.2f}x  {verdict}")
        if speedup < required:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None, metavar="FILE",
                        help="write measured results as the new baseline")
    parser.add_argument("--check", type=Path, default=None, metavar="FILE",
                        help="gate measured speedups against a committed "
                             "baseline (CI mode)")
    parser.add_argument("--tolerance", type=float, default=0.4,
                        help="allowed fractional regression vs the baseline "
                             "ratio before failing (default 0.4)")
    args = parser.parse_args(argv)

    results = measure()
    report(results)
    if args.out is not None:
        args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {args.out}")
    if args.check is not None:
        return check(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
