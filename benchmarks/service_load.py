"""CI gate: the service sustains >= 1000 jobs/min with a warm cache.

Boots a full daemon (real asyncio HTTP front-end, real admission path,
real content-addressed cache) in-process, warms the cache with a small
set of distinct simulations, then hammers it from several keep-alive
client threads for a fixed wall-clock window drawing submissions from
the warm set.  Most of the sustained traffic is therefore cache hits —
exactly the production shape the ROADMAP's serving milestone describes
(heavy repeat traffic, shared content-addressed results).

The gate reads its own numbers back off the Prometheus surface — the
same ``/metrics`` endpoint operators would scrape — rather than from
client-side bookkeeping: p99 admission latency comes from the exported
``service_admission_latency_s`` summary, and the shed rate from
``service_shed_total`` vs ``service_submissions_total``.  Exit 0 iff

    completed_jobs / duration >= --min-rate (jobs/min, default 1000)
    and p99 admission latency <= --max-p99 (default 250 ms)

Run:  python benchmarks/service_load.py [--duration 15] [--clients 4]
          [--min-rate 1000] [--max-p99 0.25]
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
import threading
import time

from repro.cache import ResultCache
from repro.service.config import ServiceConfig
from repro.service.testing import ServiceThread

#: Distinct simulations forming the warm working set.
WARM_SET = [
    {"workload": "kmeans", "policy": "greengpu",
     "iterations": 1, "time_scale": 0.01},
    {"workload": "hotspot", "policy": "greengpu",
     "iterations": 1, "time_scale": 0.01},
    {"workload": "pathfinder", "policy": "scaling-only",
     "iterations": 1, "time_scale": 0.01},
    {"workload": "streamcluster", "policy": "division-only",
     "iterations": 1, "time_scale": 0.01},
]


def scrape(text: str, metric: str, labels: str = "") -> float:
    """Pull one sample out of Prometheus exposition text (0.0 if absent)."""
    pattern = re.compile(
        rf"^{re.escape(metric)}{re.escape(labels)}.* ([0-9.eE+-]+)$",
        re.MULTILINE,
    )
    total = 0.0
    for match in pattern.finditer(text):
        total += float(match.group(1))
    return total


def run_load(svc: ServiceThread, duration_s: float,
             clients: int) -> dict[str, float]:
    stop_at = time.monotonic() + duration_s
    counts = {"completed": 0, "shed": 0, "errors": 0, "submitted": 0}
    lock = threading.Lock()

    def one_client(index: int) -> None:
        client = svc.client(timeout_s=10.0)
        local = {"completed": 0, "shed": 0, "errors": 0, "submitted": 0}
        i = index
        try:
            while time.monotonic() < stop_at:
                job = WARM_SET[i % len(WARM_SET)]
                i += 1
                local["submitted"] += 1
                status, _, _ = client.submit(tenant=f"load-{index}", **job)
                if status == 200:          # cache hit: a completed job
                    local["completed"] += 1
                elif status == 202:        # queued; cheap, will cache-hit next
                    local["completed"] += 1
                elif status == 429:
                    local["shed"] += 1
                else:
                    local["errors"] += 1
        finally:
            client.close()
            with lock:
                for key, value in local.items():
                    counts[key] += value

    threads = [threading.Thread(target=one_client, args=(i,), daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return counts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=15.0,
                        help="load window, seconds")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--min-rate", type=float, default=1000.0,
                        help="gate: completed jobs per minute")
    parser.add_argument("--max-p99", type=float, default=0.25,
                        help="gate: p99 admission latency, seconds")
    args = parser.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="greengpu-service-load-")
    config = ServiceConfig(
        port=0, workers=2, isolate=False,
        rate_per_tenant=10_000.0, burst_per_tenant=10_000.0,
        tenant_queue_limit=512, global_high_water=2048,
    )
    cache = ResultCache(tmp + "/cache")
    with ServiceThread(config, tmp + "/run", cache=cache) as svc:
        client = svc.client(timeout_s=30.0)
        print(f"warming cache with {len(WARM_SET)} distinct simulations...")
        for job in WARM_SET:
            status, body, _ = client.submit(**job)
            if status == 202:
                client.wait(body["job_id"], timeout_s=120)
        # Every warm-set entry must now be a hit.
        for job in WARM_SET:
            status, body, _ = client.submit(**job)
            assert status == 200 and body["served_from_cache"], \
                f"cache not warm for {job}"
        client.close()

        print(f"load: {args.clients} clients x {args.duration:.0f}s ...")
        counts = run_load(svc, args.duration, args.clients)

        final = svc.client(timeout_s=30.0)
        metrics = final.metrics_text()
        final.close()

    per_min = counts["completed"] / args.duration * 60.0
    p99 = scrape(metrics, "service_admission_latency_s",
                 '{quantile="0.99"}')
    submissions = scrape(metrics, "service_submissions_total")
    shed = scrape(metrics, "service_shed_total")
    shed_rate = shed / submissions if submissions else 0.0
    cache_hits = scrape(metrics, "service_cache_hits_total")

    print(f"completed          : {counts['completed']} jobs "
          f"({per_min:,.0f}/min)")
    print(f"shed (429)         : {counts['shed']} "
          f"(shed rate {shed_rate:.1%}, via Prometheus)")
    print(f"errors             : {counts['errors']}")
    print(f"cache hits         : {cache_hits:,.0f} (via Prometheus)")
    print(f"p99 admission      : {p99 * 1e3:.2f} ms (via Prometheus)")

    ok = True
    if counts["errors"]:
        print(f"FAIL: {counts['errors']} unexpected error responses")
        ok = False
    if per_min < args.min_rate:
        print(f"FAIL: {per_min:,.0f} jobs/min < gate {args.min_rate:,.0f}")
        ok = False
    if p99 > args.max_p99:
        print(f"FAIL: p99 admission {p99:.3f}s > gate {args.max_p99:.3f}s")
        ok = False
    if ok:
        print(f"PASS: sustained {per_min:,.0f} jobs/min "
              f">= {args.min_rate:,.0f} with p99 admission {p99 * 1e3:.2f} ms")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
