"""Ablation: the division step size (DESIGN.md §4, paper §V-B).

"The system takes a long time to converge to the optimal division point
if we use a small step.  There will be large oscillation if we use a
large step."  This bench quantifies both arms of that trade-off with the
closed-loop divider.
"""

from repro.analysis.convergence import convergence_iteration
from repro.core.config import GreenGpuConfig
from repro.core.division import WorkloadDivider

STEPS = (0.01, 0.05, 0.20)
CPU_SPEED = 4.0          # balance at r* = 0.20 — on every grid tested
R0 = 0.60


def _closed_loop(step: float, iterations: int = 80) -> list[float]:
    divider = WorkloadDivider(
        GreenGpuConfig(division_step=step, initial_cpu_ratio=R0), r0=R0
    )
    ratios = []
    for _ in range(iterations):
        r = divider.r
        ratios.append(r)
        divider.update(r * CPU_SPEED, (1.0 - r) * 1.0)
    return ratios


def test_ablation_division_step(run_once, benchmark):
    def sweep():
        return {step: _closed_loop(step) for step in STEPS}

    traces = run_once(sweep)
    convergence = {
        step: convergence_iteration(trace) for step, trace in traces.items()
    }
    benchmark.extra_info["convergence_iterations_by_step"] = {
        str(s): c for s, c in convergence.items()
    }

    # Small steps converge slower (paper's first arm).
    assert convergence[0.01] > convergence[0.05]
    # The paper's 5 % step converges within a handful of iterations from
    # a 40-point-distant start.
    assert convergence[0.05] <= 10
    # Large steps settle fast but park far from the optimum.
    final_gap = {s: abs(traces[s][-1] - 0.20) for s in STEPS}
    assert final_gap[0.20] >= final_gap[0.05]
