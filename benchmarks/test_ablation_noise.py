"""Ablation: beta vs measurement noise (paper §V-A).

"beta ... is introduced to get the trade-off between the current loss
factor and the previous history weight.  We select beta = 0.2 from
experiments to filter out limited system noise with quick workload change
response."  The paper never shows that experiment; this bench runs it:

- **stability**: at a stationary true utilization with noisy readings,
  count how often the chosen frequency pair flips (fewer = better
  filtering);
- **responsiveness**: after a true phase change, count intervals until
  the scaler tracks the new operating point (fewer = quicker response).

Small beta reacts fast but chatters under noise; large beta is serene but
sluggish.  beta = 0.2 must sit usefully between the extremes.
"""

import numpy as np

from repro.core.config import GreenGpuConfig
from repro.core.wma import WmaFrequencyScaler
from repro.sim.calibration import geforce_8800_gtx_spec

BETAS = (0.05, 0.2, 0.8)
NOISE = 0.10
SEED = 7


def _noisy(rng, u, amplitude=NOISE):
    return tuple(float(np.clip(v + rng.uniform(-amplitude, amplitude), 0, 1)) for v in u)


def _stability_switches(beta: float, intervals: int = 120) -> int:
    """Frequency-pair flips under noise at a stationary utilization."""
    spec = geforce_8800_gtx_spec()
    scaler = WmaFrequencyScaler(
        spec.core_ladder, spec.mem_ladder, GreenGpuConfig(beta=beta)
    )
    rng = np.random.default_rng(SEED)
    last = None
    switches = 0
    for _ in range(intervals):
        d = scaler.step(*_noisy(rng, (0.55, 0.45)))
        pair = (d.core_level, d.mem_level)
        if last is not None and pair != last:
            switches += 1
        last = pair
    return switches


def _response_intervals(beta: float) -> int:
    """Intervals to reach the peak pair after an idle -> saturated jump."""
    spec = geforce_8800_gtx_spec()
    scaler = WmaFrequencyScaler(
        spec.core_ladder, spec.mem_ladder, GreenGpuConfig(beta=beta)
    )
    rng = np.random.default_rng(SEED)
    for _ in range(5):
        scaler.step(*_noisy(rng, (0.05, 0.05)))
    for interval in range(1, 101):
        d = scaler.step(*_noisy(rng, (1.0, 1.0), amplitude=0.0))
        if (d.core_level, d.mem_level) == (0, 0):
            return interval
    return 100


def test_ablation_beta_noise_tradeoff(run_once, benchmark):
    def sweep():
        return {
            beta: (_stability_switches(beta), _response_intervals(beta))
            for beta in BETAS
        }

    results = run_once(sweep)
    benchmark.extra_info["switches_and_response_by_beta"] = {
        str(b): r for b, r in results.items()
    }

    switches = {b: r[0] for b, r in results.items()}
    response = {b: r[1] for b, r in results.items()}

    # More history (larger beta) never chatters more under noise.
    assert switches[0.8] <= switches[0.2] <= switches[0.05]
    # And never responds faster to a real phase change.
    assert response[0.05] <= response[0.2] <= response[0.8]
    # The paper's beta = 0.2 is a genuine compromise: it responds within
    # a few intervals while chattering measurably less than beta = 0.05.
    assert response[0.2] <= 5
    assert switches[0.2] < switches[0.05] or switches[0.05] == 0
