"""Ablation: the roofline overlap exponent k (DESIGN.md §4).

k controls how sharply the simulated GPU transitions from "throttling the
non-bottleneck domain is free" to "it became the bottleneck" (the Fig. 1
knee).  The substitution claim requires the paper's shapes to be robust
across plausible k, not an artifact of the default k = 4.
"""

import dataclasses

from repro.core.policies import StaticPolicy
from repro.runtime.executor import run_workload
from repro.sim.calibration import geforce_8800_gtx_spec, phenom_ii_x2_spec
from repro.sim.perf import RooflineModel
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import get_profile

EXPONENTS = (2.0, 4.0, 8.0)


def _nbody_mem_sweep(overlap_exponent: float) -> list[float]:
    """Relative GPU energy of nbody across the memory ladder at this k."""
    gpu = dataclasses.replace(
        geforce_8800_gtx_spec(), roofline=RooflineModel(overlap_exponent)
    )
    cpu = phenom_ii_x2_spec()
    profile = dataclasses.replace(
        get_profile("nbody"), gpu_seconds_per_iteration=3.0
    )
    workload = DemandModelWorkload(profile, gpu, cpu)
    energies = []
    baseline = None
    for level in range(len(gpu.mem_ladder)):
        result = run_workload(workload, StaticPolicy(0, level), n_iterations=1)
        if baseline is None:
            baseline = result.gpu_energy_j
        energies.append(result.gpu_energy_j / baseline)
    return energies


def test_ablation_overlap_exponent(run_once, benchmark):
    def sweep_all():
        return {k: _nbody_mem_sweep(k) for k in EXPONENTS}

    curves = run_once(sweep_all)
    benchmark.extra_info["energy_curves_by_k"] = {
        str(k): [round(v, 4) for v in vs] for k, vs in curves.items()
    }

    for k, energies in curves.items():
        # The Fig. 1b shape must hold at every exponent: an interior
        # memory level beats peak for core-bounded nbody.
        best = min(range(len(energies)), key=lambda i: energies[i])
        assert best > 0, f"k={k}: no interior minimum"
        assert energies[best] < 1.0, f"k={k}: throttling never saved"

    # Larger k (better overlap) hides more of the memory slowdown, so the
    # floor level's energy penalty shrinks with k.
    assert curves[8.0][-1] <= curves[2.0][-1]
