"""Ablation: the oscillation safeguard on/off (DESIGN.md §4, paper §V-B).

With the optimum off the 5 % grid, the raw rule bounces between the two
adjacent points forever, paying the repartition overhead each iteration;
the safeguard parks on one of them.  This bench measures both the
oscillation amplitude and the wall-time cost on the full simulator.
"""

from repro.analysis.convergence import oscillation_amplitude
from repro.core.config import GreenGpuConfig
from repro.core.policies import DivisionOnlyPolicy
from repro.experiments.common import scaled_workload
from repro.runtime.executor import ExecutorOptions, run_workload

TIME_SCALE = 0.05

#: Repartitioning cost per division change, as a fraction of the
#: iteration length.  The paper observed oscillation "significantly
#: degrades system performance due to the overheads of frequent workload
#: division" — i.e. on their runtime the re-chunk + re-stage cost was a
#: meaningful slice of an iteration.
REPARTITION_FRACTION = 0.08


def _run(safeguard: bool):
    workload = scaled_workload("kmeans", TIME_SCALE)  # optimum off-grid
    config = GreenGpuConfig(
        oscillation_safeguard=safeguard,
        scaling_interval_s=3.0 * TIME_SCALE,
        ondemand_interval_s=0.1 * TIME_SCALE,
    )
    overhead = REPARTITION_FRACTION * workload.profile.gpu_seconds_per_iteration
    return run_workload(
        workload,
        DivisionOnlyPolicy(config=config),
        n_iterations=14,
        options=ExecutorOptions(repartition_overhead_s=overhead),
    )


def test_ablation_oscillation_safeguard(run_once, benchmark):
    def both():
        return _run(True), _run(False)

    guarded, raw = run_once(both)

    amp_guarded = oscillation_amplitude(guarded.ratios(), tail=6)
    amp_raw = oscillation_amplitude(raw.ratios(), tail=6)
    benchmark.extra_info["oscillation_guarded"] = round(amp_guarded, 3)
    benchmark.extra_info["oscillation_raw"] = round(amp_raw, 3)
    benchmark.extra_info["energy_guarded_kj"] = round(guarded.total_energy_j / 1e3, 2)
    benchmark.extra_info["energy_raw_kj"] = round(raw.total_energy_j / 1e3, 2)

    # The safeguard eliminates steady-state oscillation...
    assert amp_guarded == 0.0
    # ...which the raw rule exhibits on kmeans' off-grid optimum.
    assert amp_raw >= 0.05 - 1e-9
    # Oscillation burns energy through repeated repartitioning.
    assert raw.total_energy_j > guarded.total_energy_j
