"""Ablation: tier decoupling — iteration length vs scaling interval
(DESIGN.md §4, paper §IV).

The paper requires the division period (one iteration) to be >= 40x the
GPU scaling interval so the WMA settles within each division interval.
This bench sweeps that ratio: with too few scaling intervals per
iteration the frequency tier never converges and contributes little.
"""

from repro.core.config import GreenGpuConfig
from repro.core.policies import GreenGpuPolicy, RodiniaDefaultPolicy
from repro.experiments.common import scaled_workload
from repro.runtime.executor import ExecutorOptions, run_workload

TIME_SCALE = 0.05
#: scaling intervals per iteration (the paper mandates >= 40).
RATIOS = (4.0, 40.0)


def _saving(intervals_per_iteration: float) -> float:
    workload = scaled_workload("kmeans", TIME_SCALE)
    iteration_s = workload.profile.gpu_seconds_per_iteration
    config = GreenGpuConfig(
        scaling_interval_s=iteration_s / intervals_per_iteration,
        ondemand_interval_s=0.1 * TIME_SCALE,
        min_division_scaling_ratio=1.0,  # permit the degenerate setting
    )
    options = ExecutorOptions(repartition_overhead_s=0.5 * TIME_SCALE)
    base = run_workload(
        workload, RodiniaDefaultPolicy(), n_iterations=8, options=options
    )
    green = run_workload(
        workload, GreenGpuPolicy(config=config), n_iterations=8, options=options
    )
    return green.energy_saving_vs(base)


def test_ablation_tier_decoupling(run_once, benchmark):
    def sweep():
        return {ratio: _saving(ratio) for ratio in RATIOS}

    savings = run_once(sweep)
    benchmark.extra_info["saving_by_intervals_per_iteration"] = {
        str(k): round(v, 4) for k, v in savings.items()
    }

    # Both settings must save vs the default (the division tier alone
    # guarantees that)...
    for ratio, saving in savings.items():
        assert saving > 0.0, f"ratio={ratio}"
    # ...and the paper's well-decoupled setting is at least as good as
    # the degenerate one where the WMA barely gets to act.
    assert savings[40.0] >= savings[4.0] - 0.01
