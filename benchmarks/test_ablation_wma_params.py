"""Ablation: the WMA trade-off parameters alpha, beta, phi (DESIGN.md §4).

The paper hand-tunes alpha_c = 0.15, alpha_m = 0.02, beta = 0.2, phi = 0.3
and acknowledges that as future work.  This bench maps the sensitivity:
larger alphas push the scaler toward deeper throttling (more savings,
more slowdown); the paper's point sits on the performance-protecting end.
"""

from repro.core.config import GreenGpuConfig
from repro.core.policies import BestPerformancePolicy, FrequencyScalingOnlyPolicy
from repro.experiments.common import scaled_workload
from repro.runtime.executor import run_workload

TIME_SCALE = 0.1
ALPHAS = (0.02, 0.15, 0.50)


def _measure(alpha_core: float, alpha_mem: float) -> tuple[float, float]:
    """(gpu_saving, slowdown) of tier-2 on kmeans at these alphas."""
    workload = scaled_workload("kmeans", TIME_SCALE)
    config = GreenGpuConfig(
        alpha_core=alpha_core,
        alpha_mem=alpha_mem,
        scaling_interval_s=3.0 * TIME_SCALE,
        ondemand_interval_s=0.1 * TIME_SCALE,
    )
    base = run_workload(workload, BestPerformancePolicy(), n_iterations=3)
    scaled = run_workload(
        workload, FrequencyScalingOnlyPolicy(config=config), n_iterations=3
    )
    return scaled.gpu_energy_saving_vs(base), scaled.slowdown_vs(base)


def test_ablation_alpha_tradeoff(run_once, benchmark):
    def sweep():
        return {a: _measure(a, a) for a in ALPHAS}

    points = run_once(sweep)
    benchmark.extra_info["saving_slowdown_by_alpha"] = {
        str(a): (round(s, 4), round(d, 4)) for a, (s, d) in points.items()
    }

    # Energy-heavier alphas throttle at least as deep (>= slowdown).
    slowdowns = [points[a][1] for a in ALPHAS]
    assert slowdowns[-1] >= slowdowns[0] - 1e-6
    # The paper's performance-protecting end keeps slowdown small.
    assert points[0.02][1] < 0.05
    # And every setting still saves GPU energy on kmeans.
    for a, (saving, _) in points.items():
        assert saving > 0.0, f"alpha={a}"
