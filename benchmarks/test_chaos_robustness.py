"""Chaos benchmark: GreenGPU under injected faults still saves energy.

The robustness claim behind the hardened controller: with the
``moderate`` fault profile (monitor faults in the 5-10 % band, plus
actuator faults and rare device stalls) the full two-tier GreenGPU run

- completes every iteration,
- actually absorbs faults (the health counters are non-zero),
- ends *outside* the watchdog's degraded safe state, and
- still beats the best-performance baseline on whole-system energy.

Everything is seeded, so the reproduced numbers are deterministic.
"""

from dataclasses import replace

from repro.core.policies import BestPerformancePolicy, GreenGpuPolicy
from repro.experiments.common import scaled_config, scaled_options, scaled_workload
from repro.faults.injector import fault_profile
from repro.runtime.executor import run_workload

TIME_SCALE = 0.05
N_ITERATIONS = 10
SEED = 1
WORKLOADS = ("kmeans", "hotspot")


def chaos_plan():
    """The moderate profile with its stall duration on the run's clock."""
    plan = fault_profile("moderate", seed=SEED)
    return replace(plan, device_stall_duration_s=5.0 * TIME_SCALE)


def run_pair(name):
    workload = scaled_workload(name, TIME_SCALE)
    options = scaled_options(TIME_SCALE)
    green = run_workload(
        workload,
        GreenGpuPolicy(config=scaled_config(TIME_SCALE)).with_faults(chaos_plan()),
        n_iterations=N_ITERATIONS,
        options=options,
    )
    baseline = run_workload(
        workload, BestPerformancePolicy(), n_iterations=N_ITERATIONS, options=options
    )
    return green, baseline


def run_all():
    return {name: run_pair(name) for name in WORKLOADS}


def test_chaos_robustness(run_once, benchmark):
    results = run_once(run_all)

    for name, (green, baseline) in results.items():
        saving = green.energy_saving_vs(baseline)
        health = green.health
        benchmark.extra_info[f"{name}_saving_pct"] = round(100 * saving, 2)
        benchmark.extra_info[f"{name}_faults_absorbed"] = health.total_events

        # Completed every iteration despite the fault stream.
        assert green.n_iterations == N_ITERATIONS

        # The profile actually exercised the hardening.
        assert health.total_events > 0
        assert health.monitor_faults + health.actuation_faults > 0

        # The run ends healthy, not parked in the watchdog safe state.
        assert not health.degraded

        # And it still beats best-performance on energy.
        assert saving > 0.0, f"{name}: no energy saving under faults"
