"""Chaos benchmark: GreenGPU under injected faults still saves energy.

The robustness claim behind the hardened controller: with the
``moderate`` fault profile (monitor faults in the 5-10 % band, plus
actuator faults and rare device stalls) the full two-tier GreenGPU run

- completes every iteration,
- actually absorbs faults (the health counters are non-zero),
- ends *outside* the watchdog's degraded safe state, and
- still beats the best-performance baseline on whole-system energy.

Since the crash-safety work the pairs run as supervised harness jobs —
each workload isolated in its own spawn worker with a timeout, fanned
out in parallel — so this benchmark also pins the outer layer: a
journaled run where every job completes without retries, quarantine, or
timeout kills.  Everything is seeded, so the reproduced numbers are
deterministic.
"""

from repro.faults.retry import RetryPolicy
from repro.harness.job import JobSpec
from repro.harness.supervisor import run_jobs
from repro.harness.worker import read_artifact

TIME_SCALE = 0.05
N_ITERATIONS = 10
SEED = 1
WORKLOADS = ("kmeans", "hotspot")
JOB_TIMEOUT_S = 300.0


def chaos_specs():
    """One isolated job per workload: GreenGPU-under-faults vs baseline."""
    return [
        JobSpec(
            name=f"chaos-{name}",
            target="repro.harness.suite_jobs:run_chaos_pair",
            kwargs={
                "workload": name,
                "time_scale": TIME_SCALE,
                "n_iterations": N_ITERATIONS,
                "seed": SEED,
                # The moderate profile's stall duration on the run's clock.
                "stall_s": 5.0 * TIME_SCALE,
            },
            timeout_s=JOB_TIMEOUT_S,
            retry=RetryPolicy(max_attempts=2, base_backoff_s=0.05),
        )
        for name in WORKLOADS
    ]


def run_all(run_dir):
    return run_jobs(chaos_specs(), run_dir, parallel=len(WORKLOADS))


def test_chaos_robustness(run_once, benchmark, tmp_path):
    result = run_once(run_all, str(tmp_path / "chaos-run"))
    report = result.report

    # The outer layer is clean: every job completed first-try, on time.
    assert report.succeeded == len(WORKLOADS)
    assert report.quarantined == 0
    assert report.timeouts == 0
    assert report.retries == 0
    assert not report.interrupted

    for name in WORKLOADS:
        outcome = result.outcomes[f"chaos-{name}"]
        payload = outcome.payload
        # The journaled artifact is what resume would reuse — it must
        # round-trip to the in-memory payload.
        assert read_artifact(outcome.artifact_path) == payload

        from repro.faults.health import ControlHealth

        health = ControlHealth.from_dict(payload["health"])
        saving = payload["saving"]
        benchmark.extra_info[f"{name}_saving_pct"] = round(100 * saving, 2)
        benchmark.extra_info[f"{name}_faults_absorbed"] = health.total_events

        # Completed every iteration despite the fault stream.
        assert payload["green_iterations"] == N_ITERATIONS

        # The profile actually exercised the hardening.
        assert health.total_events > 0
        assert health.monitor_faults + health.actuation_faults > 0

        # The run ends healthy, not parked in the watchdog safe state.
        assert not health.degraded

        # And it still beats best-performance on energy.
        assert saving > 0.0, f"{name}: no energy saving under faults"
