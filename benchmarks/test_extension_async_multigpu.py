"""Extension benches: measured async CPU throttling and N-way division.

- ``test_extension_async_comm`` replaces the paper's Fig. 6c *emulation*
  with a real asynchronous run in which `ondemand` actually throttles.
- ``test_extension_multiway_division`` scales tier 1 to the multi-GPU
  setup §VI anticipates ("one pthread for one GPU").
"""

import numpy as np

from repro.extensions.async_comm import measured_async_savings
from repro.extensions.multigpu import MultiwayDivider


def test_extension_async_comm(run_once, benchmark):
    result = run_once(
        measured_async_savings, "kmeans", time_scale=0.15, n_iterations=3
    )
    benchmark.extra_info["emulated_saving_pct"] = round(100 * result.emulated_saving, 2)
    benchmark.extra_info["measured_saving_pct"] = round(100 * result.measured_saving, 2)

    assert result.cpu_floor_reached
    assert result.measured_saving > 0.05
    assert abs(result.measured_saving - result.emulated_saving) < 0.06


def test_extension_multiway_division(run_once, benchmark):
    """Convergence quality of N-way division for 2..5 devices."""

    def sweep():
        out = {}
        for n_gpus in (1, 2, 3, 4):
            names = ["cpu"] + [f"gpu{i}" for i in range(n_gpus)]
            # CPU 5x slower per unit; GPUs slightly heterogeneous.
            unit_times = [5.0] + [1.0 + 0.2 * i for i in range(n_gpus)]
            divider = MultiwayDivider(names, step=0.02)
            divider.drive(unit_times, iterations=200)
            out[n_gpus] = divider.imbalance(unit_times)
        return out

    imbalances = run_once(sweep)
    benchmark.extra_info["imbalance_by_gpu_count"] = {
        str(k): round(v, 3) for k, v in imbalances.items()
    }

    # Every configuration balances to within ~1.5x between the slowest
    # and fastest device (step-quantization bound for the smallest share).
    assert all(v < 1.5 for v in imbalances.values())
    # The 2-device case reduces to the paper's setup and balances tightly.
    assert imbalances[1] < 1.2
