"""Extension bench: GPU DVFS vs frequency-only scaling (§VII-C).

Quantifies the paper's expectation that a voltage-scaling GPU would let
the unchanged tier-2 controller save substantially more.
"""

from repro.extensions.gpu_dvfs import dvfs_savings_comparison


def test_extension_gpu_dvfs(run_once, benchmark):
    def sweep():
        return {
            name: dvfs_savings_comparison(name, time_scale=0.15, n_iterations=3)
            for name in ("pathfinder", "kmeans", "bfs")
        }

    results = run_once(sweep)
    benchmark.extra_info["savings"] = {
        name: {
            "frequency_only_pct": round(100 * c.saving_frequency_only, 2),
            "dvfs_pct": round(100 * c.saving_dvfs, 2),
        }
        for name, c in results.items()
    }

    # Throttleable workloads gain from voltage scaling...
    assert results["pathfinder"].dvfs_advantage > 0.02
    assert results["kmeans"].dvfs_advantage > 0.01
    # ...while the saturated one has nothing to scale.
    assert abs(results["bfs"].dvfs_advantage) < 0.02
