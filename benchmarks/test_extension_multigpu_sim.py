"""Extension bench: full multi-GPU co-simulation scaling.

Measures how the complete GreenGPU stack (per-card WMA + ondemand + N-way
division) scales from one to three cards on kmeans.
"""

from repro.core.config import GreenGpuConfig
from repro.extensions.multigpu_sim import (
    MultiGreenGpuController,
    MultiHeteroSystem,
    run_multi_workload,
)
from repro.sim.calibration import geforce_8800_gtx_spec
from repro.experiments.common import scaled_workload

TIME_SCALE = 0.05


def _run(n_gpus: int):
    system = MultiHeteroSystem(
        gpu_specs=[geforce_8800_gtx_spec() for _ in range(n_gpus)]
    )
    cfg = GreenGpuConfig(
        scaling_interval_s=3.0 * TIME_SCALE, ondemand_interval_s=0.1 * TIME_SCALE
    )
    return run_multi_workload(
        scaled_workload("kmeans", TIME_SCALE),
        system=system,
        controller=MultiGreenGpuController(system, cfg),
        n_iterations=10,
    )


def test_extension_multigpu_scaling(run_once, benchmark):
    def sweep():
        return {n: _run(n) for n in (1, 2, 3)}

    results = run_once(sweep)
    benchmark.extra_info["time_by_gpu_count"] = {
        str(n): round(r.total_s, 2) for n, r in results.items()
    }
    benchmark.extra_info["final_shares"] = {
        str(n): [round(s, 3) for s in r.final_shares] for n, r in results.items()
    }

    # More cards -> shorter runs (work divides further).
    assert results[2].total_s < results[1].total_s
    assert results[3].total_s < results[2].total_s
    # Identical cards split their portion roughly evenly.
    shares3 = results[3].final_shares[1:]
    assert max(shares3) - min(shares3) <= 0.101
