"""Regenerates paper Fig. 1: frequency sweeps on nbody and streamcluster.

Paper shape: throttling the under-utilized domain is nearly free and
saves energy (nbody/memory, SC/core up to ~410 MHz); throttling the
bottleneck domain degrades both time and energy.
"""

from repro.experiments import fig1


def test_fig1_regenerate(run_once, benchmark):
    panels = run_once(fig1.run_all, n_iterations=1, time_scale=0.1)

    nbody_mem = panels[("nbody", "mem")]
    nbody_core = panels[("nbody", "core")]
    sc_mem = panels[("streamcluster", "mem")]
    sc_core = panels[("streamcluster", "core")]

    benchmark.extra_info["nbody_mem_energy_curve"] = [
        round(p.relative_energy, 4) for p in nbody_mem
    ]
    benchmark.extra_info["sc_core_energy_curve"] = [
        round(p.relative_energy, 4) for p in sc_core
    ]

    # Fig. 1a/1b: core-bounded nbody tolerates memory throttling.
    assert min(p.relative_energy for p in nbody_mem) < 1.0
    assert nbody_mem[-1].normalized_time < 1.10
    # Fig. 1c/1d: throttling nbody's cores hurts both metrics.
    assert nbody_core[-1].normalized_time > 1.3
    assert nbody_core[-1].relative_energy > 1.1
    # Memory-bounded SC: memory throttling hurts...
    assert sc_mem[-1].relative_energy > 1.05
    # ...but its core has an interior energy minimum (the 410 MHz knee).
    energies = [p.relative_energy for p in sc_core]
    knee = min(range(len(energies)), key=lambda i: energies[i])
    assert knee in (2, 3) and energies[knee] < 1.0
