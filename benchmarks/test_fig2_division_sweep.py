"""Regenerates paper Fig. 2: kmeans energy vs static division ratio.

Paper shape: U-curve with an interior minimum near 10 % CPU share.
"""

import numpy as np

from repro.experiments import fig2


def test_fig2_regenerate(run_once, benchmark):
    result = run_once(
        fig2.run,
        ratios=[round(0.05 * i, 2) for i in range(19)],
        n_iterations=2,
        time_scale=0.05,
    )

    benchmark.extra_info["normalized_energy"] = [
        round(float(v), 4) for v in result.normalized_energy
    ]
    benchmark.extra_info["optimal_r"] = result.optimal_r

    assert result.has_interior_minimum
    assert 0.05 <= result.optimal_r <= 0.20   # paper: ~0.10
    # U shape: monotone down to the minimum, monotone up after.
    energies = result.normalized_energy
    arg = int(np.argmin(energies))
    assert np.all(np.diff(energies[: arg + 1]) <= 1e-9)
    assert np.all(np.diff(energies[arg:]) >= -1e-9)
