"""Regenerates paper Fig. 5: the streamcluster frequency-scaling trace.

Paper anchors: clocks start at the GPU's lowest levels, rise with the
utilization ramp, and the memory clock converges to 820 MHz — one level
below peak — while average power drops below best-performance at similar
execution time.
"""

import pytest

from repro.experiments import fig5
from repro.units import mhz


def test_fig5_regenerate(run_once, benchmark):
    result = run_once(fig5.run, n_iterations=3, time_scale=0.2)

    benchmark.extra_info["converged_mem_mhz"] = result.converged_mem_mhz
    benchmark.extra_info["converged_core_mhz"] = result.converged_core_mhz
    benchmark.extra_info["avg_power_scaled_w"] = round(result.scaled.average_power_w, 2)
    benchmark.extra_info["avg_power_baseline_w"] = round(
        result.baseline.average_power_w, 2
    )

    assert result.converged_mem_mhz == pytest.approx(820.0)        # paper: 820 MHz
    assert 410.0 <= result.converged_core_mhz < 576.0
    assert result.core_freq_trace.values[0] == pytest.approx(mhz(300.0))
    assert result.scaled.average_power_w < result.baseline.average_power_w
    active = result.scaled.total_s - result.idle_lead_s
    assert active / result.baseline.total_s < 1.12
