"""Regenerates paper Fig. 6: tier-2 savings vs best-performance.

Paper anchors: (a) total GPU saving avg 5.97 % / max 14.53 %; (b) dynamic
saving avg 29.2 % at <= 2.95 % slowdown; (c) emulated CPU+GPU saving avg
12.48 %.  Shape claims: low-utilization workloads save most, saturated
bfs least, fluctuating workloads still save, dynamic >> total.
"""

from repro.experiments import fig6


def test_fig6_regenerate(run_once, benchmark):
    result = run_once(fig6.run, n_iterations=4, time_scale=0.2)
    by_name = {r.name: r for r in result.rows}

    benchmark.extra_info["per_workload_gpu_saving_pct"] = {
        r.name: round(100 * r.gpu_saving, 2) for r in result.rows
    }
    benchmark.extra_info["avg_gpu_saving_pct"] = round(100 * result.average_gpu_saving, 2)
    benchmark.extra_info["avg_dynamic_saving_pct"] = round(
        100 * result.average_dynamic_saving, 2
    )
    benchmark.extra_info["avg_cpu_gpu_saving_pct"] = round(
        100 * result.average_cpu_gpu_saving, 2
    )
    benchmark.extra_info["avg_slowdown_pct"] = round(100 * result.average_slowdown, 2)

    assert 0.01 < result.average_gpu_saving < 0.15
    assert result.max_gpu_saving > 0.08                       # paper max 14.53 %
    assert result.average_dynamic_saving > 2.5 * result.average_gpu_saving
    assert result.average_cpu_gpu_saving > result.average_gpu_saving
    assert result.average_slowdown < 0.06                     # paper 2.95 %
    assert by_name["pathfinder"].gpu_saving == max(r.gpu_saving for r in result.rows)
    assert by_name["bfs"].gpu_saving == min(r.gpu_saving for r in result.rows)
