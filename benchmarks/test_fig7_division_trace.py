"""Regenerates paper Fig. 7: division traces for kmeans and hotspot.

Paper anchors: kmeans converges to 20/80 (static optimum 15/85); hotspot
converges exactly to the 50/50 optimum; the dynamic division costs only
a few percent over the optimal static point (paper: 5.45 %).
"""

import pytest

from repro.experiments import fig7


def test_fig7_regenerate(run_once, benchmark):
    results = run_once(fig7.run, n_iterations=12, time_scale=0.05)

    for name, res in results.items():
        benchmark.extra_info[f"{name}_converged_r"] = res.converged_r
        benchmark.extra_info[f"{name}_static_optimal_r"] = res.static_optimal_r
        benchmark.extra_info[f"{name}_overhead_pct"] = round(
            100 * res.time_overhead_vs_optimal, 2
        )

    assert results["kmeans"].converged_r == pytest.approx(0.20)
    assert results["kmeans"].static_optimal_r == pytest.approx(0.15)
    assert results["kmeans"].convergence_iter <= 5
    assert results["kmeans"].time_overhead_vs_optimal < 0.15

    assert results["hotspot"].converged_r == pytest.approx(0.50)
    assert results["hotspot"].static_optimal_r == pytest.approx(0.50)
