"""Regenerates paper Fig. 8: GreenGPU vs Division-only vs Scaling-only.

Paper anchors: the holistic solution wins on both workloads; hotspot —
+7.88 % over Division / +28.76 % over Frequency-scaling; kmeans — +1.6 %
/ +12.05 %.
"""

from repro.experiments import fig8


def test_fig8_regenerate(run_once, benchmark):
    results = run_once(fig8.run, n_iterations=10, time_scale=0.05)

    for name, res in results.items():
        benchmark.extra_info[f"{name}_saving_vs_division_pct"] = round(
            100 * res.saving_vs_division, 2
        )
        benchmark.extra_info[f"{name}_saving_vs_scaling_pct"] = round(
            100 * res.saving_vs_scaling, 2
        )

    for res in results.values():
        assert res.ordering_holds
        assert res.saving_vs_division > 0.0
        assert res.saving_vs_scaling > res.saving_vs_division

    assert results["hotspot"].saving_vs_scaling > 0.20      # paper 28.76 %
    assert 0.04 < results["kmeans"].saving_vs_scaling < 0.20  # paper 12.05 %
