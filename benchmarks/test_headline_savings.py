"""Regenerates the paper's headline number: 21.04 % average energy saving
for kmeans + hotspot vs the Rodinia default, at only 1.7 % longer
execution than division-only."""

from repro.experiments import headline


def test_headline_regenerate(run_once, benchmark):
    result = run_once(headline.run, n_iterations=10, time_scale=0.05)

    benchmark.extra_info["average_saving_pct"] = round(100 * result.average_saving, 2)
    benchmark.extra_info["paper_saving_pct"] = 21.04
    benchmark.extra_info["avg_slowdown_vs_division_pct"] = round(
        100 * result.average_slowdown_vs_division, 2
    )
    benchmark.extra_info["paper_slowdown_pct"] = 1.7

    assert 0.15 < result.average_saving < 0.30
    assert abs(result.average_slowdown_vs_division) < 0.05
    for row in result.rows:
        assert row.saving_vs_default > 0.05
