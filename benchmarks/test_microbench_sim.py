"""Throughput microbenchmarks of the simulator's hot primitives.

Unlike the artifact benches, these measure real wall time: the event
loop, the roofline estimate, the WMA step and a full controlled run.
They guard against performance regressions that would make the
experiment suite impractically slow.
"""

import numpy as np

from repro.core.wma import WmaFrequencyScaler
from repro.sim.calibration import geforce_8800_gtx_spec
from repro.sim.engine import SimClock
from repro.sim.perf import RooflineModel


def test_bench_roofline_estimate(benchmark):
    model = RooflineModel(4.0)

    def run():
        for i in range(1000):
            model.estimate(1e9 + i, 1e8, 345e9, 86e9, 0.1)

    benchmark(run)


def test_bench_clock_event_dispatch(benchmark):
    def run():
        clock = SimClock()
        counter = [0]

        def cb(t):
            counter[0] += 1

        clock.every(0.1, cb)
        clock.every(0.37, cb)
        clock.advance_to(100.0)
        return counter[0]

    count = benchmark(run)
    assert count > 1000


def test_bench_wma_step(benchmark):
    spec = geforce_8800_gtx_spec()
    scaler = WmaFrequencyScaler(spec.core_ladder, spec.mem_ladder)
    rng = np.random.default_rng(0)
    us = rng.uniform(0.0, 1.0, size=(500, 2))

    def run():
        for u_core, u_mem in us:
            scaler.step(float(u_core), float(u_mem))

    benchmark(run)


def test_bench_full_controlled_run(benchmark):
    """One GreenGPU iteration of fast kmeans, end to end."""
    from repro.core.config import GreenGpuConfig
    from repro.core.policies import GreenGpuPolicy
    from repro.experiments.common import scaled_workload
    from repro.runtime.executor import run_workload

    workload = scaled_workload("kmeans", 0.02)
    config = GreenGpuConfig(scaling_interval_s=0.06, ondemand_interval_s=0.002)

    def run():
        return run_workload(
            workload, GreenGpuPolicy(config=config), n_iterations=2
        ).total_energy_j

    energy = benchmark(run)
    assert energy > 0.0


def _controlled_run(telemetry):
    from repro.core.config import GreenGpuConfig
    from repro.core.policies import GreenGpuPolicy
    from repro.experiments.common import scaled_workload
    from repro.runtime.executor import run_workload

    workload = scaled_workload("kmeans", 0.02)
    config = GreenGpuConfig(scaling_interval_s=0.06, ondemand_interval_s=0.002)
    return run_workload(
        workload, GreenGpuPolicy(config=config), n_iterations=2,
        telemetry=telemetry,
    ).total_energy_j


def test_bench_controlled_run_telemetry_off(benchmark):
    """Controller ticks against the explicit NOOP backend — the
    disabled-overhead trajectory ``benchmarks/check_telemetry_overhead.py``
    budgets in CI."""
    from repro.telemetry import NOOP

    energy = benchmark(lambda: _controlled_run(NOOP))
    assert energy > 0.0


def test_bench_controlled_run_telemetry_on(benchmark):
    """The same run with full metrics/span/event recording enabled.

    Compare against ``telemetry_off`` in the benchmark report to see
    what observability costs when it is *on* (no budget asserted — the
    <3 % budget applies to the disabled path only)."""
    from repro.telemetry import Telemetry

    def run():
        return _controlled_run(Telemetry())

    energy = benchmark(run)
    assert energy > 0.0
