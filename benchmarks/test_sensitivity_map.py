"""Bench: the utilization-plane savings map (§VII-A as a surface)."""

from repro.experiments import sensitivity


def test_sensitivity_map(run_once, benchmark):
    result = run_once(
        sensitivity.run,
        grid=[0.15, 0.35, 0.55, 0.75],
        time_scale=0.05,
        n_iterations=1,
    )
    benchmark.extra_info["savings_grid"] = {
        f"({p.u_core:.2f},{p.u_mem:.2f})": round(100 * p.gpu_saving, 2)
        for p in result.points
    }

    # The surface slopes the way the paper's observations say it must.
    assert result.best.u_core <= 0.35 and result.best.u_mem <= 0.35
    assert result.at(0.15, 0.15).gpu_saving > result.at(0.75, 0.55).gpu_saving
    assert result.best.gpu_saving > 0.08
