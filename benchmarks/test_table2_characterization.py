"""Regenerates paper Table II: the workload utilization characterization.

Each measured (u_core, u_mem) class must match the paper's description
column; fluctuating workloads must be flagged as such.
"""

from repro.experiments import table2


def test_table2_regenerate(run_once, benchmark):
    rows = run_once(table2.run, n_iterations=1, time_scale=0.1)
    by_name = {r.name: r for r in rows}

    benchmark.extra_info["utilizations"] = {
        r.name: (round(r.u_core, 3), round(r.u_mem, 3)) for r in rows
    }

    assert len(rows) == 9
    assert table2.classify(by_name["bfs"].u_core) == "high"
    assert table2.classify(by_name["bfs"].u_mem) == "high"
    assert table2.classify(by_name["lud"].u_core) == "medium"
    assert table2.classify(by_name["lud"].u_mem) == "low"
    assert table2.classify(by_name["pathfinder"].u_core) == "low"
    assert table2.classify(by_name["pathfinder"].u_mem) == "low"
    assert table2.classify(by_name["srad_v2"].u_core) == "high"
    assert table2.classify(by_name["srad_v2"].u_mem) == "medium"
    assert table2.classify(by_name["hotspot"].u_core) == "medium"
    assert table2.classify(by_name["hotspot"].u_mem) == "low"
    assert table2.classify(by_name["kmeans"].u_core) == "medium"
    assert table2.classify(by_name["kmeans"].u_mem) == "low"
    assert by_name["quasirandom"].fluctuating
    assert by_name["streamcluster"].fluctuating
