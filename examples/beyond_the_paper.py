#!/usr/bin/env python3
"""Tour of the extensions: everything the paper sketched but never ran.

1. the §VI 8-bit on-chip weight table vs the software controller;
2. a DVFS-capable GPU (the §VII-C "we expect more energy saving" claim);
3. measured — not emulated — CPU throttling with async communication;
4. N-way division across multiple GPUs;
5. auto-tuned WMA parameters vs the paper's hand-tuned ones.

Usage:
    python examples/beyond_the_paper.py
"""

from repro.core.config import GreenGpuConfig
from repro.core.wma import WmaFrequencyScaler
from repro.extensions.async_comm import measured_async_savings
from repro.extensions.gpu_dvfs import dvfs_savings_comparison
from repro.extensions.hardware_table import QuantizedWmaScaler
from repro.extensions.multigpu import MultiwayDivider
from repro.extensions.tuner import grid_search_wma_params
from repro.sim.calibration import geforce_8800_gtx_spec
from repro.units import to_mhz


def hardware_table_demo() -> None:
    print("1. §VI hardware sketch — 8-bit fixed-point weight table")
    spec = geforce_8800_gtx_spec()
    quantized = QuantizedWmaScaler(spec.core_ladder, spec.mem_ladder)
    floating = WmaFrequencyScaler(spec.core_ladder, spec.mem_ladder)
    print(f"   table storage: {quantized.table.storage_bytes} bytes "
          f"(paper's figure: 36 bytes)")
    for u in ((0.6, 0.25), (0.85, 0.15)):
        quantized.table.reset(); floating.reset()
        for _ in range(20):
            dq = quantized.step(*u)
            df = floating.step(*u)
        print(f"   u={u}: 8-bit picks core L{dq.core_level}/mem L{dq.mem_level}, "
              f"float picks core L{df.core_level}/mem L{df.mem_level}")
    print("   -> agreement within 1-2 levels; the blur always errs fast.\n")


def dvfs_demo() -> None:
    print("2. GPU DVFS — the §VII-C expectation, quantified")
    for name in ("pathfinder", "bfs"):
        c = dvfs_savings_comparison(name, time_scale=0.15, n_iterations=3)
        print(f"   {name:11s}: frequency-only {c.saving_frequency_only:6.1%} -> "
              f"DVFS {c.saving_dvfs:6.1%}  (advantage {c.dvfs_advantage:+.1%})")
    print("   -> voltage scaling multiplies savings where throttling happens.\n")


def async_demo() -> None:
    print("3. Measured async CPU throttling (the real Fig. 6c)")
    r = measured_async_savings("kmeans", time_scale=0.15, n_iterations=3)
    print(f"   paper-style emulation : {r.emulated_saving:6.1%}")
    print(f"   actually measured     : {r.measured_saving:6.1%} "
          f"(ondemand reached the lowest P-state: {r.cpu_floor_reached})\n")


def multigpu_demo() -> None:
    print("4. N-way division — one pthread per GPU (§VI)")
    names = ["cpu", "gpu0", "gpu1", "gpu2"]
    unit_times = [5.0, 1.0, 1.2, 1.4]
    divider = MultiwayDivider(names, step=0.02)
    shares = divider.drive(unit_times, iterations=200)
    for name, share, t in zip(names, shares, unit_times):
        print(f"   {name:5s}: {share:6.1%} of the work "
              f"(finishes in {share * t:.3f} relative time)")
    print(f"   finish-time imbalance: {divider.imbalance(unit_times):.2f}x "
          f"(1.00 = perfect)")

    # The same algorithm on the full co-simulated platform.
    from repro.core.config import GreenGpuConfig
    from repro.experiments.common import scaled_workload
    from repro.extensions.multigpu_sim import (
        MultiGreenGpuController,
        MultiHeteroSystem,
        run_multi_workload,
    )

    scale = 0.05
    cfg = GreenGpuConfig(scaling_interval_s=3.0 * scale,
                         ondemand_interval_s=0.1 * scale)
    times = {}
    for n_gpus in (1, 2):
        system = MultiHeteroSystem(
            gpu_specs=[geforce_8800_gtx_spec() for _ in range(n_gpus)]
        )
        result = run_multi_workload(
            scaled_workload("kmeans", scale),
            system=system,
            controller=MultiGreenGpuController(system, cfg),
            n_iterations=8,
        )
        times[n_gpus] = result.total_s
    print(f"   co-simulated kmeans: 1 GPU {times[1]:.1f} s -> "
          f"2 GPUs {times[2]:.1f} s "
          f"({times[1] / times[2]:.2f}x faster)\n")


def tuner_demo() -> None:
    print("5. Auto-tuning alpha/beta/phi (the paper's future work)")
    result = grid_search_wma_params(
        workloads=["kmeans", "pathfinder"], time_scale=0.05, n_iterations=2
    )
    paper = result.point_for(GreenGpuConfig())
    best = result.best
    assert paper is not None
    print(f"   paper's hand-tuned point: saving {paper.mean_saving:6.1%}, "
          f"slowdown {paper.mean_slowdown:5.1%}")
    print(f"   grid-search winner      : saving {best.mean_saving:6.1%}, "
          f"slowdown {best.mean_slowdown:5.1%} "
          f"(alpha_c={best.alpha_core}, alpha_m={best.alpha_mem}, phi={best.phi})")
    print("   -> the published point is near-optimal under its own "
          "slowdown budget.")


def main() -> None:
    hardware_table_demo()
    dvfs_demo()
    async_demo()
    multigpu_demo()
    tuner_demo()


if __name__ == "__main__":
    main()
