#!/usr/bin/env python3
"""Bring your own workload: profile it, then let GreenGPU manage it.

Demonstrates the library's extension surface:

1. describe a new application with a :class:`WorkloadProfile` — its
   utilization phases, iteration length and CPU/GPU speed ratio (what you
   would measure with nvidia-smi on real hardware);
2. characterize it on the simulated testbed (Table II style);
3. find its static optimum with the exhaustive oracle;
4. compare GreenGPU's online result against that offline bound.

The example models a video-analytics pipeline that alternates a
compute-heavy convolution phase with a memory-heavy resize/IO phase.

Usage:
    python examples/custom_workload.py
"""

from repro import (
    BestPerformancePolicy,
    GreenGpuPolicy,
    RodiniaDefaultPolicy,
    run_workload,
)
from repro.baselines.oracle import oracle_search
from repro.experiments.common import scaled_config, scaled_options
from repro.sim.calibration import geforce_8800_gtx_spec, phenom_ii_x2_spec
from repro.units import to_mhz
from repro.workloads.base import DemandModelWorkload, Phase, WorkloadProfile

TIME_SCALE = 0.05

VIDEO_ANALYTICS = WorkloadProfile(
    name="video-analytics",
    description="Alternating convolution (core-heavy) and resize (memory-heavy)",
    enlargement="n/a (synthetic)",
    phases=(
        Phase(0.6, 0.80, 0.30),   # convolution: high core, low memory
        Phase(0.4, 0.20, 0.70),   # resize + staging: memory-dominated
    ),
    gpu_seconds_per_iteration=130.0 * TIME_SCALE,
    cpu_gpu_time_ratio=3.0,       # balance point r* = 0.25 — on the 5 % grid
    h2d_bytes_per_iteration=48e6,
    d2h_bytes_per_iteration=16e6,
    fluctuating=True,
)


def main() -> None:
    gpu, cpu = geforce_8800_gtx_spec(), phenom_ii_x2_spec()
    workload = DemandModelWorkload(VIDEO_ANALYTICS, gpu, cpu)
    config = scaled_config(TIME_SCALE)
    options = scaled_options(TIME_SCALE)

    # 2. Characterize (what Table II does for the Rodinia workloads).
    from repro.sim.platform import make_testbed

    system = make_testbed()
    run_workload(workload, BestPerformancePolicy(), n_iterations=2, system=system)
    elapsed = system.gpu.elapsed_seconds
    print(f"measured utilization: core {system.gpu.busy_core_seconds / elapsed:.2f}, "
          f"memory {system.gpu.busy_mem_seconds / elapsed:.2f}")

    # 3. Offline optimum over (division, core clock, memory clock).
    oracle = oracle_search(
        workload, ratios=[0.0, 0.1, 0.2, 0.25, 0.3, 0.4], n_iterations=1,
        options=options,
    )
    print(f"oracle optimum: r={oracle.r:.2f}, "
          f"core {to_mhz(gpu.core_ladder[oracle.core_level]):.0f} MHz, "
          f"mem {to_mhz(gpu.mem_ladder[oracle.mem_level]):.0f} MHz "
          f"({oracle.evaluated} configurations searched)")

    # 4. GreenGPU online vs the offline bound and the naive default.
    default = run_workload(workload, RodiniaDefaultPolicy(), n_iterations=8,
                           options=options)
    green = run_workload(workload, GreenGpuPolicy(config=config), n_iterations=8,
                         options=options)
    per_iter_green = green.total_energy_j / green.n_iterations
    per_iter_oracle = oracle.result.total_energy_j / oracle.result.n_iterations
    per_iter_default = default.total_energy_j / default.n_iterations

    print(f"\nper-iteration energy:")
    print(f"  Rodinia default : {per_iter_default / 1e3:7.2f} kJ")
    print(f"  GreenGPU online : {per_iter_green / 1e3:7.2f} kJ "
          f"(converged to r={green.final_ratio:.2f})")
    print(f"  offline oracle  : {per_iter_oracle / 1e3:7.2f} kJ")
    gap = per_iter_green / per_iter_oracle - 1.0
    print(f"\nGreenGPU saves {1 - per_iter_green / per_iter_default:.1%} vs default "
          f"and lands within {gap:.1%} of the exhaustive offline optimum,")
    print("without ever measuring power — only utilizations and iteration times.")


if __name__ == "__main__":
    main()
