#!/usr/bin/env python3
"""Functional + simulated view of one divided application: kmeans.

The paper's runtime really splits the data: CPU pthreads cluster one
slice while the CUDA kernel clusters the rest, and the partial sums merge
at each reduction point (§VI).  This example shows both halves of our
reproduction working together:

- the *functional* kernel actually clusters real points at the division
  ratio the tier-1 controller converged to, and the result is verified
  bit-identical to the undivided computation;
- the *simulated* testbed provides the timing/energy those divisions
  would cost on the paper's hardware.

Usage:
    python examples/divided_kmeans_clustering.py
"""

import numpy as np

from repro import DivisionOnlyPolicy, RodiniaDefaultPolicy, run_workload
from repro.experiments.common import scaled_config, scaled_options, scaled_workload
from repro.workloads import kmeans

TIME_SCALE = 0.05


def main() -> None:
    # --- tier-1 on the simulator: find the energy-balanced division ------
    workload = scaled_workload("kmeans", TIME_SCALE)
    result = run_workload(
        workload,
        DivisionOnlyPolicy(config=scaled_config(TIME_SCALE)),
        n_iterations=10,
        options=scaled_options(TIME_SCALE),
    )
    r = result.final_ratio
    trace = ", ".join(f"{m.r:.2f}" for m in result.iterations)
    print(f"division trace (CPU share): {trace}")
    print(f"converged division: {r:.0%} CPU / {1 - r:.0%} GPU "
          f"(paper Fig. 7a: 20/80)")

    baseline = run_workload(workload, RodiniaDefaultPolicy(), n_iterations=10,
                            options=scaled_options(TIME_SCALE))
    print(f"simulated energy saving vs all-GPU: "
          f"{result.energy_saving_vs(baseline):.1%}\n")

    # --- the same division applied to a real clustering problem -----------
    problem = kmeans.generate_problem(n=20_000, k=12, d=16, seed=1)
    print(f"clustering {problem.n} points, k={problem.k}, d={problem.points.shape[1]}")
    print(f"  CPU slice: points[0:{int(round(r * problem.n))}]")
    print(f"  GPU slice: points[{int(round(r * problem.n))}:{problem.n}]")

    labels_div, centroids_div = kmeans.run_lloyd(problem, iterations=8, r=r)
    labels_ref, centroids_ref = kmeans.run_lloyd(problem, iterations=8, r=0.0)

    assert np.array_equal(labels_div, labels_ref)
    assert np.allclose(centroids_div, centroids_ref)
    inertia = kmeans.inertia(
        kmeans.KMeansProblem(problem.points, centroids_div), labels_div
    )
    print(f"\ndivided result identical to the monolithic run "
          f"(final inertia {inertia:,.0f})")
    print("division changes where the work runs — never what it computes.")


if __name__ == "__main__":
    main()
