#!/usr/bin/env python3
"""Quickstart: measure GreenGPU's energy saving on kmeans.

Runs the Rodinia-default configuration (all work on the GPU, every clock
at peak) and the holistic GreenGPU controller on the simulated
GeForce 8800 GTX + Phenom II testbed, then reports the energy saving —
the experiment behind the paper's 21.04 % headline number.

Usage:
    python examples/quickstart.py [--iterations N] [--time-scale S]
"""

import argparse

from repro import GreenGpuPolicy, RodiniaDefaultPolicy, make_workload, run_workload
from repro.experiments.common import scaled_config, scaled_options, scaled_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="kmeans",
                        help="Table II workload name (default: kmeans)")
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--time-scale", type=float, default=0.1,
                        help="shrink simulated durations by this factor")
    args = parser.parse_args()

    workload = scaled_workload(args.workload, args.time_scale)
    config = scaled_config(args.time_scale)
    options = scaled_options(args.time_scale)

    print(f"workload: {args.workload} "
          f"({workload.profile.description.lower()}; "
          f"{args.iterations} iterations)")

    baseline = run_workload(
        workload, RodiniaDefaultPolicy(), n_iterations=args.iterations,
        options=options,
    )
    print(f"Rodinia default : {baseline.total_s:8.1f} s, "
          f"{baseline.total_energy_j / 1e3:8.2f} kJ "
          f"({baseline.average_power_w:.0f} W wall)")

    green = run_workload(
        workload, GreenGpuPolicy(config=config), n_iterations=args.iterations,
        options=options,
    )
    print(f"GreenGPU        : {green.total_s:8.1f} s, "
          f"{green.total_energy_j / 1e3:8.2f} kJ "
          f"({green.average_power_w:.0f} W wall)")

    print(f"\nenergy saving   : {green.energy_saving_vs(baseline):.1%} "
          f"(paper reports 21.04% averaged over kmeans+hotspot)")
    print(f"final division  : {green.final_ratio:.0%} of work on the CPU")


if __name__ == "__main__":
    main()
