#!/usr/bin/env python3
"""Reproduce every table and figure of the GreenGPU paper in one run.

Walks through the evaluation section in order — Fig. 1 and Fig. 2
motivation studies, the Table II characterization, the Fig. 5 scaling
trace, Fig. 6 savings, Fig. 7 division traces, Fig. 8 holistic
comparison, and the 21.04 % headline — printing each artifact as a text
table with the paper's reference numbers alongside.

Usage:
    python examples/reproduce_paper.py           # moderate scale, ~10 min
    python examples/reproduce_paper.py --fast    # reduced scale, ~2 min
    python examples/reproduce_paper.py --only fig7 headline
"""

import argparse
import time

from repro.experiments import fig1, fig2, fig5, fig6, fig7, fig8, headline, table2

ARTIFACTS = {
    "fig1": fig1.main,
    "fig2": fig2.main,
    "table2": table2.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "headline": headline.main,
}

FAST_OVERRIDES = {
    "fig1": lambda: _print_fig1_fast(),
    "fig2": lambda: _print_fig2_fast(),
}


def _print_fig1_fast() -> None:
    panels = fig1.run_all(n_iterations=1, time_scale=0.1)
    for (workload, domain), points in panels.items():
        floor = points[-1]
        best = min(points, key=lambda p: p.relative_energy)
        print(f"fig1 {workload}/{domain}: floor-level time x{floor.normalized_time:.3f}, "
              f"best energy x{best.relative_energy:.3f} at {best.f_mhz:.0f} MHz")


def _print_fig2_fast() -> None:
    result = fig2.run(n_iterations=2, time_scale=0.05)
    print(f"fig2 kmeans: energy minimum at r={result.optimal_r:.2f} "
          f"(x{result.normalized_energy.min():.3f} of all-GPU; paper: ~0.10)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced-scale summary output")
    parser.add_argument("--only", nargs="*", choices=sorted(ARTIFACTS),
                        help="run only these artifacts")
    args = parser.parse_args()

    names = args.only or list(ARTIFACTS)
    for name in names:
        print(f"\n{'=' * 72}\n{name.upper()}\n{'=' * 72}")
        started = time.perf_counter()
        runner = FAST_OVERRIDES.get(name) if args.fast else None
        (runner or ARTIFACTS[name])()
        print(f"[{name} regenerated in {time.perf_counter() - started:.1f}s]")


if __name__ == "__main__":
    main()
