"""Legacy setup shim.

Everything lives in pyproject.toml; this file only exists so that
`pip install -e . --no-use-pep517` works on environments without the
`wheel` package (modern PEP-517 editable installs require it).
"""

from setuptools import setup

setup()
