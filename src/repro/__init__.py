"""GreenGPU reproduction.

A full reimplementation of "GreenGPU: A Holistic Approach to Energy
Efficiency in GPU-CPU Heterogeneous Architectures" (Ma, Li, Chen, Zhang,
Wang — ICPP 2012) on a simulated GPU-CPU testbed.

Quickstart::

    from repro import make_workload, run_workload, GreenGpuPolicy, RodiniaDefaultPolicy

    workload = make_workload("kmeans")
    baseline = run_workload(workload, RodiniaDefaultPolicy(), n_iterations=10)
    green = run_workload(workload, GreenGpuPolicy(), n_iterations=10)
    print(f"energy saving: {green.energy_saving_vs(baseline):.1%}")

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — the paper's algorithms: WMA frequency scaling,
  workload division, ondemand, the two-tier controller, policies.
- :mod:`repro.sim` — the simulated testbed: GPU/CPU devices, PCIe bus,
  power models, WattsUp-style meters, the event clock.
- :mod:`repro.workloads` — Table II workload models + real numpy kernels.
- :mod:`repro.runtime` — the heterogeneous executor and partitioner.
- :mod:`repro.monitors` — nvidia-smi / proc-stat facades.
- :mod:`repro.baselines` — static sweeps and exhaustive oracles.
- :mod:`repro.analysis` — energy accounting and convergence metrics.
- :mod:`repro.experiments` — one module per paper table/figure.
- :mod:`repro.telemetry` — metrics registry, span tracing, exporters.
"""

from repro.core.config import GreenGpuConfig
from repro.core.controller import GreenGpuController, TierMode
from repro.core.division import WorkloadDivider
from repro.core.ondemand import OndemandGovernor
from repro.core.policies import (
    BestPerformancePolicy,
    DivisionOnlyPolicy,
    FrequencyScalingOnlyPolicy,
    GreenGpuPolicy,
    Policy,
    RodiniaDefaultPolicy,
    StaticPolicy,
)
from repro.core.wma import WmaFrequencyScaler
from repro.faults.health import ControlHealth
from repro.faults.injector import FaultInjector, FaultPlan, fault_profile
from repro.harness import HarnessReport, JobSpec, JobState, run_jobs
from repro.runtime.executor import ExecutorOptions, run_workload
from repro.runtime.metrics import IterationMetrics, RunResult
from repro.sim.platform import HeteroSystem, TestbedConfig, make_testbed
from repro.telemetry import (
    NOOP,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    export_telemetry,
    format_metrics_report,
    merge_directory,
)
from repro.workloads.characteristics import get_profile, make_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration & policies
    "GreenGpuConfig",
    "Policy",
    "GreenGpuPolicy",
    "BestPerformancePolicy",
    "RodiniaDefaultPolicy",
    "DivisionOnlyPolicy",
    "FrequencyScalingOnlyPolicy",
    "StaticPolicy",
    # algorithms
    "GreenGpuController",
    "TierMode",
    "WmaFrequencyScaler",
    "WorkloadDivider",
    "OndemandGovernor",
    # testbed
    "HeteroSystem",
    "TestbedConfig",
    "make_testbed",
    # workloads & runtime
    "make_workload",
    "get_profile",
    "workload_names",
    "run_workload",
    "ExecutorOptions",
    "RunResult",
    "IterationMetrics",
    # fault injection & hardening
    "FaultPlan",
    "FaultInjector",
    "fault_profile",
    "ControlHealth",
    # supervised job harness
    "JobSpec",
    "JobState",
    "run_jobs",
    "HarnessReport",
    # telemetry
    "Telemetry",
    "NullTelemetry",
    "NOOP",
    "MetricsRegistry",
    "export_telemetry",
    "merge_directory",
    "format_metrics_report",
]
