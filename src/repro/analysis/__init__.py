"""Post-run analysis: energy accounting, convergence detection, tables.

These utilities compute exactly the derived quantities the paper's
evaluation reports: total vs *dynamic* energy savings (Fig. 6a vs 6b),
the emulated CPU+GPU scaling savings (Fig. 6c), division convergence
(Fig. 7), and formatted result tables.
"""

from repro.analysis.energy import (
    cpu_gpu_emulated_saving,
    dynamic_gpu_energy,
    dynamic_gpu_saving,
    gpu_idle_wall_power,
    total_gpu_saving,
)
from repro.analysis.convergence import (
    converged_value,
    convergence_iteration,
    oscillation_amplitude,
)
from repro.analysis.ascii_plot import bar_chart, line_chart, sparkline
from repro.analysis.fluctuation import FluctuationReport, detect_fluctuation, volatility
from repro.analysis.report import comparison_report, run_report
from repro.analysis.tables import format_table

__all__ = [
    "run_report",
    "comparison_report",
    "sparkline",
    "line_chart",
    "bar_chart",
    "detect_fluctuation",
    "volatility",
    "FluctuationReport",
    "gpu_idle_wall_power",
    "dynamic_gpu_energy",
    "total_gpu_saving",
    "dynamic_gpu_saving",
    "cpu_gpu_emulated_saving",
    "convergence_iteration",
    "converged_value",
    "oscillation_amplitude",
    "format_table",
]
