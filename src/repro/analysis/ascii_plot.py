"""Terminal plots: render the paper's figures without matplotlib.

The experiment CLIs print their artifacts as tables; these helpers add a
visual layer that works in any terminal:

- :func:`sparkline` — one-line unicode block profile of a series;
- :func:`line_chart` — multi-row scatter/line chart of (t, y) samples;
- :func:`bar_chart` — horizontal labelled bars (the Fig. 6 savings view).

All functions return strings (no printing, no I/O) so they are trivially
testable and composable with the table formatter.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigError

_BLOCKS = "▁▂▃▄▅▆▇█"


def _as_array(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ConfigError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ConfigError(f"{name} must be finite")
    return arr


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character profile of a series.

    Constant series render as a flat mid-height line.
    """
    arr = _as_array(values, "values")
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return _BLOCKS[3] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(v))] for v in scaled)


def line_chart(
    times: Sequence[float],
    values: Sequence[float],
    width: int = 64,
    height: int = 12,
    title: str | None = None,
    y_format: str = "{:8.1f}",
) -> str:
    """Character-grid chart of a time series with y-axis labels.

    Samples are binned into ``width`` columns (mean per bin) and plotted
    with '*' marks; the y axis is labelled at the top, middle and bottom.
    """
    if width < 8 or height < 3:
        raise ConfigError("chart needs width >= 8 and height >= 3")
    t = _as_array(times, "times")
    y = _as_array(values, "values")
    if t.size != y.size:
        raise ConfigError("times and values must have equal length")

    # Bin samples into columns by time.
    t0, t1 = float(t.min()), float(t.max())
    span = t1 - t0 or 1.0
    cols = np.clip(((t - t0) / span * (width - 1)).astype(int), 0, width - 1)
    col_values = np.full(width, np.nan)
    for c in range(width):
        mask = cols == c
        if mask.any():
            col_values[c] = y[mask].mean()

    lo, hi = float(y.min()), float(y.max())
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for c, v in enumerate(col_values):
        if np.isnan(v):
            continue
        row = int(round((v - lo) / (hi - lo) * (height - 1)))
        grid[height - 1 - row][c] = "*"

    labels = {0: hi, height // 2: (hi + lo) / 2.0, height - 1: lo}
    lines = []
    if title:
        lines.append(title)
    for r in range(height):
        label = y_format.format(labels[r]) if r in labels else " " * 8
        lines.append(f"{label} |{''.join(grid[r])}")
    axis = " " * 8 + " +" + "-" * width
    lines.append(axis)
    lines.append(" " * 10 + f"t = {t0:.1f} .. {t1:.1f} s")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    value_format: str = "{:6.2f}",
) -> str:
    """Horizontal bar chart; negative values extend left of the axis."""
    if len(labels) != len(list(values)):
        raise ConfigError("labels and values must have equal length")
    arr = _as_array(values, "values")
    if width < 8:
        raise ConfigError("chart needs width >= 8")
    label_width = max(len(str(l)) for l in labels)
    scale = float(np.abs(arr).max()) or 1.0
    neg_width = int(np.ceil(max(0.0, -float(arr.min())) / scale * width)) if arr.min() < 0 else 0
    lines = [title] if title else []
    for label, value in zip(labels, arr):
        bar_len = int(round(abs(value) / scale * width))
        if value >= 0.0:
            bar = " " * neg_width + "|" + "#" * bar_len
        else:
            bar = " " * (neg_width - bar_len) + "#" * bar_len + "|"
        lines.append(
            f"{str(label).ljust(label_width)} {value_format.format(float(value))} {bar}"
        )
    return "\n".join(lines)
