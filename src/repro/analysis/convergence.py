"""Convergence detection for controller traces.

The paper reports convergence qualitatively ("roughly the same after 4
iterations", Fig. 7a); these helpers make the same judgements
programmatically for tests and EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError


def convergence_iteration(values: np.ndarray | list[float], tol: float = 0.0) -> int:
    """First index from which the series never changes by more than ``tol``.

    Raises :class:`ConvergenceError` if the series never settles (i.e.
    the last step still moves more than ``tol``).
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ConvergenceError("empty series")
    if v.size == 1:
        return 0
    moves = np.abs(np.diff(v)) > tol
    if moves[-1]:
        raise ConvergenceError("series still moving at its end")
    last_move = np.flatnonzero(moves)
    return int(last_move[-1] + 1) if last_move.size else 0


def converged_value(values: np.ndarray | list[float], tol: float = 0.0) -> float:
    """The settled value of a converging series."""
    v = np.asarray(values, dtype=float)
    idx = convergence_iteration(v, tol)
    return float(v[idx])


def oscillation_amplitude(values: np.ndarray | list[float], tail: int = 6) -> float:
    """Peak-to-peak amplitude over the last ``tail`` samples.

    Zero for a settled controller; the division-step ablation uses this
    to quantify the large-step oscillation the paper warns about (§V-B).
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ConvergenceError("empty series")
    window = v[-tail:]
    return float(window.max() - window.min())
