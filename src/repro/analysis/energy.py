"""Energy accounting for the paper's three savings metrics (Fig. 6).

- **Total GPU saving** (Fig. 6a): Meter2 wall energy relative to the
  best-performance run of the same workload.
- **Dynamic GPU saving** (Fig. 6b): the paper computes dynamic energy "by
  subtracting the idle energy from the runtime energy" — idle energy
  being the card's idle wall power (at its default lowest clocks)
  integrated over the run.
- **Emulated CPU+GPU saving** (Fig. 6c): whole-system saving when, on top
  of GPU scaling, every CPU busy-wait period is re-priced at the lowest
  P-state's idle power (the paper's emulation of asynchronous
  communication, §VII-A).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.runtime.metrics import RunResult
from repro.sim.platform import TestbedConfig


def gpu_idle_wall_power(config: TestbedConfig) -> float:
    """Meter2 wall power of an idle card at its default (lowest) clocks."""
    gpu = config.gpu
    device_idle = gpu.power.idle_power(
        gpu.core_ladder.floor / gpu.core_ladder.peak,
        gpu.mem_ladder.floor / gpu.mem_ladder.peak,
    )
    return (device_idle + config.meter2_overhead_w) / config.meter2_efficiency


def dynamic_gpu_energy(result: RunResult, config: TestbedConfig) -> float:
    """GPU runtime energy minus idle energy over the run's duration."""
    if result.total_s <= 0.0:
        raise SimulationError("run has no elapsed time")
    dynamic = result.gpu_energy_j - gpu_idle_wall_power(config) * result.total_s
    return max(0.0, dynamic)


def total_gpu_saving(result: RunResult, baseline: RunResult) -> float:
    """Fig. 6a metric: fractional Meter2 energy saving vs baseline."""
    return result.gpu_energy_saving_vs(baseline)


def dynamic_gpu_saving(
    result: RunResult, baseline: RunResult, config: TestbedConfig
) -> float:
    """Fig. 6b metric: fractional *dynamic* GPU energy saving vs baseline."""
    base_dynamic = dynamic_gpu_energy(baseline, config)
    if base_dynamic <= 0.0:
        raise SimulationError("baseline has no dynamic GPU energy")
    return 1.0 - dynamic_gpu_energy(result, config) / base_dynamic


def cpu_gpu_emulated_saving(result: RunResult, baseline: RunResult) -> float:
    """Fig. 6c metric: whole-system saving with spin re-priced as idle.

    The scaled run's Meter1 energy is replaced by its emulated value
    (busy-wait periods at the lowest P-state's idle power); the baseline
    keeps its measured energy, exactly as in the paper's emulation.
    """
    if baseline.total_energy_j <= 0.0:
        raise SimulationError("baseline has no energy measurement")
    emulated_total = result.gpu_energy_j + result.cpu_energy_emulated_idle_spin_j
    return 1.0 - emulated_total / baseline.total_energy_j
