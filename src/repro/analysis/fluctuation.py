"""Utilization-trace fluctuation detection.

The paper classifies QG and streamcluster as "highly fluctuating" *by
studying the utilization traces* (§VI) — a manual step.  This module
automates it: given a sampled utilization series, decide whether the
workload is phase-stable or fluctuating.

The detector is deliberately simple and threshold-based (it must be
explainable and cheap enough for a runtime): a trace is *fluctuating*
when the mean absolute sample-to-sample change of either domain's
utilization exceeds a threshold — i.e. the workload keeps moving between
operating points faster than the scaler's sampling period, which is
exactly the property that stresses the WMA loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: Default deviation threshold separating stable from fluctuating traces.
#: Phase-stable workloads deviate a few hundredths from their typical
#: operating point; QG/SC's bimodal phase alternation deviates several
#: times that.
DEFAULT_THRESHOLD = 0.06


@dataclass(frozen=True, slots=True)
class FluctuationReport:
    """Outcome of the detector on one (u_core, u_mem) trace."""

    core_volatility: float
    mem_volatility: float
    threshold: float

    @property
    def volatility(self) -> float:
        """The larger of the two domains' volatilities."""
        return max(self.core_volatility, self.mem_volatility)

    @property
    def fluctuating(self) -> bool:
        return self.volatility > self.threshold


def volatility(series: np.ndarray | list[float]) -> float:
    """Mean absolute deviation from the series median.

    Robust to dwell time: a workload that spends 70 % of each iteration
    in one phase and 30 % in another is just as bimodal whether it
    switches every sample or every tenth sample, and the
    deviation-from-median statistic scores both the same — unlike
    sample-to-sample deltas, which vanish for slow alternation.
    """
    values = np.asarray(series, dtype=float)
    if values.size < 2:
        raise ConfigError("volatility needs at least two samples")
    if np.any(values < -1e-9) or np.any(values > 1.0 + 1e-9):
        raise ConfigError("utilizations must be in [0, 1]")
    return float(np.abs(values - np.median(values)).mean())


def detect_fluctuation(
    u_core: np.ndarray | list[float],
    u_mem: np.ndarray | list[float],
    threshold: float = DEFAULT_THRESHOLD,
) -> FluctuationReport:
    """Classify a sampled utilization trace (see module docstring)."""
    if threshold <= 0.0:
        raise ConfigError("threshold must be positive")
    return FluctuationReport(
        core_volatility=volatility(u_core),
        mem_volatility=volatility(u_mem),
        threshold=threshold,
    )
