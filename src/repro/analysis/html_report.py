"""Self-contained HTML run reports: the run as one reviewable artifact.

``repro report RUN_DIR`` renders a telemetry run directory (snapshot +
audit trail) into a single HTML file with **zero external dependencies**
— inline SVG, inline CSS, no scripts, no network fetches — mirroring the
paper's Figs. 5-8 panels:

- frequency timeline (core + memory, step lines, flip markers);
- utilization timeline (``u_c`` / ``u_m``);
- wall-power timeline;
- division-ratio timeline (tier 1);
- the WMA weight-evolution heatmap (pairs x ticks, per-tick normalized).

Colors follow a CVD-validated categorical pair (blue/orange) and a
single-hue sequential blue ramp for the heatmap; identity is never
color-alone (legends plus a full data table in a ``<details>`` fold).
The page pins ``color-scheme: light`` so the precomputed heatmap fills
stay on the surface they were validated against.
"""

from __future__ import annotations

import html
import os
from typing import Any, Sequence

from repro.errors import SerializationError
from repro.ioutil import atomic_write_text
from repro.telemetry.audit import audit_path, read_audit, scaling_records
from repro.telemetry.exporters import SNAPSHOT_NAME, read_snapshot

REPORT_NAME = "report.html"

# Chart geometry (one shared spec so the timelines align vertically).
_W, _H = 760, 190
_ML, _MR, _MT, _MB = 64, 16, 14, 30

# Categorical slots 1-2 (validated adjacent pair) + text/surface tokens.
_SERIES_1 = "#2a78d6"   # blue  — core / primary series
_SERIES_2 = "#eb6834"   # orange — memory / secondary series
_TEXT = "#0b0b0b"
_TEXT_2 = "#52514e"
_GRID = "#e4e2dd"
_SURFACE = "#fcfcfb"
_FLIP = "#52514e"       # flip markers: neutral ink, not a status color

# Sequential blue ramp, light -> dark (single hue; low values recede).
_RAMP = ("#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
         "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
         "#0d366b")

#: Above this many ticks the heatmap/table stride-samples columns.
_MAX_COLUMNS = 220


def _fmt(value: float) -> str:
    """Compact axis-label formatting."""
    return f"{value:.6g}"


def _x_scale(t0: float, t1: float):
    span = (t1 - t0) or 1.0
    inner = _W - _ML - _MR

    def to_x(t: float) -> float:
        return _ML + (t - t0) / span * inner
    return to_x


def _y_scale(lo: float, hi: float):
    if hi <= lo:
        hi = lo + 1.0
    inner = _H - _MT - _MB

    def to_y(v: float) -> float:
        return _MT + (hi - v) / (hi - lo) * inner
    return to_y


def _axis(t0: float, t1: float, lo: float, hi: float,
          y_unit: str) -> list[str]:
    to_x, to_y = _x_scale(t0, t1), _y_scale(lo, hi)
    parts = []
    for k in range(5):
        v = lo + (hi - lo) * k / 4
        y = to_y(v)
        parts.append(f'<line class="grid" x1="{_ML}" y1="{y:.1f}" '
                     f'x2="{_W - _MR}" y2="{y:.1f}"/>')
        parts.append(f'<text class="tick" x="{_ML - 6}" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{_fmt(v)}</text>')
    for k in range(5):
        t = t0 + (t1 - t0) * k / 4
        x = to_x(t)
        parts.append(f'<text class="tick" x="{x:.1f}" y="{_H - _MB + 16}" '
                     f'text-anchor="middle">{_fmt(t)}</text>')
    parts.append(f'<text class="tick" x="{_W - _MR}" y="{_H - 4}" '
                 f'text-anchor="end">t (sim s)</text>')
    parts.append(f'<text class="unit" x="{_ML}" y="{_MT - 3}" '
                 f'text-anchor="start">{html.escape(y_unit)}</text>')
    return parts


def _path(points: Sequence[tuple[float, float]], to_x, to_y,
          step: bool) -> str:
    cmds = []
    prev_y = None
    for t, v in points:
        x, y = to_x(t), to_y(v)
        if not cmds:
            cmds.append(f"M{x:.1f} {y:.1f}")
        elif step:
            cmds.append(f"H{x:.1f}")
            if y != prev_y:
                cmds.append(f"V{y:.1f}")
        else:
            cmds.append(f"L{x:.1f} {y:.1f}")
        prev_y = y
    return " ".join(cmds)


def _timeline(
    title: str,
    series: list[tuple[str, str, list[tuple[float, float]]]],
    *,
    t_range: tuple[float, float],
    y_unit: str,
    step: bool = False,
    y_range: tuple[float, float] | None = None,
    markers: Sequence[float] = (),
    marker_label: str = "decision flip",
) -> str:
    """One SVG timeline panel (series = (label, color, [(t, v), ...]))."""
    t0, t1 = t_range
    values = [v for _, _, pts in series for _, v in pts]
    if y_range is not None:
        lo, hi = y_range
    else:
        lo, hi = (min(values), max(values)) if values else (0.0, 1.0)
        if lo == hi:
            lo, hi = lo - 0.5, hi + 0.5
        pad = (hi - lo) * 0.06
        lo, hi = lo - pad, hi + pad
    to_x, to_y = _x_scale(t0, t1), _y_scale(lo, hi)

    parts = [f'<svg viewBox="0 0 {_W} {_H}" role="img" '
             f'aria-label="{html.escape(title)}">']
    parts += _axis(t0, t1, lo, hi, y_unit)
    for t in markers:
        x = to_x(t)
        parts.append(f'<line class="flip" x1="{x:.1f}" y1="{_MT}" '
                     f'x2="{x:.1f}" y2="{_H - _MB}">'
                     f'<title>{html.escape(marker_label)} at t='
                     f'{_fmt(t)}s</title></line>')
    for label, color, pts in series:
        if not pts:
            continue
        parts.append(f'<path class="line" stroke="{color}" '
                     f'd="{_path(pts, to_x, to_y, step)}">'
                     f'<title>{html.escape(label)}</title></path>')
    parts.append("</svg>")

    legend = ""
    if len(series) > 1:
        chips = "".join(
            f'<span class="chip"><span class="swatch" '
            f'style="background:{color}"></span>{html.escape(label)}</span>'
            for label, color, _ in series
        )
        legend = f'<div class="legend">{chips}</div>'
    return (f'<section><h2>{html.escape(title)}</h2>{legend}'
            f'{"".join(parts)}</section>')


def _ramp_color(value: float) -> str:
    """Normalized weight in [0, 1] -> sequential ramp step."""
    index = int(min(max(value, 0.0), 1.0) * (len(_RAMP) - 1))
    return _RAMP[index]


def _stride(n: int, cap: int = _MAX_COLUMNS) -> int:
    return max(1, -(-n // cap))  # ceil division


def _heatmap(decides: list[dict[str, Any]]) -> str:
    """WMA weight-evolution heatmap: one row per pair, one column per tick."""
    if not decides:
        return ""
    shape = (len(decides[0]["weights"]), len(decides[0]["weights"][0]))
    pairs = [(i, j) for i in range(shape[0]) for j in range(shape[1])]
    stride = _stride(len(decides))
    columns = decides[::stride]

    cell_w = (_W - _ML - _MR) / len(columns)
    cell_h = 14.0
    height = _MT + cell_h * len(pairs) + _MB
    parts = [f'<svg viewBox="0 0 {_W} {height:.0f}" role="img" '
             f'aria-label="WMA weight evolution heatmap">']
    for row, (i, j) in enumerate(pairs):
        y = _MT + row * cell_h
        parts.append(f'<text class="tick" x="{_ML - 6}" '
                     f'y="{y + cell_h / 2 + 3.5:.1f}" text-anchor="end">'
                     f'c{i}·m{j}</text>')
        for col, record in enumerate(columns):
            weights = record["weights"]
            peak = max(max(r) for r in weights) or 1.0
            value = weights[i][j] / peak
            x = _ML + col * cell_w
            chosen = (record["core_level"], record["mem_level"]) == (i, j)
            ring = ' stroke="#0b0b0b" stroke-width="0.8"' if chosen else ""
            parts.append(
                f'<rect x="{x:.2f}" y="{y:.1f}" width="{cell_w:.2f}" '
                f'height="{cell_h - 2:.1f}" rx="2" '
                f'fill="{_ramp_color(value)}"{ring}>'
                f'<title>tick {record["tick"]} (t={_fmt(record["t_sim"])}s) '
                f'pair c{i}·m{j}: w={value:.3f} of peak'
                f'{" — chosen" if chosen else ""}</title></rect>'
            )
    for k in (0, len(columns) - 1):
        x = _ML + (k + 0.5) * cell_w
        parts.append(f'<text class="tick" x="{x:.1f}" '
                     f'y="{height - _MB + 16:.0f}" text-anchor="middle">'
                     f'tick {columns[k]["tick"]}</text>')
    parts.append("</svg>")

    ramp = "".join(f'<span class="swatch" style="background:{c}"></span>'
                   for c in _RAMP)
    note = (f" (every {stride}. tick shown)" if stride > 1 else "")
    return (
        "<section><h2>WMA weight evolution</h2>"
        '<div class="legend"><span class="chip">low weight '
        f"{ramp} high weight</span>"
        '<span class="chip"><span class="swatch" style="background:'
        f'{_SURFACE};border:1.5px solid {_TEXT}"></span>chosen pair</span>'
        f"</div>{''.join(parts)}"
        f'<p class="note">Rows are (core, memory) frequency pairs; each '
        f"column is one scaling tick, normalized to that tick's peak "
        f"weight{note}.</p></section>"
    )


def _audit_table(decides: list[dict[str, Any]],
                 divisions: list[dict[str, Any]]) -> str:
    """The accessibility/table view of the plotted data."""
    stride = _stride(len(decides))
    rows = []
    for record in decides[::stride]:
        rows.append(
            "<tr>"
            f"<td>{record['tick']}</td><td>{_fmt(record['t_sim'])}</td>"
            f"<td>{100 * record['u_core']:.0f}%</td>"
            f"<td>{100 * record['u_mem']:.0f}%</td>"
            f"<td>L{record['core_level']} / "
            f"{record['f_core'] / 1e6:.0f} MHz</td>"
            f"<td>L{record['mem_level']} / "
            f"{record['f_mem'] / 1e6:.0f} MHz</td>"
            f"<td>{100 * record['margin']:.1f}%</td>"
            f"<td>{'yes' if record.get('flipped') else ''}</td>"
            f"<td>{_fmt(record['power_w']) if 'power_w' in record else ''}</td>"
            "</tr>"
        )
    table = (
        "<table><thead><tr><th>tick</th><th>t (s)</th><th>u_core</th>"
        "<th>u_mem</th><th>core</th><th>mem</th><th>margin</th>"
        "<th>flip</th><th>power (W)</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )
    div_rows = "".join(
        f"<tr><td>{_fmt(r['t_sim'])}</td><td>{r['tc']:.2f}</td>"
        f"<td>{r['tg']:.2f}</td><td>{r['r_prev']:.2f}</td>"
        f"<td>{r['r_next']:.2f}</td>"
        f"<td>{'frozen' if r.get('frozen') else 'held' if r.get('held_by_safeguard') else 'moved' if r.get('moved') else 'steady'}</td></tr>"
        for r in divisions
    )
    div_table = (
        "<table><thead><tr><th>t (s)</th><th>tc (s)</th><th>tg (s)</th>"
        "<th>r</th><th>r next</th><th>action</th></tr></thead>"
        f"<tbody>{div_rows}</tbody></table>"
        if divisions else ""
    )
    return (f"<details><summary>Data table ({len(decides)} scaling ticks"
            f"{f', {len(divisions)} division updates' if divisions else ''}"
            f")</summary>{table}{div_table}</details>")


#: Spans shown in the HTML trace waterfall before eliding the tail.
_MAX_TRACE_ROWS = 48


def _trace_panel(directory: str) -> str:
    """Stitched-trace waterfall: one bar per span on the run's wall clock.

    Rendered only when the directory has a merged event stream with
    traced spans; wider label gutter than the timelines because span
    names carry tree indentation.
    """
    from repro.telemetry.exporters import EVENTS_NAME, read_events
    from repro.telemetry.traceview import _iter_depth_first, stitch_spans

    path = os.path.join(directory, EVENTS_NAME)
    if not os.path.exists(path):
        return ""
    roots = stitch_spans(read_events(path))
    rows = [(node, depth) for node, depth in _iter_depth_first(roots)
            if node.t_unix0 is not None]
    if not rows:
        return ""
    total = len(rows)
    rows = rows[:_MAX_TRACE_ROWS]
    t0 = min(node.t_unix0 for node, _ in rows)
    extent = max(max(node.t_unix0 + node.wall_s for node, _ in rows) - t0,
                 1e-9)
    left = 210.0
    inner = _W - left - _MR

    def to_x(t: float) -> float:
        return left + t / extent * inner

    row_h = 16.0
    height = _MT + row_h * len(rows) + _MB
    parts = [f'<svg viewBox="0 0 {_W} {height:.0f}" role="img" '
             f'aria-label="distributed trace waterfall">']
    for k in range(5):
        t = extent * k / 4
        x = to_x(t)
        parts.append(f'<line class="grid" x1="{x:.1f}" y1="{_MT}" '
                     f'x2="{x:.1f}" y2="{height - _MB:.0f}"/>')
        parts.append(f'<text class="tick" x="{x:.1f}" '
                     f'y="{height - _MB + 16:.0f}" text-anchor="middle">'
                     f'{t * 1e3:.0f} ms</text>')
    for row, (node, depth) in enumerate(rows):
        y = _MT + row * row_h
        label = (" " * 2 * min(depth, 8) + node.name)[:36]
        parts.append(f'<text class="tick" x="{left - 8:.0f}" '
                     f'y="{y + row_h - 5:.1f}" text-anchor="end">'
                     f'{html.escape(label)}</text>')
        x0 = to_x(node.t_unix0 - t0)
        x1 = max(to_x(node.t_unix0 - t0 + node.wall_s), x0 + 1.5)
        color = _SERIES_1 if node.ok else _SERIES_2
        parts.append(
            f'<rect x="{x0:.1f}" y="{y + 2:.1f}" '
            f'width="{x1 - x0:.1f}" height="{row_h - 5:.1f}" rx="2" '
            f'fill="{color}"><title>{html.escape(node.name)} — '
            f'{node.wall_s * 1e3:.2f} ms, worker '
            f'{html.escape(node.job or "-")}, span {node.span_id}'
            f'{"" if node.ok else " (failed)"}</title></rect>'
        )
    parts.append("</svg>")

    elided = (f" First {len(rows)} of {total} spans shown; the full tree "
              f"is in <code>greengpu trace</code>." if total > len(rows)
              else "")
    return (
        "<section><h2>Distributed trace</h2>"
        '<div class="legend">'
        f'<span class="chip"><span class="swatch" style="background:'
        f'{_SERIES_1}"></span>span</span>'
        f'<span class="chip"><span class="swatch" style="background:'
        f'{_SERIES_2}"></span>failed span</span></div>'
        f"{''.join(parts)}"
        f'<p class="note">Spans stitched across processes by deterministic '
        f"trace ids; open <code>trace.json</code> in Perfetto for the "
        f"interactive view.{elided}</p></section>"
    )


def _meta_grid(items: list[tuple[str, str]]) -> str:
    cells = "".join(
        f'<div class="stat"><div class="stat-label">{html.escape(k)}</div>'
        f'<div class="stat-value">{html.escape(v)}</div></div>'
        for k, v in items
    )
    return f'<div class="stats">{cells}</div>'


_CSS = f"""
:root {{ color-scheme: light; }}
body {{
  margin: 2rem auto; max-width: {_W + 40}px; padding: 0 20px;
  background: {_SURFACE}; color: {_TEXT};
  font: 14px/1.5 system-ui, sans-serif;
}}
h1 {{ font-size: 1.3rem; margin-bottom: .2rem; }}
h2 {{ font-size: 1rem; margin: 1.6rem 0 .4rem; }}
.subtitle, .note, .stat-label {{ color: {_TEXT_2}; }}
.note {{ font-size: .85rem; }}
.stats {{ display: flex; flex-wrap: wrap; gap: .5rem 2rem; margin: 1rem 0; }}
.stat-label {{ font-size: .78rem; text-transform: uppercase;
  letter-spacing: .04em; }}
.stat-value {{ font-size: 1.15rem; font-variant-numeric: tabular-nums; }}
svg {{ width: 100%; height: auto; display: block; }}
svg text {{ font: 11px system-ui, sans-serif; fill: {_TEXT_2}; }}
svg .unit {{ font-size: 10px; }}
.grid {{ stroke: {_GRID}; stroke-width: 1; }}
.line {{ fill: none; stroke-width: 2; stroke-linejoin: round; }}
.flip {{ stroke: {_FLIP}; stroke-width: 1; stroke-dasharray: 3 3; }}
.legend {{ display: flex; gap: 1rem; font-size: .85rem; color: {_TEXT_2};
  margin: .2rem 0 .3rem; align-items: center; flex-wrap: wrap; }}
.chip {{ display: inline-flex; align-items: center; gap: .35rem; }}
.swatch {{ width: 10px; height: 10px; border-radius: 3px;
  display: inline-block; }}
table {{ border-collapse: collapse; margin: .6rem 0; width: 100%;
  font-variant-numeric: tabular-nums; font-size: .85rem; }}
th, td {{ text-align: right; padding: .15rem .6rem; border-bottom:
  1px solid {_GRID}; }}
th {{ color: {_TEXT_2}; font-weight: 600; }}
details summary {{ cursor: pointer; color: {_TEXT_2}; margin-top: 1.4rem; }}
footer {{ margin-top: 2rem; font-size: .8rem; color: {_TEXT_2}; }}
"""


#: A run directory containing this file is a fleet run; ``report``
#: renders the fleet layout (per-rack aggregation) instead of the
#: single-node decision timelines.
FLEET_SUMMARY_NAME = "fleet_summary.json"


def _fleet_budget_panel(plan_stats: list[dict[str, Any]]) -> str:
    """Budget vs. granted caps vs. modeled demand, per coordination tick."""
    if not plan_stats:
        return ""
    t_range = (plan_stats[0]["t"], plan_stats[-1]["t"])
    return _timeline(
        "Datacenter budget and granted caps",
        [("budget", _FLIP,
          [(s["t"], s["budget_w"] / 1e3) for s in plan_stats]),
         ("granted caps", _SERIES_1,
          [(s["t"], s["total_cap_w"] / 1e3) for s in plan_stats]),
         ("modeled demand", _SERIES_2,
          [(s["t"], s["total_demand_w"] / 1e3) for s in plan_stats])],
        t_range=t_range, y_unit="kW", step=True,
    )


def _fleet_rack_table(per_rack: list[dict[str, Any]]) -> str:
    """Per-rack aggregation: the fleet report's data-table fold."""
    rows = "".join(
        f"<tr><td>rack {r['rack']}</td><td>{r['nodes']}</td>"
        f"<td>{r['energy_j'] / 1e6:.3f}</td>"
        f"<td>{_fmt(r['busy_end_s'])}</td>"
        f"<td>{r['violation_ticks']}</td>"
        f"<td>{r['faults_injected']}</td></tr>"
        for r in per_rack
    )
    table = (
        "<table><thead><tr><th>rack</th><th>nodes</th>"
        "<th>energy (MJ)</th><th>last drain (s)</th>"
        "<th>cap violations</th><th>faults</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>"
    )
    return (f"<details open><summary>Per-rack aggregation "
            f"({len(per_rack)} racks)</summary>{table}</details>")


def _render_fleet_report(directory: str, summary: dict[str, Any]) -> str:
    """Fleet layout: stats grid + budget panel + per-rack table."""
    title = (f"fleet · {summary.get('scenario', '?')} · "
             f"{summary.get('allocator', '?')}")
    stats = [
        ("allocator", str(summary.get("allocator", "?"))),
        ("scenario", str(summary.get("scenario", "?"))),
        ("nodes", str(summary.get("n_nodes", "?"))),
        ("racks", str(summary.get("n_racks", "?"))),
        ("fleet energy", f"{summary.get('energy_j', 0.0) / 1e6:.3f} MJ"),
        ("makespan", f"{summary.get('makespan_s', 0.0):.1f} s"),
        ("cap violations", str(summary.get("violation_ticks", 0))),
        ("faults injected", str(summary.get("faults_injected", 0))),
    ]
    body = [
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="subtitle">GreenGPU fleet run report — '
        f"{html.escape(directory)}</p>",
        _meta_grid(stats),
        _fleet_budget_panel(summary.get("plan_stats", [])),
        _trace_panel(directory),
        _fleet_rack_table(summary.get("per_rack", [])),
        "<footer>Self-contained report: inline SVG, no scripts, no "
        "network fetches. Rack energies include the idle tail to the "
        "fleet makespan; regenerate with <code>greengpu report</code>."
        "</footer>",
    ]
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        f"<title>{html.escape(title)} — GreenGPU run report</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(part for part in body if part)
        + "\n</body>\n</html>\n"
    )


def render_html_report(directory: str | os.PathLike[str]) -> str:
    """Render one run directory into a standalone HTML document."""
    import json

    directory = os.fspath(directory)
    fleet_path = os.path.join(directory, FLEET_SUMMARY_NAME)
    if os.path.exists(fleet_path):
        with open(fleet_path, encoding="utf-8") as fh:
            return _render_fleet_report(directory, json.load(fh))
    snapshot = read_snapshot(os.path.join(directory, SNAPSHOT_NAME))
    records = read_audit(audit_path(directory), missing_ok=True)
    ticks = scaling_records(records)
    decides = [r for r in ticks if r["kind"] == "scaling"]
    divisions = [r for r in records if r.get("kind") == "division"]
    if not decides and not divisions:
        raise SerializationError(
            f"{directory}: audit trail has no decisions to plot (was the "
            "run started with --telemetry under a live policy?)"
        )

    labels: dict[str, str] = {}
    for gauge in snapshot.get("gauges", ()):
        if gauge["name"] == "run_total_energy_j":
            labels = dict(gauge.get("labels", {}))
            break

    def gauge_sum(name: str) -> float | None:
        values = [float(g["value"]) for g in snapshot.get("gauges", ())
                  if g["name"] == name]
        return sum(values) if values else None

    times = ([r["t_sim"] for r in ticks]
             + [r["t_sim"] for r in divisions]) or [0.0]
    t_range = (min(times), max(times))
    flips = [r["t_sim"] for r in decides if r.get("flipped")]

    freq = _timeline(
        "GPU frequency (WMA tier 2)",
        [("core", _SERIES_1,
          [(r["t_sim"], r["f_core"] / 1e6) for r in decides]),
         ("memory", _SERIES_2,
          [(r["t_sim"], r["f_mem"] / 1e6) for r in decides])],
        t_range=t_range, y_unit="MHz", step=True, markers=flips,
    ) if decides else ""
    util = _timeline(
        "GPU utilization",
        [("u_core", _SERIES_1,
          [(r["t_sim"], 100 * r["u_core"]) for r in decides]),
         ("u_mem", _SERIES_2,
          [(r["t_sim"], 100 * r["u_mem"]) for r in decides])],
        t_range=t_range, y_unit="%", y_range=(0.0, 105.0),
    ) if decides else ""
    power_pts = [(r["t_sim"], r["power_w"]) for r in decides
                 if "power_w" in r]
    power = _timeline(
        "System wall power",
        [("power", _SERIES_1, power_pts)],
        t_range=t_range, y_unit="W",
    ) if power_pts else ""
    division = _timeline(
        "Division ratio (tier 1, CPU share)",
        [("r", _SERIES_1,
          [(r["t_sim"], r["r_next"]) for r in divisions])],
        t_range=t_range, y_unit="r", step=True, y_range=(0.0, 1.0),
    ) if divisions else ""

    energy = gauge_sum("run_total_energy_j")
    time_s = gauge_sum("run_time_s")
    power_avg = gauge_sum("run_avg_power_w")
    final_r = gauge_sum("run_final_ratio")
    stats = []
    if energy is not None:
        stats.append(("energy", f"{energy / 1e3:.2f} kJ"))
    if time_s is not None:
        stats.append(("time", f"{time_s:.1f} s"))
    if power_avg is not None:
        stats.append(("avg power", f"{power_avg:.1f} W"))
    if final_r is not None:
        stats.append(("final r", f"{final_r:.2f}"))
    stats.append(("scaling ticks", str(len(ticks))))
    stats.append(("decision flips",
                  str(sum(1 for r in decides if r.get("flipped")))))
    faults = sum(
        float(c["value"]) for c in snapshot.get("counters", ())
        if c["name"] in ("ctrl_monitor_faults_total",
                         "ctrl_actuation_faults_total")
    )
    if faults:
        stats.append(("faults", f"{faults:g}"))

    title = " · ".join(
        filter(None, (labels.get("workload"), labels.get("policy")))
    ) or os.path.basename(directory.rstrip(os.sep)) or directory
    subtitle = f"GreenGPU run report — {html.escape(directory)}"

    body = [
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="subtitle">{subtitle}</p>',
        _meta_grid(stats),
        freq, util, power, division,
        _heatmap(decides),
        _trace_panel(directory),
        _audit_table(decides, divisions),
        "<footer>Self-contained report: inline SVG, no scripts, no "
        "network fetches. Dashed rules mark decision flips; regenerate "
        "with <code>greengpu report</code>.</footer>",
    ]
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        f"<title>{html.escape(title)} — GreenGPU run report</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(part for part in body if part)
        + "\n</body>\n</html>\n"
    )


def write_html_report(directory: str | os.PathLike[str],
                      out_path: str | os.PathLike[str] | None = None) -> str:
    """Render and atomically write the report; returns the output path."""
    directory = os.fspath(directory)
    if out_path is None:
        out_path = os.path.join(directory, REPORT_NAME)
    text = render_html_report(directory)
    atomic_write_text(out_path, text)
    return os.fspath(out_path)
