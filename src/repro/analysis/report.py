"""Human-readable run reports.

Renders a :class:`~repro.runtime.metrics.RunResult` (or a comparison of
several) into the plain-text report the CLI prints: totals, per-iteration
rows, tier activity, and savings versus a baseline.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.errors import ConfigError
from repro.runtime.metrics import RunResult


def run_report(result: RunResult, max_rows: int = 20) -> str:
    """Single-run report: totals plus the per-iteration table."""
    if max_rows < 1:
        raise ConfigError("max_rows must be positive")
    lines = [
        f"workload : {result.workload}",
        f"policy   : {result.policy}",
        f"time     : {result.total_s:.1f} s over {result.n_iterations} iterations",
        f"energy   : {result.total_energy_j / 1e3:.2f} kJ "
        f"(GPU card {result.gpu_energy_j / 1e3:.2f} kJ, "
        f"CPU box {result.cpu_energy_j / 1e3:.2f} kJ)",
        f"avg power: {result.average_power_w:.1f} W wall",
    ]
    if result.cpu_spin_s > 0.0:
        lines.append(
            f"cpu spin : {result.cpu_spin_s:.1f} s busy-waiting "
            f"({result.cpu_spin_energy_j / 1e3:.2f} kJ at the package)"
        )
    health = result.health
    if health.total_events > 0:
        lines.append(
            f"faults   : {health.monitor_faults} monitor, "
            f"{health.actuation_faults} actuation; "
            f"{health.retries} retries, {health.fallbacks} fallbacks, "
            f"{health.skipped_ticks} skipped ticks"
        )
        if health.degraded_entries > 0:
            state = "DEGRADED" if health.degraded else "recovered"
            lines.append(
                f"watchdog : {health.degraded_entries} safe-state entries, "
                f"{health.recoveries} recoveries, "
                f"{health.frozen_divisions} frozen divisions ({state})"
            )
    rows = [
        (m.index + 1, f"{m.r:.2f}", m.tc, m.tg, m.energy_j / 1e3)
        for m in result.iterations[:max_rows]
    ]
    lines.append("")
    lines.append(
        format_table(
            ["iter", "r", "tc (s)", "tg (s)", "energy (kJ)"],
            rows,
            float_fmt="{:.2f}",
        )
    )
    if result.n_iterations > max_rows:
        lines.append(f"... {result.n_iterations - max_rows} more iterations")
    return "\n".join(lines)


def comparison_report(results: list[RunResult], baseline_index: int = 0) -> str:
    """Multi-policy comparison with savings against one baseline."""
    if not results:
        raise ConfigError("need at least one run to report")
    if not 0 <= baseline_index < len(results):
        raise ConfigError("baseline index out of range")
    baseline = results[baseline_index]
    rows = []
    for result in results:
        saving = result.energy_saving_vs(baseline)
        slowdown = result.slowdown_vs(baseline)
        rows.append(
            (
                result.policy,
                result.total_s,
                result.total_energy_j / 1e3,
                f"{100 * saving:+.2f}%",
                f"{100 * slowdown:+.2f}%",
                f"{result.final_ratio:.2f}",
            )
        )
    return format_table(
        ["policy", "time (s)", "energy (kJ)", "energy vs base", "time vs base", "final r"],
        rows,
        title=f"comparison on {baseline.workload!r} (baseline: {baseline.policy})",
        float_fmt="{:.1f}",
    )
