"""JSON serialization for run results and traces.

Experiments are deterministic but not instantaneous; persisting results
lets analysis and plotting iterate without re-simulating.  The format is
plain JSON — stable keys, no pickling — so results can be diffed, stored
in git, or consumed outside Python.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import ConfigError, SerializationError
from repro.ioutil import atomic_write_text
from repro.runtime.metrics import ControlHealth, IterationMetrics, RunResult
from repro.sim.trace import Trace

SCHEMA_VERSION = 1


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    return {
        "name": trace.name,
        "times": trace.times.tolist(),
        "values": trace.values.tolist(),
    }


def trace_from_dict(data: dict[str, Any]) -> Trace:
    return Trace(
        name=data["name"],
        times=np.asarray(data["times"], dtype=float),
        values=np.asarray(data["values"], dtype=float),
    )


def result_to_dict(result: RunResult) -> dict[str, Any]:
    """RunResult -> JSON-safe dict (schema-versioned)."""
    return {
        "schema": SCHEMA_VERSION,
        "workload": result.workload,
        "policy": result.policy,
        "total_s": result.total_s,
        "total_energy_j": result.total_energy_j,
        "gpu_energy_j": result.gpu_energy_j,
        "cpu_energy_j": result.cpu_energy_j,
        "cpu_spin_s": result.cpu_spin_s,
        "cpu_spin_energy_j": result.cpu_spin_energy_j,
        "cpu_energy_emulated_idle_spin_j": result.cpu_energy_emulated_idle_spin_j,
        "final_ratio": result.final_ratio,
        "iterations": [
            {
                "index": m.index,
                "r": m.r,
                "tc": m.tc,
                "tg": m.tg,
                "wall_s": m.wall_s,
                "energy_j": m.energy_j,
                "gpu_energy_j": m.gpu_energy_j,
                "cpu_energy_j": m.cpu_energy_j,
            }
            for m in result.iterations
        ],
        "traces": {name: trace_to_dict(t) for name, t in result.traces.items()},
        "health": result.health.as_dict(),
    }


def result_from_dict(data: dict[str, Any]) -> RunResult:
    """JSON dict -> RunResult (validates the schema version)."""
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported result schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    iterations = [
        IterationMetrics(
            index=m["index"], r=m["r"], tc=m["tc"], tg=m["tg"], wall_s=m["wall_s"],
            energy_j=m["energy_j"], gpu_energy_j=m["gpu_energy_j"],
            cpu_energy_j=m["cpu_energy_j"],
        )
        for m in data["iterations"]
    ]
    return RunResult(
        workload=data["workload"],
        policy=data["policy"],
        iterations=iterations,
        total_s=data["total_s"],
        total_energy_j=data["total_energy_j"],
        gpu_energy_j=data["gpu_energy_j"],
        cpu_energy_j=data["cpu_energy_j"],
        cpu_spin_s=data["cpu_spin_s"],
        cpu_spin_energy_j=data["cpu_spin_energy_j"],
        cpu_energy_emulated_idle_spin_j=data["cpu_energy_emulated_idle_spin_j"],
        final_ratio=data["final_ratio"],
        traces={name: trace_from_dict(t) for name, t in data["traces"].items()},
        # Absent in pre-hardening files: default to a clean health record.
        health=ControlHealth.from_dict(data.get("health", {})),
    )


def dumps(result: RunResult, indent: int | None = 2) -> str:
    """RunResult -> JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)


def loads(text: str, source: str = "<string>") -> RunResult:
    """JSON string -> RunResult.

    Raises :class:`SerializationError` (naming ``source``) on corrupt or
    truncated JSON — e.g. a file whose writer was killed mid-write.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"{source}: corrupt or truncated result JSON ({exc})"
        ) from exc
    return result_from_dict(data)


def save(result: RunResult, path: str) -> None:
    """Write a result to a JSON file atomically (never a half-file)."""
    atomic_write_text(path, dumps(result))


def load(path: str) -> RunResult:
    """Read a result from a JSON file.

    Raises :class:`SerializationError` on a missing or unreadable file —
    the CLI turns that into a one-line error and exit code 2 instead of
    a traceback.
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise SerializationError(
            f"{path}: cannot read result file ({exc})"
        ) from exc
    return loads(text, source=path)
