"""Plain-text result tables for the experiment CLIs.

Every experiment module prints its paper artifact as an aligned ASCII
table; this keeps the formatting in one place.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned table with a header rule.

    Floats format via ``float_fmt``; everything else via ``str``.
    """
    if not headers:
        raise ConfigError("need at least one column")
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        rendered.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [max(len(r[c]) for r in rendered) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(rendered[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
