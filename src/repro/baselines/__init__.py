"""Baselines the paper compares GreenGPU against.

Live-policy baselines (best-performance, Rodinia default, division-only,
frequency-scaling-only) live in :mod:`repro.core.policies`; this package
adds the *search* baselines:

- :mod:`repro.baselines.static_division` — the static division sweep of
  Fig. 2 and §VII-B ("we have also conducted a series of experiments to
  test static workload division from 0/100 to 100/0 with a step size
  of 5");
- :mod:`repro.baselines.oracle` — exhaustive offline search over static
  frequency pairs (and optionally divisions), the global-optimal
  reference GreenGPU's light-weight heuristics are traded against (§V-B).
"""

from repro.baselines.static_division import DivisionSweepPoint, sweep_divisions
from repro.baselines.oracle import OracleResult, oracle_frequency_search, oracle_search

__all__ = [
    "sweep_divisions",
    "DivisionSweepPoint",
    "oracle_frequency_search",
    "oracle_search",
    "OracleResult",
]
