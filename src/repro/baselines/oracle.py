"""Exhaustive offline search baselines.

GreenGPU deliberately uses light-weight heuristics "as a trade-off
between solution performance and runtime overheads" (§V-B) and notes it
"cannot completely guarantee to reach global optimal since we do not
exhaust the searching space".  These oracles *do* exhaust it — offline,
with perfect knowledge — providing the upper bound the heuristics are
measured against in the ablation benches:

- :func:`oracle_frequency_search` — best static (core, mem) frequency
  pair for a workload by total energy, over all N x M pairs (36 on the
  paper's testbed; cf. §IV's worst-case 36-period convergence argument);
- :func:`oracle_search` — jointly best (division, core, mem) triple.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policies import StaticPolicy
from repro.errors import ConfigError
from repro.runtime.executor import ExecutorOptions, run_workload
from repro.runtime.metrics import RunResult
from repro.sim.calibration import default_testbed_config
from repro.workloads.base import Workload


@dataclass(frozen=True)
class OracleResult:
    """Best static configuration found by exhaustive search."""

    core_level: int
    mem_level: int
    r: float
    result: RunResult
    evaluated: int

    @property
    def energy_j(self) -> float:
        return self.result.total_energy_j


def _evaluate(
    workload: Workload,
    core_level: int,
    mem_level: int,
    r: float,
    n_iterations: int,
    options: ExecutorOptions | None,
) -> RunResult:
    policy = StaticPolicy(
        core_level, mem_level, ratio=r, name=f"oracle(c{core_level},m{mem_level},r{r:.2f})"
    )
    return run_workload(workload, policy, n_iterations=n_iterations, options=options)


def oracle_frequency_search(
    workload: Workload,
    r: float = 0.0,
    n_iterations: int = 2,
    max_slowdown: float | None = None,
    options: ExecutorOptions | None = None,
) -> OracleResult:
    """Exhaustive static frequency-pair search at a fixed division.

    ``max_slowdown`` (e.g. 0.05) restricts the search to configurations
    within that fractional slowdown of the best-performance point,
    matching the paper's "negligible performance degradation" objective.
    """
    config = default_testbed_config()
    n_core = len(config.gpu.core_ladder)
    n_mem = len(config.gpu.mem_ladder)
    baseline = _evaluate(workload, 0, 0, r, n_iterations, options)
    best: OracleResult | None = None
    evaluated = 0
    for i in range(n_core):
        for j in range(n_mem):
            result = (
                baseline
                if (i, j) == (0, 0)
                else _evaluate(workload, i, j, r, n_iterations, options)
            )
            evaluated += 1
            if max_slowdown is not None and result.slowdown_vs(baseline) > max_slowdown:
                continue
            if best is None or result.total_energy_j < best.energy_j:
                best = OracleResult(i, j, r, result, evaluated)
    assert best is not None  # (0, 0) always qualifies: zero slowdown vs itself
    return OracleResult(best.core_level, best.mem_level, r, best.result, evaluated)


def oracle_search(
    workload: Workload,
    ratios: np.ndarray | list[float] | None = None,
    n_iterations: int = 2,
    options: ExecutorOptions | None = None,
) -> OracleResult:
    """Jointly optimal (division, core, mem) by exhaustive enumeration.

    This is deliberately expensive — quadratic in ladder sizes times the
    ratio grid — and exists as the global reference, not a usable policy.
    """
    if ratios is None:
        ratios = np.arange(0.0, 0.901, 0.05)
    if len(list(ratios)) == 0:
        raise ConfigError("need at least one ratio")
    config = default_testbed_config()
    n_core = len(config.gpu.core_ladder)
    n_mem = len(config.gpu.mem_ladder)
    best: OracleResult | None = None
    evaluated = 0
    for r in ratios:
        for i in range(n_core):
            for j in range(n_mem):
                result = _evaluate(workload, i, j, float(r), n_iterations, options)
                evaluated += 1
                if best is None or result.total_energy_j < best.energy_j:
                    best = OracleResult(i, j, float(r), result, evaluated)
    assert best is not None
    return OracleResult(best.core_level, best.mem_level, best.r, best.result, evaluated)
