"""Static workload-division sweep (paper Fig. 2 and §VII-B).

Runs a workload at a series of pinned CPU shares with all frequencies at
peak, measuring whole-system wall energy per point.  The minimum of this
sweep is the "optimal static division" the paper benchmarks its dynamic
divider against (kmeans: 15/85; hotspot: 50/50).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policies import StaticPolicy
from repro.errors import ConfigError
from repro.runtime.executor import ExecutorOptions, run_workload
from repro.runtime.metrics import RunResult
from repro.workloads.base import Workload


@dataclass(frozen=True)
class DivisionSweepPoint:
    """One static division measurement."""

    r: float
    result: RunResult

    @property
    def energy_j(self) -> float:
        return self.result.total_energy_j

    @property
    def time_s(self) -> float:
        return self.result.total_s


def sweep_divisions(
    workload: Workload,
    ratios: np.ndarray | list[float] | None = None,
    n_iterations: int = 3,
    options: ExecutorOptions | None = None,
    telemetry=None,
    audit=None,
) -> list[DivisionSweepPoint]:
    """Measure energy across pinned divisions (default: 0 to 0.9 step 0.05).

    Each point runs on a fresh testbed so meters and device state do not
    leak between configurations.  A shared ``telemetry`` backend keeps
    the points distinguishable: every point labels its metrics with its
    own ``static-division-<r>`` policy name.  ``audit`` optionally
    attaches a shared decision trail (static points only record tier-1
    boundaries — there is no live scaler).
    """
    if ratios is None:
        ratios = np.arange(0.0, 0.901, 0.05)
    clean = []
    for r in ratios:
        r = float(r)
        if not 0.0 <= r <= 1.0:
            raise ConfigError(f"ratio {r} out of [0, 1]")
        clean.append(r)
    if telemetry is None and audit is None:
        # Uninstrumented sweeps pack all points into the lockstep batch
        # engine (lane i is bit-identical to the scalar run for ratio i);
        # instrumented sweeps below need live scalar runs for their
        # side-effect artifacts.
        from repro.runtime.batch_executor import BatchExecutor, RunRequest

        requests = [
            RunRequest(
                workload=workload,
                policy=StaticPolicy(0, 0, ratio=r, name=f"static-division-{r:.2f}"),
                n_iterations=n_iterations,
                options=options,
            )
            for r in clean
        ]
        results = BatchExecutor().run_many(requests)
        return [
            DivisionSweepPoint(r=r, result=result)
            for r, result in zip(clean, results)
        ]
    points = []
    for r in clean:
        result = run_workload(
            workload,
            StaticPolicy(0, 0, ratio=r, name=f"static-division-{r:.2f}"),
            n_iterations=n_iterations,
            options=options,
            telemetry=telemetry,
            audit=audit,
        )
        points.append(DivisionSweepPoint(r=r, result=result))
    return points


def best_point(points: list[DivisionSweepPoint]) -> DivisionSweepPoint:
    """The sweep's energy minimum."""
    if not points:
        raise ConfigError("empty sweep")
    return min(points, key=lambda p: p.energy_j)
