"""Content-addressed result cache for deterministic simulation runs.

Every measured experiment in this repository is a pure function of its
inputs: the simulator is seeded and event-ordered deterministically, so
(workload, policy, iteration count, executor options, engine revision)
fully determine the :class:`~repro.runtime.metrics.RunResult`.  The
paper's figures are sweeps of many such runs, and `sweep`/`compare`/CI
re-simulate identical points constantly — this package makes those
repeats near-free.

- :mod:`repro.cache.keys` canonicalizes the run inputs and hashes them
  into a SHA-256 *cache key*.  Anything it cannot prove serializable
  (a hand-built workload, a live testbed) yields ``None`` = uncacheable.
- :mod:`repro.cache.store` maps keys to JSON payloads on disk with
  atomic writes, corrupt-entry quarantine, and `stats`/`clear` admin
  operations (surfaced as ``repro cache {stats,clear}``).

Invalidation is by construction: the key embeds
:data:`repro.sim.ENGINE_SCHEMA_VERSION` and the result schema version,
so any behavioral engine change (which must bump the version — see
``docs/performance.md``) orphans old entries rather than serving them.
"""

from repro.cache.keys import canonicalize, fingerprint, job_key, run_key
from repro.cache.store import CacheStats, ClearStats, ResultCache, default_cache_dir

__all__ = [
    "CacheStats",
    "ClearStats",
    "ResultCache",
    "canonicalize",
    "default_cache_dir",
    "fingerprint",
    "job_key",
    "run_key",
]
