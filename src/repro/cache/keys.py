"""Cache-key derivation: canonicalize run inputs, hash them.

The key must change whenever any input that can influence the simulated
result changes, and must *not* change across Python processes, dict
orderings, or dataclass construction orders.  The recipe:

1. :func:`canonicalize` lowers the inputs to a JSON-safe tree —
   dataclasses become ``{"__kind__": <class>, <field>: ...}`` maps (the
   class name is included so two policy types with identical fields hash
   differently), enums become their values, tuples become lists, dict
   keys are stringified and sorted.  Any value outside that closed set
   raises :class:`~repro.errors.ConfigError`, which :func:`run_key`
   converts to ``None`` — *uncacheable*, never *wrongly cached*.
2. :func:`fingerprint` dumps the tree as compact sorted-key JSON and
   SHA-256 hashes it.
3. :func:`run_key` assembles the full input record: workload
   fingerprint, policy (which carries the GreenGPU config and the seeded
   fault plan), iteration count, executor options, warmup, plus
   ``ENGINE_SCHEMA_VERSION`` and the result schema version.

Keys only ever describe runs on the *default* calibrated testbed
(callers must not consult the cache when handed a live ``system``); the
calibration constants are code, and code changes that alter behavior are
required to bump ``ENGINE_SCHEMA_VERSION`` (see ``docs/performance.md``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

from repro.errors import ConfigError
from repro.sim import ENGINE_SCHEMA_VERSION
from repro.analysis.serialize import SCHEMA_VERSION as RESULT_SCHEMA_VERSION


def canonicalize(obj: Any) -> Any:
    """Lower ``obj`` to a deterministic JSON-safe tree (see module docstring).

    Raises :class:`ConfigError` on any value outside the closed set of
    supported types — the caller decides whether that means "uncacheable"
    or "bug".
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            # json.dumps would emit non-standard NaN/Infinity tokens whose
            # textual form is not guaranteed stable; refuse instead.
            raise ConfigError(f"cannot canonicalize non-finite float {obj!r}")
        return obj
    if isinstance(obj, Enum):
        return {"__enum__": type(obj).__name__, "value": canonicalize(obj.value)}
    cache_state = getattr(obj, "cache_state", None)
    if callable(cache_state):
        # Opt-in protocol for non-dataclass domain objects (frequency
        # ladders, roofline models): they expose their defining state.
        return {"__kind__": type(obj).__name__, "state": canonicalize(cache_state())}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {"__kind__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonicalize(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        out = {}
        for key in sorted(obj, key=str):
            if not isinstance(key, str):
                raise ConfigError(f"cannot canonicalize non-string dict key {key!r}")
            out[key] = canonicalize(obj[key])
        return out
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    raise ConfigError(f"cannot canonicalize {type(obj).__name__} value {obj!r}")


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical compact-JSON form of ``obj``."""
    canonical = canonicalize(obj)
    text = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def run_key(
    workload,
    policy,
    n_iterations: int | None,
    options=None,
    warmup_s: float = 0.0,
) -> str | None:
    """Cache key for one ``run_workload`` invocation, or None if uncacheable.

    ``workload`` must expose ``cache_fingerprint()`` returning a
    canonicalizable description of *all* demand-shaping state (see
    :meth:`repro.workloads.base.Workload.cache_fingerprint`); a ``None``
    fingerprint opts the workload out of caching.
    """
    fingerprint_fn = getattr(workload, "cache_fingerprint", None)
    if fingerprint_fn is None:
        return None
    workload_state = fingerprint_fn()
    if workload_state is None:
        return None
    if n_iterations is None:
        n_iterations = workload.default_iterations
    record = {
        "engine_schema": ENGINE_SCHEMA_VERSION,
        "result_schema": RESULT_SCHEMA_VERSION,
        "workload": workload_state,
        "policy": policy,
        "n_iterations": n_iterations,
        "options": options,
        "warmup_s": warmup_s,
    }
    try:
        return fingerprint(record)
    except ConfigError:
        return None


def job_key(target: str, kwargs: dict[str, Any]) -> str | None:
    """Cache key for one harness job, or None if uncacheable.

    Harness jobs are named by dotted target + JSON kwargs precisely so a
    fresh interpreter can reproduce the identical call; that same pair
    (plus the schema versions) is therefore a complete content address
    for the job's payload.  Jobs whose kwargs fail canonicalization —
    or that take side-effect arguments like an output directory — must
    not be keyed; callers pass ``None`` through to
    :attr:`repro.harness.job.JobSpec.cache_key` in that case.
    """
    record = {
        "engine_schema": ENGINE_SCHEMA_VERSION,
        "result_schema": RESULT_SCHEMA_VERSION,
        "job_target": target,
        "kwargs": kwargs,
    }
    try:
        return fingerprint(record)
    except ConfigError:
        return None
