"""On-disk content-addressed store: ``<root>/<key[:2]>/<key>.json``.

Entries are whole JSON documents written atomically (tmp file +
``os.replace`` via :mod:`repro.ioutil`), so a crashed writer can never
leave a half-entry that parses.  A corrupt or alien file — truncated by
the filesystem, hand-edited, or written by a future schema — is treated
as a *miss*: it is quarantined (renamed ``*.corrupt``) and the caller
recomputes.  The cache is therefore always safe to delete, and safe to
share between concurrent processes (atomic replace makes put races
last-writer-wins with no torn state).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigError
from repro.ioutil import atomic_write_json

#: Version of the cache *envelope* (not the result payload, which carries
#: its own schema).  Bump when the envelope layout changes; old entries
#: then read as misses.
CACHE_SCHEMA_VERSION = 1

_ENV_VAR = "GREENGPU_CACHE_DIR"


def default_cache_dir() -> str:
    """Resolve the cache root: ``$GREENGPU_CACHE_DIR`` or ``~/.cache/greengpu``.

    The environment override gets the same ``~`` expansion a shell gives
    ``--cache-dir``, so ``GREENGPU_CACHE_DIR='~/scratch'`` set outside a
    shell (systemd units, CI YAML) lands in the user's home rather than
    a literal ``./~`` directory.
    """
    override = os.environ.get(_ENV_VAR)
    if override:
        return os.path.expanduser(override)
    return os.path.join(os.path.expanduser("~"), ".cache", "greengpu")


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache directory (``repro cache stats``)."""

    root: str
    entries: int
    total_bytes: int
    corrupt: int
    #: Entry count per two-hex-digit shard directory (only non-empty
    #: shards appear), for spotting key-distribution skew.
    shards: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-safe form (``repro cache stats --format json``)."""
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "corrupt": self.corrupt,
            "shards": dict(self.shards),
        }


@dataclass(frozen=True)
class ClearStats:
    """What ``repro cache clear`` reclaimed."""

    root: str
    entries: int          # live entries removed
    files: int            # every file removed (entries + corrupt + tmp)
    reclaimed_bytes: int

    def as_dict(self) -> dict:
        """JSON-safe form (``repro cache clear --format json``)."""
        return {
            "root": self.root,
            "entries_removed": self.entries,
            "files_removed": self.files,
            "reclaimed_bytes": self.reclaimed_bytes,
        }


class ResultCache:
    """Content-addressed result store (see module docstring).

    ``get``/``put`` also keep per-instance hit/miss/store tallies so the
    CLI and the harness can report cache effectiveness for one invocation
    without scanning the directory.
    """

    def __init__(self, root: str | os.PathLike[str]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _entry_path(self, key: str) -> Path:
        if len(key) < 3 or any(c not in "0123456789abcdef" for c in key):
            raise ConfigError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Payload for ``key``, or None on miss/corruption (never raises)."""
        path = self._entry_path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("cache_schema") != CACHE_SCHEMA_VERSION
            or payload.get("key") != key
        ):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic; adds the envelope fields)."""
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "created_unix": time.time(),
            **payload,
        }
        atomic_write_json(path, envelope, indent=None)
        self.stores += 1

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a bad entry aside so the next run recomputes cleanly."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass

    # -- administration (repro cache {stats,clear}) --------------------

    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def stats(self) -> CacheStats:
        """Scan the directory and summarize it."""
        entries = self._entry_files()
        total = 0
        shards: dict[str, int] = {}
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                pass
            shard = path.parent.name
            shards[shard] = shards.get(shard, 0) + 1
        corrupt = len(list(self.root.glob("??/*.corrupt"))) if self.root.is_dir() else 0
        return CacheStats(
            root=str(self.root),
            entries=len(entries),
            total_bytes=total,
            corrupt=corrupt,
            shards=shards,
        )

    def clear(self) -> ClearStats:
        """Delete every entry (and quarantined/tmp file); report what was
        reclaimed.  A missing root is an empty cache, not an error."""
        entries = files = reclaimed = 0
        if not self.root.is_dir():
            return ClearStats(root=str(self.root), entries=0, files=0,
                              reclaimed_bytes=0)
        for pattern in ("??/*.json", "??/*.corrupt", "??/*.tmp"):
            for path in self.root.glob(pattern):
                try:
                    size = path.stat().st_size
                    path.unlink()
                except OSError:
                    continue
                files += 1
                reclaimed += size
                if pattern == "??/*.json":
                    entries += 1
        for shard in self.root.glob("??"):
            try:
                shard.rmdir()
            except OSError:
                pass
        return ClearStats(root=str(self.root), entries=entries, files=files,
                          reclaimed_bytes=reclaimed)
