"""Command-line interface: the ``greengpu`` tool.

Subcommands:

- ``run``          — run one workload under one policy, print the report;
- ``compare``      — run every policy on a workload, print the comparison;
- ``sweep``        — static division sweep (the Fig. 2 experiment on any
  workload);
- ``fleet``        — datacenter-scale simulation: N catalog nodes under
  a global power budget, coordinated per tick by a cap allocator
  (compare allocators with a comma-separated ``--allocator`` list);
- ``characterize`` — Table-II-style utilization characterization;
- ``oracle``       — exhaustive static frequency/division search;
- ``reproduce``    — regenerate one or all paper artifacts;
- ``replay``       — build a workload from a ``time,u_core,u_mem`` CSV
  trace (e.g. a polled nvidia-smi log) and run a policy on it;
- ``metrics``      — render the telemetry exported by a previous
  ``--telemetry DIR`` run (span stats, counters, gauges, WMA trace;
  ``--format {table,csv,json}``);
- ``trace``        — render a run's stitched distributed trace as a
  text waterfall (span tree, wall-clock bars, per-worker provenance);
  the same spans export as ``trace.json`` for Perfetto;
- ``slo``          — evaluate service-level objectives (compliance +
  multi-window burn rates) against a run directory; ``--fail-on
  violations=0,burn=2`` turns it into a CI gate;
- ``explain``      — narrate a run's decision audit trail tick by tick
  (``--tick N`` shows one decision's full evidence);
- ``diff``         — compare two run directories (energy/time deltas,
  first decision divergence, health drift); ``--fail-on energy=2%``
  turns it into a CI regression gate;
- ``report``       — render a run directory into a self-contained HTML
  report (inline-SVG timelines + WMA weight heatmap, no external deps);
- ``cache``        — inspect (``stats``) or empty (``clear``) the
  content-addressed result cache that ``run``/``compare``/``sweep``
  consult (disable per-invocation with ``--no-cache``, relocate with
  ``--cache-dir``/``$GREENGPU_CACHE_DIR``).

``run``, ``compare``, ``sweep`` and ``reproduce`` accept ``--telemetry
DIR`` to record metrics, spans and events into ``DIR`` (see
``docs/observability.md``); ``repro metrics DIR`` renders them.  Runs
under a live policy also write a decision ``audit.jsonl`` there, which
``explain``/``diff``/``report`` consume.

``run``, ``compare`` and ``replay`` accept ``--faults
{light,moderate,heavy}`` (plus ``--fault-seed``) to inject seeded
monitor/actuator/device faults; the run summary then reports the
controller's fault/retry/fallback counters.

All simulation is deterministic; every command prints plain text.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.report import comparison_report, run_report
from repro.analysis.tables import format_table
from repro.core.policies import (
    BestPerformancePolicy,
    DivisionOnlyPolicy,
    FrequencyScalingOnlyPolicy,
    GreenGpuPolicy,
    Policy,
    RodiniaDefaultPolicy,
)
from repro.errors import ConfigError, ReproError
from repro.experiments.common import scaled_config, scaled_options, scaled_workload
from repro.faults.injector import FAULT_PROFILES, fault_profile
from repro.runtime.executor import run_workload
from repro.workloads.characteristics import workload_names

POLICY_FACTORIES = {
    "greengpu": lambda cfg: GreenGpuPolicy(config=cfg),
    "division-only": lambda cfg: DivisionOnlyPolicy(config=cfg),
    "scaling-only": lambda cfg: FrequencyScalingOnlyPolicy(config=cfg),
    "best-performance": lambda cfg: BestPerformancePolicy(),
    "rodinia-default": lambda cfg: RodiniaDefaultPolicy(),
}


def _make_policy(
    name: str, time_scale: float, args: argparse.Namespace | None = None
) -> Policy:
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown policy {name!r}; choose from {sorted(POLICY_FACTORIES)}"
        ) from None
    policy = factory(scaled_config(time_scale))
    profile = getattr(args, "faults", "none") if args is not None else "none"
    if profile != "none":
        policy = policy.with_faults(
            fault_profile(profile, seed=getattr(args, "fault_seed", 0))
        )
    return policy


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="kmeans",
                        help=f"one of {workload_names()} (or a paper alias)")
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--time-scale", type=float, default=0.1,
                        help="shrink simulated durations by this factor")


def _add_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", default="none",
                        choices=["none", *sorted(FAULT_PROFILES)],
                        help="inject seeded monitor/actuator/device faults")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault-injection draw stream")


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry", default=None, metavar="DIR",
                        help="record metrics/spans/events into DIR "
                             "(render with 'metrics DIR')")


def _add_cache(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache root (default: "
                             "$GREENGPU_CACHE_DIR or ~/.cache/greengpu)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither serve nor store cached results")


def _make_cache(args: argparse.Namespace):
    """The command's ResultCache, or None with ``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    from repro.cache import ResultCache, default_cache_dir

    return ResultCache(args.cache_dir or default_cache_dir())


def cmd_run(args: argparse.Namespace) -> int:
    workload = scaled_workload(args.workload, args.time_scale)
    policy = _make_policy(args.policy, args.time_scale, args)
    telemetry = None
    audit = None
    if args.telemetry:
        from repro.telemetry import AuditTrail, Telemetry

        telemetry = Telemetry()
        audit = AuditTrail()
    result = run_workload(
        workload, policy, n_iterations=args.iterations,
        options=scaled_options(args.time_scale),
        telemetry=telemetry, audit=audit, cache=_make_cache(args),
    )
    print(run_report(result))
    if telemetry is not None:
        from repro.telemetry import export_telemetry

        export_telemetry(telemetry, args.telemetry)
        audit.write(args.telemetry)
        print(f"\ntelemetry written to {args.telemetry} "
              f"(render with: greengpu metrics {args.telemetry}; "
              f"explain {args.telemetry}; report {args.telemetry})")
    if args.save:
        from repro.analysis import serialize

        serialize.save(result, args.save)
        print(f"\nresult written to {args.save}")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    from repro.analysis import serialize

    result = serialize.load(args.result)
    print(run_report(result))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = scaled_workload(args.workload, args.time_scale)
    options = scaled_options(args.time_scale)
    cache = _make_cache(args)
    policy_names = ("rodinia-default", "scaling-only", "division-only", "greengpu")
    if not args.telemetry:
        # Uninstrumented comparisons pack all four policies into one
        # lockstep batch (cache hits and faulted runs fall back per lane).
        from repro.runtime.batch_executor import BatchExecutor, RunRequest

        requests = [
            RunRequest(
                workload=workload,
                policy=_make_policy(name, args.time_scale, args),
                n_iterations=args.iterations,
                options=options,
            )
            for name in policy_names
        ]
        results = BatchExecutor(cache=cache).run_many(requests)
        print(comparison_report(results, baseline_index=0))
        return 0
    results = []
    for name in policy_names:
        from repro.telemetry import AuditTrail, Telemetry
        from repro.telemetry.merge import export_worker, worker_dir

        telemetry = Telemetry()
        audit = AuditTrail()
        results.append(run_workload(
            workload, _make_policy(name, args.time_scale, args),
            n_iterations=args.iterations, options=options,
            telemetry=telemetry, audit=audit, cache=cache,
        ))
        if telemetry is not None:
            export_worker(telemetry, args.telemetry, name)
            audit.write(worker_dir(args.telemetry, name))
    print(comparison_report(results, baseline_index=0))
    if args.telemetry:
        from repro.telemetry import merge_directory

        merge_directory(args.telemetry)
        print(f"\ntelemetry written to {args.telemetry} "
              f"(per-policy trails merged; render with: "
              f"greengpu metrics {args.telemetry})")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Static division sweep, one supervised job per ratio point.

    Every point is journaled in ``--run-dir`` (progress lines go to
    stderr); ``--resume`` re-runs only the points whose artifacts are
    missing, and ``--parallel N`` fans points out across isolated
    worker processes.
    """
    import tempfile

    from repro.harness.suite_jobs import sweep_specs
    from repro.harness.supervisor import run_jobs, stderr_progress

    scaled_workload(args.workload, args.time_scale)  # validate the name early
    ratios = [round(args.step * i, 4) for i in range(int(args.max_ratio / args.step) + 1)]
    specs = sweep_specs(args.workload, ratios, args.iterations, args.time_scale,
                        telemetry_dir=args.telemetry)
    sweep_cache = _make_cache(args)
    # Inline (non-isolated) sweeps hand the supervisor a prefetch hook
    # that packs all still-pending points into one lockstep batch; each
    # point still flows through per-job journaling, artifacts, and cache
    # puts, so the run directory is byte-for-byte a scalar sweep's.
    # Isolated runs (--parallel > 1 / --isolate) keep live subprocess
    # workers — the supervisor ignores the hook there.
    prefetch = None
    if not args.telemetry:
        from repro.harness.suite_jobs import sweep_prefetch

        prefetch = sweep_prefetch(args.workload, args.iterations,
                                  args.time_scale)
    supervisor_telemetry = None
    if args.telemetry:
        from repro.telemetry import Telemetry

        supervisor_telemetry = Telemetry()

    def supervised(run_dir: str) -> int:
        result = run_jobs(
            specs, run_dir,
            parallel=args.parallel,
            resume=args.resume,
            isolate=args.parallel > 1 or args.isolate,
            progress=stderr_progress,
            telemetry=supervisor_telemetry,
            cache=sweep_cache,
            prefetch=prefetch,
        )
        if args.telemetry:
            from repro.telemetry import merge_directory

            merge_directory(args.telemetry, extra=[supervisor_telemetry])
            print(f"telemetry merged into {args.telemetry} "
                  f"(render with: greengpu metrics {args.telemetry})",
                  file=sys.stderr)
        report = result.report
        payloads = result.payloads
        rows = [
            (f"{p['r']:.2f}", p["energy_j"] / 1e3, p["time_s"])
            for p in (payloads[s.name] for s in specs if s.name in payloads)
        ]
        if rows:
            print(format_table(["CPU share", "energy (kJ)", "time (s)"], rows,
                               title=f"static division sweep — {args.workload}"))
        if report.interrupted:
            where = (f" --run-dir {args.run_dir}" if args.run_dir
                     else " (use --run-dir to make runs resumable)")
            print(f"interrupted — finish with --resume{where}", file=sys.stderr)
            return 130
        if payloads:
            optimum = min(payloads.values(), key=lambda p: p["energy_j"])
            print(f"\nenergy minimum at r = {optimum['r']:.2f} "
                  f"({optimum['energy_j'] / 1e3:.2f} kJ)")
        print(f"\n{report.summary_line()}")
        return 0 if report.ok else 1

    if args.run_dir is not None:
        return supervised(args.run_dir)
    if args.resume:
        raise ConfigError("--resume requires --run-dir")
    with tempfile.TemporaryDirectory(prefix="greengpu-sweep-") as tmp:
        return supervised(tmp)


def cmd_fleet(args: argparse.Namespace) -> int:
    """Fleet simulation: N nodes under one budget, per-tick cap allocation.

    ``--allocator`` accepts a comma-separated list; each allocator runs
    the same scenario and the results print as a comparison table.
    ``--telemetry`` (single allocator only) records rack-labelled fleet
    metrics plus run-level energy/time gauges, mergeable and diffable
    like any other run directory, and writes a ``fleet_summary.json``
    that ``greengpu report`` renders with per-rack aggregation.
    """
    import json
    import os
    import tempfile

    from repro.fleet import make_scenario
    from repro.fleet.shard import export_fleet_worker, shard_name
    from repro.fleet.sim import FleetSim

    allocators = [name.strip() for name in args.allocator.split(",")
                  if name.strip()]
    if not allocators:
        raise ConfigError("--allocator must name at least one policy")
    if args.telemetry and len(allocators) > 1:
        raise ConfigError("--telemetry records one run: use a single "
                          "--allocator with it")
    if args.resume and not args.run_dir:
        raise ConfigError("--resume requires --run-dir")
    scenario = make_scenario(
        args.scenario, n_nodes=args.nodes, seed=args.seed,
        nodes_per_rack=args.nodes_per_rack,
        duration_s=args.duration,
        coordination_interval_s=args.interval,
        budget_frac=args.budget_frac,
    )

    def run_all(run_root: str | None) -> int:
        summaries = []
        for name in allocators:
            run_dir = (os.path.join(run_root, name)
                       if run_root is not None else None)
            sim = FleetSim(
                scenario, name,
                shards=args.shards, parallel=args.parallel,
                run_dir=run_dir, resume=args.resume,
                telemetry_dir=args.telemetry if run_dir else None,
                cache=_make_cache(args),
            )
            result = sim.run()
            if result is None:
                report = sim.last_report
                if report is not None and report.interrupted:
                    where = (f" --run-dir {args.run_dir}" if args.run_dir
                             else " (use --run-dir to make runs resumable)")
                    print(f"interrupted — finish with --resume{where}",
                          file=sys.stderr)
                    return 130
                detail = (report.summary_line() if report is not None
                          else "no harness report")
                print(f"fleet run failed: {detail}", file=sys.stderr)
                return 1
            summaries.append(result.summary())
            if args.telemetry:
                from repro.telemetry import Telemetry, merge_directory

                if run_dir is None:
                    # Inline runs export through the same worker path the
                    # spawned shards use — under the same derived trace
                    # context the harness would hand a single spawned
                    # shard — so the merged view (metrics *and* stitched
                    # trace) is identical either way.
                    from repro.telemetry.tracecontext import (
                        default_context,
                        propagation_env,
                    )

                    whole = shard_name(0, scenario.n_nodes)
                    shard_trace = default_context().child("job", whole)
                    with propagation_env(shard_trace):
                        export_fleet_worker(
                            list(result.nodes), args.telemetry, whole, name,
                        )
                summary = Telemetry(base_labels={
                    "scenario": scenario.name, "allocator": name,
                })
                summary.gauge("run_total_energy_j").set(
                    result.energy_j, t=result.makespan_s)
                summary.gauge("run_time_s").set(
                    result.makespan_s, t=result.makespan_s)
                merge_directory(args.telemetry, extra=[summary])
                with open(os.path.join(args.telemetry,
                                       "fleet_summary.json"), "w",
                          encoding="utf-8") as fh:
                    json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
                print(f"telemetry merged into {args.telemetry} "
                      f"(render with: greengpu report {args.telemetry})",
                      file=sys.stderr)

        rows = [
            (s["allocator"], s["energy_j"] / 1e6, s["makespan_s"],
             str(s["violation_ticks"]), str(s["faults_injected"]))
            for s in summaries
        ]
        print(format_table(
            ["allocator", "energy (MJ)", "makespan (s)", "cap violations",
             "faults"],
            rows,
            title=(f"fleet — {scenario.name}, {scenario.n_nodes} nodes / "
                   f"{scenario.n_racks} racks, budget {args.budget_frac:.0%}"
                   " of headroom"),
        ))
        if len(summaries) > 1:
            best = min(summaries, key=lambda s: s["energy_j"])
            print(f"\nlowest fleet energy: {best['allocator']} "
                  f"({best['energy_j'] / 1e6:.3f} MJ)")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(summaries, fh, indent=2, sort_keys=True)
            print(f"summary written to {args.out}", file=sys.stderr)
        return 0

    if args.run_dir is not None:
        return run_all(args.run_dir)
    if args.shards > 1:
        with tempfile.TemporaryDirectory(prefix="greengpu-fleet-") as tmp:
            return run_all(tmp)
    return run_all(None)


def cmd_characterize(args: argparse.Namespace) -> int:
    from repro.experiments import table2

    rows = table2.run(n_iterations=args.iterations, time_scale=args.time_scale)
    table_rows = [
        (r.name, r.u_core, r.u_mem, r.measured_description) for r in rows
    ]
    print(format_table(["workload", "u_core", "u_mem", "class"], table_rows,
                       title="workload characterization (all-GPU, peak clocks)"))
    return 0


def cmd_oracle(args: argparse.Namespace) -> int:
    from repro.baselines.oracle import oracle_frequency_search
    from repro.units import to_mhz

    workload = scaled_workload(args.workload, args.time_scale)
    result = oracle_frequency_search(
        workload, r=args.ratio, n_iterations=args.iterations,
        max_slowdown=args.max_slowdown,
    )
    from repro.sim.calibration import geforce_8800_gtx_spec

    spec = geforce_8800_gtx_spec()
    print(f"oracle optimum for {args.workload!r} at r={args.ratio:.2f}:")
    print(f"  core {to_mhz(spec.core_ladder[result.core_level]):.1f} MHz "
          f"(level {result.core_level})")
    print(f"  mem  {to_mhz(spec.mem_ladder[result.mem_level]):.1f} MHz "
          f"(level {result.mem_level})")
    print(f"  energy {result.energy_j / 1e3:.2f} kJ over "
          f"{result.result.total_s:.1f} s ({result.evaluated} configs searched)")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate paper artifacts as journaled jobs with progress lines."""
    import tempfile

    from repro.harness.job import JobSpec
    from repro.harness.suite_jobs import SUITE_ARTIFACTS
    from repro.harness.supervisor import run_jobs, stderr_progress

    names = args.artifacts or list(SUITE_ARTIFACTS)
    for name in names:
        if name not in SUITE_ARTIFACTS:
            raise ConfigError(
                f"unknown artifact {name!r}; choose from {sorted(SUITE_ARTIFACTS)}"
            )
    specs = [
        JobSpec(name=name, target="repro.harness.suite_jobs:run_artifact_module",
                kwargs={"name": name})
        for name in names
    ]
    telemetry = None
    if args.telemetry:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    # Inline execution: artifact mains print straight to stdout, in
    # order; the journal (in a throwaway dir) backs the progress lines.
    with tempfile.TemporaryDirectory(prefix="greengpu-reproduce-") as tmp:
        result = run_jobs(specs, tmp, isolate=False, progress=stderr_progress,
                          telemetry=telemetry)
    report = result.report
    if telemetry is not None:
        from repro.telemetry import merge_directory

        merge_directory(args.telemetry, extra=[telemetry])
        print(f"telemetry written to {args.telemetry}", file=sys.stderr)
    if not report.ok:
        for name, error in report.errors.items():
            print(f"error: {name}: {error.splitlines()[-1]}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_replay(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.sim.calibration import geforce_8800_gtx_spec, phenom_ii_x2_spec
    from repro.workloads.base import DemandModelWorkload
    from repro.workloads.trace_replay import parse_csv, profile_from_trace

    from repro.errors import SerializationError

    try:
        text = Path(args.trace).read_text()
    except OSError as exc:
        raise SerializationError(
            f"{args.trace}: cannot read trace file ({exc})"
        ) from exc
    gpu, cpu = geforce_8800_gtx_spec(), phenom_ii_x2_spec()
    profile = profile_from_trace(
        parse_csv(text), gpu,
        name=Path(args.trace).stem,
        cpu_gpu_time_ratio=args.cpu_gpu_ratio,
    )
    workload = DemandModelWorkload(profile, gpu, cpu)
    print(f"replaying {args.trace}: {profile.enlargement}, "
          f"{profile.gpu_seconds_per_iteration:.1f} s per iteration")
    policy = _make_policy(args.policy, args.time_scale, args)
    result = run_workload(
        workload, policy, n_iterations=args.iterations,
        options=scaled_options(args.time_scale),
    )
    print(run_report(result))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    if args.format == "table":
        from repro.telemetry import format_metrics_report

        print(format_metrics_report(args.dir), end="")
        return 0

    import json
    import os

    from repro.errors import SerializationError
    from repro.telemetry.exporters import (
        SNAPSHOT_NAME,
        read_snapshot,
        render_csv,
    )
    from repro.telemetry.registry import MetricsRegistry

    snapshot_path = os.path.join(args.dir, SNAPSHOT_NAME)
    if not os.path.exists(snapshot_path):
        raise SerializationError(
            f"{snapshot_path}: no telemetry snapshot found (was the run "
            "started with --telemetry, or the directory merged?)"
        )
    snapshot = read_snapshot(snapshot_path)
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_csv(MetricsRegistry.from_snapshot(snapshot)), end="")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import format_trace_report

    print(format_trace_report(args.dir, limit=args.limit), end="")
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    from repro.telemetry.slo import (
        DEFAULT_SLOS,
        DEFAULT_WINDOWS,
        check_slos,
        evaluate_directory,
        format_slo_report,
        load_slo_file,
        parse_fail_on,
    )

    specs = load_slo_file(args.slo) if args.slo else DEFAULT_SLOS
    windows = tuple(args.window) if args.window else DEFAULT_WINDOWS
    results = evaluate_directory(args.dir, specs=specs, windows=windows)
    print(format_slo_report(results))
    failures = check_slos(results, parse_fail_on(args.fail_on))
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.telemetry import format_explanation

    print(format_explanation(args.dir, tick=args.tick), end="")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.telemetry import diff_runs
    from repro.telemetry.diff import (
        check_thresholds,
        format_delta,
        parse_fail_on,
    )

    thresholds = parse_fail_on(args.fail_on)
    delta = diff_runs(args.dir_a, args.dir_b)
    print(format_delta(delta))
    violations = check_thresholds(delta, thresholds)
    for violation in violations:
        print(f"FAIL {violation}", file=sys.stderr)
    if args.fail_on_divergence and delta.divergent:
        print("FAIL runs diverge (--fail-on-divergence)", file=sys.stderr)
        return 1
    return 1 if violations else 0


def cmd_cache(args: argparse.Namespace) -> int:
    import json as _json

    from repro.cache import ResultCache, default_cache_dir

    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.action == "stats":
        stats = cache.stats()
        if args.format == "json":
            print(_json.dumps(stats.as_dict(), indent=2, sort_keys=True))
            return 0
        print(f"cache root : {stats.root}")
        print(f"entries    : {stats.entries}")
        print(f"total bytes: {stats.total_bytes}")
        print(f"corrupt    : {stats.corrupt}")
        return 0
    cleared = cache.clear()
    if args.format == "json":
        print(_json.dumps(cleared.as_dict(), indent=2, sort_keys=True))
        return 0
    print(f"cache root : {cleared.root}")
    print(f"entries    : {cleared.entries} removed")
    print(f"files      : {cleared.files} removed")
    print(f"reclaimed  : {cleared.reclaimed_bytes} bytes")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.run import serve_until_signalled

    return asyncio.run(serve_until_signalled(args))


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.html_report import write_html_report

    out = write_html_report(args.dir, args.out)
    print(f"report written to {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    import repro

    parser = argparse.ArgumentParser(
        prog="greengpu", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {repro.__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run one workload under one policy")
    _add_common(p)
    _add_faults(p)
    _add_telemetry(p)
    _add_cache(p)
    p.add_argument("--policy", default="greengpu", choices=sorted(POLICY_FACTORIES))
    p.add_argument("--save", default=None, metavar="FILE",
                   help="write the full result (incl. traces) as JSON")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("show", help="re-render a saved JSON result")
    p.add_argument("result", help="file written by 'run --save'")
    p.set_defaults(func=cmd_show)

    p = sub.add_parser("compare", help="all policies on one workload")
    _add_common(p)
    _add_faults(p)
    _add_telemetry(p)
    _add_cache(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep", help="static division sweep (Fig. 2 style)")
    _add_common(p)
    _add_telemetry(p)
    _add_cache(p)
    p.add_argument("--step", type=float, default=0.05)
    p.add_argument("--max-ratio", type=float, default=0.9)
    p.add_argument("--parallel", type=int, default=1,
                   help="worker processes to fan sweep points across")
    p.add_argument("--run-dir", default=None,
                   help="journaled run directory (enables --resume)")
    p.add_argument("--resume", action="store_true",
                   help="skip points already completed in --run-dir")
    p.add_argument("--isolate", action="store_true",
                   help="run each point in its own process even with --parallel 1")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("fleet", help="datacenter fleet under a power budget")
    p.add_argument("--nodes", type=int, default=100,
                   help="fleet size (catalog nodes, mixed by the scenario)")
    p.add_argument("--scenario", default="diurnal",
                   choices=["diurnal", "rolling-caps", "fault-bursts"],
                   help="fleet workload generator")
    p.add_argument("--allocator", default="efficiency-weighted",
                   help="cap allocator, or a comma-separated list to "
                        "compare (uniform-cap, proportional-share, "
                        "efficiency-weighted)")
    p.add_argument("--budget-frac", type=float, default=0.5,
                   help="datacenter budget as a fraction of the fleet's "
                        "headroom above its floor draw")
    p.add_argument("--duration", type=float, default=240.0,
                   help="scenario duration in simulated seconds")
    p.add_argument("--interval", type=float, default=12.0,
                   help="coordination interval in simulated seconds")
    p.add_argument("--nodes-per-rack", type=int, default=20)
    p.add_argument("--seed", type=int, default=0,
                   help="root seed every per-node stream spawns from")
    p.add_argument("--shards", type=int, default=1,
                   help="split the fleet into this many harness jobs")
    p.add_argument("--parallel", type=int, default=1,
                   help="worker processes to fan shards across")
    p.add_argument("--run-dir", default=None,
                   help="journaled run directory (enables --resume)")
    p.add_argument("--resume", action="store_true",
                   help="skip shards already completed in --run-dir")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the per-allocator summary JSON here")
    _add_telemetry(p)
    _add_cache(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("characterize", help="Table II utilization classes")
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--time-scale", type=float, default=0.1)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("oracle", help="exhaustive static frequency search")
    _add_common(p)
    p.add_argument("--ratio", type=float, default=0.0)
    p.add_argument("--max-slowdown", type=float, default=None)
    p.set_defaults(func=cmd_oracle)

    p = sub.add_parser("reproduce", help="regenerate paper artifacts")
    _add_telemetry(p)
    p.add_argument("artifacts", nargs="*",
                   help="fig1 fig2 table2 fig5 fig6 fig7 fig8 headline (default: all)")
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser("replay", help="run a policy on a utilization-trace CSV")
    _add_faults(p)
    p.add_argument("trace", help="CSV with time_s,u_core,u_mem rows")
    p.add_argument("--policy", default="scaling-only", choices=sorted(POLICY_FACTORIES))
    p.add_argument("--iterations", type=int, default=3)
    p.add_argument("--time-scale", type=float, default=1.0)
    p.add_argument("--cpu-gpu-ratio", type=float, default=4.0)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("metrics", help="render a --telemetry directory")
    p.add_argument("dir", help="directory written by a --telemetry run")
    p.add_argument("--format", default="table",
                   choices=["table", "csv", "json"],
                   help="table (human), csv (one row per instrument), or "
                        "json (the raw merged snapshot)")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("trace",
                       help="render a run's stitched trace waterfall")
    p.add_argument("dir", help="directory written by a --telemetry run")
    p.add_argument("--limit", type=int, default=80,
                   help="maximum spans to print before truncating")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("slo",
                       help="evaluate SLO compliance and burn rates")
    p.add_argument("action", choices=["check"])
    p.add_argument("dir", help="directory written by a --telemetry run")
    p.add_argument("--slo", default=None, metavar="FILE",
                   help="JSON objective file (default: built-in objectives)")
    p.add_argument("--window", type=float, action="append", default=None,
                   metavar="SECONDS",
                   help="burn-rate window (repeatable; default: 60, 300)")
    p.add_argument("--fail-on", action="append", default=None,
                   metavar="KEY=VAL",
                   help="exit 1 past a gate, e.g. violations=0, burn=2 "
                        "(repeat or comma-separate)")
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser("explain",
                       help="narrate a run's decision audit trail")
    p.add_argument("dir", help="directory written by a --telemetry run")
    p.add_argument("--tick", type=int, default=None,
                   help="show the full evidence for one scaling tick")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("diff", help="compare two run directories")
    p.add_argument("dir_a", help="baseline run directory")
    p.add_argument("dir_b", help="candidate run directory")
    p.add_argument("--fail-on", action="append", default=None,
                   metavar="KEY=VAL",
                   help="exit 1 past a threshold, e.g. energy=2%%, "
                        "time=5%%, flips=0 (repeat or comma-separate)")
    p.add_argument("--fail-on-divergence", action="store_true",
                   help="exit 1 if anything deterministic differs")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache root (default: $GREENGPU_CACHE_DIR or "
                        "~/.cache/greengpu)")
    p.add_argument("--format", default="table", choices=["table", "json"],
                   help="output format: table (default) or json with "
                        "per-shard entry counts / reclaimed bytes")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("serve",
                       help="run the simulation-as-a-service daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8100,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent spawn-isolated simulation workers")
    p.add_argument("--run-dir", default="runs/service", metavar="DIR",
                   help="journal + artifact directory (resume point)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache root (default: $GREENGPU_CACHE_DIR "
                        "or ~/.cache/greengpu); 'off' disables caching")
    p.add_argument("--tenant-queue-limit", type=int, default=64)
    p.add_argument("--global-high-water", type=int, default=256)
    p.add_argument("--rate-per-tenant", type=float, default=50.0,
                   help="token-bucket refill rate (submissions/s)")
    p.add_argument("--burst-per-tenant", type=float, default=100.0)
    p.add_argument("--job-timeout", type=float, default=120.0,
                   metavar="SECONDS", dest="job_timeout_s")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="SECONDS", dest="drain_timeout_s")
    p.add_argument("--no-isolate", action="store_true",
                   help="run jobs in threads instead of spawned processes "
                        "(faster, but no kill-on-timeout; for testing)")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="export per-job worker telemetry under DIR and "
                        "merge it (plus the daemon's own stream) into one "
                        "stitched trace at shutdown")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("report",
                       help="self-contained HTML report for a run directory")
    p.add_argument("dir", help="directory written by a --telemetry run")
    p.add_argument("--html", action="store_true",
                   help="render HTML (the default — and currently only — "
                        "format)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="output path (default: <dir>/report.html)")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
