"""GreenGPU's core algorithms (the paper's contribution).

Two tiers (paper §IV-§V):

1. **Workload division** (:mod:`repro.core.division`) — per-iteration
   adjustment of the CPU work share ``r`` by a fixed step based on which
   side finished last, with a linear-extrapolation oscillation safeguard.
2. **Frequency scaling** (:mod:`repro.core.wma`) — a Weighted Majority
   Algorithm over the N x M GPU core/memory frequency-pair table, driven
   by the Table-I loss functions (:mod:`repro.core.loss`); plus the stock
   Linux `ondemand` governor for the CPU (:mod:`repro.core.ondemand`).

:mod:`repro.core.controller` composes both tiers with decoupled periods;
:mod:`repro.core.policies` provides the paper's baselines.
"""

from repro.core.config import GreenGpuConfig
from repro.core.loss import component_loss, loss_vector, total_loss_matrix
from repro.core.weights import WeightTable
from repro.core.wma import WmaFrequencyScaler
from repro.core.ondemand import OndemandGovernor
from repro.core.division import DivisionDecision, WorkloadDivider
from repro.core.controller import GreenGpuController, TierMode
from repro.core.policies import (
    BestPerformancePolicy,
    GreenGpuPolicy,
    DivisionOnlyPolicy,
    FrequencyScalingOnlyPolicy,
    Policy,
    RodiniaDefaultPolicy,
    StaticPolicy,
)

__all__ = [
    "GreenGpuConfig",
    "component_loss",
    "loss_vector",
    "total_loss_matrix",
    "WeightTable",
    "WmaFrequencyScaler",
    "OndemandGovernor",
    "WorkloadDivider",
    "DivisionDecision",
    "GreenGpuController",
    "TierMode",
    "Policy",
    "GreenGpuPolicy",
    "BestPerformancePolicy",
    "RodiniaDefaultPolicy",
    "DivisionOnlyPolicy",
    "FrequencyScalingOnlyPolicy",
    "StaticPolicy",
]
