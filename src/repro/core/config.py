"""All GreenGPU tunables, with the paper's published defaults.

Every constant here is quoted from the paper:

- ``alpha_core = 0.15``, ``alpha_mem = 0.02`` — the energy-vs-performance
  trade-off weights in the Table-I loss functions ("we give a higher
  weight to performance by setting alpha_c = 0.15 for cores and
  alpha_m = 0.02 for memory", §V-A).
- ``phi = 0.3`` — the core/memory blend in Eq. 3.
- ``beta = 0.2`` — the history-vs-current trade-off in Eq. 4 ("to filter
  out limited system noise with quick workload change response").
- ``scaling_interval_s = 3.0`` — "our frequency scaling interval is 3 s in
  this test" (§VII-A).
- ``division_step = 0.05`` — "one fixed amount, 5 %" (§V-B).
- ``initial_cpu_ratio = 0.3`` — Fig. 7a starts at 30 % CPU "in order to
  have a faster convergence"; any value converges (§VII-B).
- ``min_division_scaling_ratio = 40`` — "we select the workload division
  interval long enough (e.g., no less than 40 times longer than that of
  GPU frequency scaling interval)" (§IV).
- `ondemand` thresholds follow the paper's description of the linux-2.6.32
  governor: jump to the peak above the upper threshold, step down one
  level below the lower threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigError


@dataclass(frozen=True)
class GreenGpuConfig:
    """Immutable bundle of every GreenGPU tunable (see module docstring)."""

    # Tier 2: GPU core/memory WMA scaler (paper §V-A).
    alpha_core: float = 0.15
    alpha_mem: float = 0.02
    phi: float = 0.3
    beta: float = 0.2
    scaling_interval_s: float = 3.0

    # Tier 2: CPU ondemand governor (paper §IV).
    ondemand_up_threshold: float = 0.80
    ondemand_down_threshold: float = 0.30
    ondemand_interval_s: float = 0.1

    # Tier 1: workload division (paper §V-B).
    division_step: float = 0.05
    initial_cpu_ratio: float = 0.30
    min_cpu_ratio: float = 0.0
    max_cpu_ratio: float = 0.95
    oscillation_safeguard: bool = True

    # Tier decoupling (paper §IV).
    min_division_scaling_ratio: float = 40.0

    def __post_init__(self) -> None:
        for name in ("alpha_core", "alpha_mem", "phi"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {v}")
        if not 0.0 < self.beta < 1.0:
            raise ConfigError(f"beta must be in (0, 1), got {self.beta}")
        if self.scaling_interval_s <= 0.0:
            raise ConfigError("scaling interval must be positive")
        if not 0.0 < self.ondemand_up_threshold <= 1.0:
            raise ConfigError("ondemand up threshold must be in (0, 1]")
        if not 0.0 <= self.ondemand_down_threshold < self.ondemand_up_threshold:
            raise ConfigError(
                "ondemand down threshold must be in [0, up_threshold)"
            )
        if self.ondemand_interval_s <= 0.0:
            raise ConfigError("ondemand interval must be positive")
        if not 0.0 < self.division_step <= 0.5:
            raise ConfigError("division step must be in (0, 0.5]")
        if not 0.0 <= self.min_cpu_ratio <= self.max_cpu_ratio <= 1.0:
            raise ConfigError("need 0 <= min_cpu_ratio <= max_cpu_ratio <= 1")
        if not self.min_cpu_ratio <= self.initial_cpu_ratio <= self.max_cpu_ratio:
            raise ConfigError("initial ratio outside [min, max] bounds")
        if self.min_division_scaling_ratio < 1.0:
            raise ConfigError("division/scaling interval ratio must be >= 1")

    def with_(self, **changes: Any) -> "GreenGpuConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)

    def min_iteration_length_s(self) -> float:
        """Shortest iteration length honouring the tier-decoupling rule.

        The paper requires the division period (one iteration) to be at
        least ``min_division_scaling_ratio`` times the GPU scaling interval
        so the WMA loop converges within one division interval (§IV).
        """
        return self.min_division_scaling_ratio * self.scaling_interval_s
