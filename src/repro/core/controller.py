"""The assembled two-tier GreenGPU controller (paper §IV, Fig. 3).

:class:`GreenGpuController` wires the paper's control loops onto a
simulated :class:`~repro.sim.platform.HeteroSystem`:

- **Tier 2, GPU**: every ``scaling_interval_s`` (3 s), read the windowed
  core/memory utilizations through the ``nvidia-smi`` facade, run one WMA
  step, and enforce the chosen frequency pair.
- **Tier 2, CPU**: every ``ondemand_interval_s``, read /proc/stat-style
  utilization and apply the `ondemand` rule.
- **Tier 1**: at every iteration boundary the executor reports
  ``(tc, tg)`` and receives the next division ratio.

The two tiers are deliberately decoupled: division happens at iteration
granularity (long), scaling at a short fixed period, so the WMA loop can
settle within one division interval (§IV).  :class:`TierMode` selects
which tiers are active, which is how the paper's *Division-only* and
*Frequency-scaling-only* baselines are expressed.

Hardening (the degradation ladder)
----------------------------------

The paper's daemon ran against real hardware where ``nvidia-smi`` reads
stall and ``nvidia-settings`` writes fail; the controller tolerates the
same faults when driven through :mod:`repro.faults`:

1. **fresh** — a clean read drives a normal WMA/ondemand step;
2. **fallback** — a failed read is served from the last good sample,
   for at most ``stale_window_ticks`` intervals of staleness;
3. **skip** — with no usable sample the tick is skipped and the previous
   decision stays in force;
4. **degraded** — after ``watchdog_threshold`` consecutive faulty ticks
   the watchdog escalates to the safe state: peak GPU frequencies and a
   frozen division ratio.  The first fully clean tick recovers.

Frequency writes go through bounded retry with capped backoff and are
verified against ``peek_clocks()``, which is the only way to catch
silently-ignored writes and thermal-throttle pinning.  Every fault,
retry, fallback, skip and degradation is counted in
:class:`~repro.faults.health.ControlHealth` and recorded on the trace
(``ctrl_*`` channels).  With no faults injected, every guard is on the
success path and the controller is bit-identical to the unhardened one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.config import GreenGpuConfig
from repro.core.division import WorkloadDivider
from repro.core.ondemand import OndemandGovernor
from repro.core.wma import WmaFrequencyScaler
from repro.errors import ActuationError, MonitorError, SimulationError
from repro.faults.health import ControlHealth
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.faults.wrappers import FaultyCpuStat, FaultyGpuActuator, FaultyNvidiaSmi
from repro.monitors.cpustat import CpuStat, CpuUtilizationSample
from repro.monitors.nvsmi import GpuUtilizationSample, NvidiaSmi
from repro.sim.engine import TaskHandle
from repro.sim.platform import HeteroSystem
from repro.sim.trace import TraceRecorder


class TierMode(enum.Enum):
    """Which GreenGPU tiers are active."""

    HOLISTIC = "holistic"              # both tiers (GreenGPU proper)
    DIVISION_ONLY = "division-only"    # tier 1 only; frequencies pinned
    SCALING_ONLY = "scaling-only"      # tier 2 only; division pinned
    NONE = "none"                      # everything pinned (baselines)

    @property
    def division_enabled(self) -> bool:
        return self in (TierMode.HOLISTIC, TierMode.DIVISION_ONLY)

    @property
    def scaling_enabled(self) -> bool:
        return self in (TierMode.HOLISTIC, TierMode.SCALING_ONLY)


@dataclass(frozen=True)
class HardeningPolicy:
    """Knobs of the degradation ladder (see module docstring)."""

    retry: RetryPolicy = RetryPolicy()
    stale_window_ticks: int = 3
    watchdog_threshold: int = 5

    def __post_init__(self) -> None:
        if self.stale_window_ticks < 0:
            raise SimulationError("stale window must be non-negative")
        if self.watchdog_threshold < 1:
            raise SimulationError("watchdog threshold must be >= 1")


class GreenGpuController:
    """Runtime composition of the WMA scaler, ondemand and the divider."""

    def __init__(
        self,
        mode: TierMode = TierMode.HOLISTIC,
        config: GreenGpuConfig | None = None,
        initial_ratio: float | None = None,
        recorder: TraceRecorder | None = None,
        faults: FaultInjector | None = None,
        hardening: HardeningPolicy | None = None,
    ):
        self.mode = mode
        self.config = config or GreenGpuConfig()
        self.recorder = recorder
        self.faults = faults
        self.hardening = hardening or HardeningPolicy()
        self.health = ControlHealth()
        self._initial_ratio = initial_ratio
        self.scaler: WmaFrequencyScaler | None = None
        self.governor: OndemandGovernor | None = None
        self.divider: WorkloadDivider | None = None
        self._system: HeteroSystem | None = None
        self._nvsmi: NvidiaSmi | FaultyNvidiaSmi | None = None
        self._cpustat: CpuStat | FaultyCpuStat | None = None
        self._actuator = None
        self._tasks: list[TaskHandle] = []
        self._last_gpu_sample: GpuUtilizationSample | None = None
        self._last_cpu_sample: CpuUtilizationSample | None = None
        self._consecutive_failures = 0
        self._degraded = False

    # -- lifecycle -----------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._system is not None

    @property
    def degraded(self) -> bool:
        """True while the watchdog holds the controller in the safe state."""
        return self._degraded

    def attach(self, system: HeteroSystem) -> None:
        """Bind to a testbed and register the periodic tier-2 loops."""
        if self.attached:
            raise SimulationError("controller already attached")
        self._system = system
        self.health = ControlHealth()
        cfg = self.config
        if self.faults is not None:
            self.faults.bind(clock=system.clock, recorder=self.recorder)
        if self.mode.division_enabled:
            self.divider = WorkloadDivider(cfg, r0=self._initial_ratio)
        else:
            self.divider = None
        if self.mode.scaling_enabled:
            self.scaler = WmaFrequencyScaler(
                system.gpu.spec.core_ladder, system.gpu.spec.mem_ladder, cfg
            )
            self.governor = OndemandGovernor(
                system.cpu.spec.ladder,
                up_threshold=cfg.ondemand_up_threshold,
                down_threshold=cfg.ondemand_down_threshold,
            )
            if self.faults is not None:
                self._nvsmi = FaultyNvidiaSmi(NvidiaSmi(system.gpu), self.faults)
                self._cpustat = FaultyCpuStat(CpuStat(system.cpu), self.faults)
                self._actuator = FaultyGpuActuator(system.gpu, self.faults)
            else:
                self._nvsmi = NvidiaSmi(system.gpu)
                self._cpustat = CpuStat(system.cpu)
                self._actuator = system.gpu
            self._tasks.append(
                system.clock.every(
                    cfg.scaling_interval_s, self._scaling_tick, name="wma-scaling"
                )
            )
            self._tasks.append(
                system.clock.every(
                    cfg.ondemand_interval_s, self._ondemand_tick, name="ondemand"
                )
            )

    def detach(self) -> None:
        """Cancel the periodic loops, unbind, and drop all learned state.

        Detach is a full reset: a controller detached from one system and
        attached to another must not leak learned WMA weights, governor
        state or the division ratio between runs.  ``health`` survives
        until the next attach so callers can read it post-run.
        """
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        self._system = None
        self._nvsmi = None
        self._cpustat = None
        self._actuator = None
        self.scaler = None
        self.governor = None
        self.divider = None
        self._last_gpu_sample = None
        self._last_cpu_sample = None
        self._consecutive_failures = 0
        self._degraded = False

    # -- hardening plumbing --------------------------------------------------------

    def _record_event(self, channel: str, t: float, value: float = 1.0) -> None:
        if self.recorder is not None:
            self.recorder.record(channel, t, value)

    def _stale_gpu_sample(self, t: float) -> GpuUtilizationSample | None:
        """Last good GPU sample, if still inside the staleness window."""
        last = self._last_gpu_sample
        if last is None:
            return None
        max_age = self.hardening.stale_window_ticks * self.config.scaling_interval_s
        return last if (t - last.t) <= max_age else None

    def _stale_cpu_sample(self, t: float) -> CpuUtilizationSample | None:
        last = self._last_cpu_sample
        if last is None:
            return None
        max_age = self.hardening.stale_window_ticks * self.config.ondemand_interval_s
        return last if (t - last.t) <= max_age else None

    def _apply_gpu_frequencies(self, t: float, f_core: float, f_mem: float) -> bool:
        """Write a frequency pair with retry + verification.

        Returns True once ``peek_clocks()`` confirms the pair landed;
        False (after counting the actuation fault) when every attempt
        failed or was silently swallowed.
        """
        assert self._actuator is not None and self._nvsmi is not None

        def attempt() -> None:
            self._actuator.set_frequencies(f_core, f_mem)
            if self._nvsmi.peek_clocks() != (f_core, f_mem):
                raise ActuationError("frequency write did not take effect")

        def on_retry(attempt_index: int, backoff_s: float, exc: Exception) -> None:
            self.health.retries += 1
            self._record_event("ctrl_retry", t, backoff_s)

        try:
            call_with_retry(attempt, self.hardening.retry, on_retry=on_retry)
        except ActuationError:
            self.health.actuation_faults += 1
            self._record_event("ctrl_actuation_failed", t)
            return False
        return True

    def _note_tick_outcome(self, t: float, clean: bool) -> None:
        """Advance or reset the watchdog after a GPU scaling tick."""
        if clean:
            self._consecutive_failures = 0
            if self._degraded:
                self._degraded = False
                self.health.recoveries += 1
                self._record_event("ctrl_degraded", t, 0.0)
            return
        self._consecutive_failures += 1
        if (
            not self._degraded
            and self._consecutive_failures >= self.hardening.watchdog_threshold
        ):
            self._degraded = True
            self.health.degraded_entries += 1
            self._record_event("ctrl_degraded", t, 1.0)
        if self._degraded:
            self._enforce_safe_state()

    def _enforce_safe_state(self) -> None:
        """Best-effort push to peak frequencies (the watchdog's safe state).

        Peak is safe in the paper's sense: it can only cost energy, never
        correctness or deadline — the best-performance baseline.  The
        write may itself fail (e.g. during a throttle episode); it is
        retried on every degraded tick until it lands.
        """
        assert self._system is not None and self._actuator is not None
        spec = self._system.gpu.spec
        try:
            self._actuator.set_frequencies(spec.core_ladder.peak, spec.mem_ladder.peak)
        except ActuationError:
            pass

    # -- tier 2 ticks -----------------------------------------------------------------

    def _scaling_tick(self, t: float) -> None:
        assert self._system is not None and self._nvsmi is not None
        assert self.scaler is not None
        clean = True
        try:
            sample = self._nvsmi.query()
            self._last_gpu_sample = sample
        except MonitorError:
            clean = False
            self.health.monitor_faults += 1
            sample = self._stale_gpu_sample(t)
            if sample is None:
                # No usable data: skip the step, keep the previous decision.
                self.health.skipped_ticks += 1
                self._record_event("ctrl_skip", t)
                self._note_tick_outcome(t, clean=False)
                return
            self.health.fallbacks += 1
            self._record_event("ctrl_fallback", t)
        decision = self.scaler.step(sample.u_core, sample.u_mem)
        if not self._apply_gpu_frequencies(t, decision.f_core, decision.f_mem):
            clean = False
        if self.recorder is not None:
            self.recorder.record_many(
                t,
                gpu_u_core=sample.u_core,
                gpu_u_mem=sample.u_mem,
                gpu_f_core=decision.f_core,
                gpu_f_mem=decision.f_mem,
                system_power_w=self._system.system_power(),
            )
        self._note_tick_outcome(t, clean)

    def _ondemand_tick(self, t: float) -> None:
        assert self._system is not None and self._cpustat is not None
        assert self.governor is not None
        try:
            sample = self._cpustat.query()
            self._last_cpu_sample = sample
        except MonitorError:
            self.health.monitor_faults += 1
            sample = self._stale_cpu_sample(t)
            if sample is None:
                self.health.skipped_ticks += 1
                self._record_event("ctrl_skip", t)
                return
            self.health.fallbacks += 1
            self._record_event("ctrl_fallback", t)
        decision = self.governor.step(sample.u, self._system.cpu.f)
        if decision.changed:
            self._system.cpu.set_frequency(decision.f_target)
        if self.recorder is not None:
            self.recorder.record_many(t, cpu_u=sample.u, cpu_f=decision.f_target)

    # -- tier 1 boundary -----------------------------------------------------------------

    @property
    def ratio(self) -> float:
        """Current CPU work share."""
        if self.divider is not None:
            return self.divider.r
        if self._initial_ratio is not None:
            return self._initial_ratio
        return 0.0  # paper default: everything on the GPU

    def on_iteration_end(self, tc: float, tg: float) -> float:
        """Tier-1 boundary: feed (tc, tg), get the next division ratio."""
        if self.divider is None:
            return self.ratio
        if self._degraded:
            # Watchdog safe state: hold the division ratio steady rather
            # than learn from timings measured under faulty control.
            self.health.frozen_divisions += 1
            if self._system is not None:
                now = self._system.now
                self._record_event("ctrl_division_frozen", now)
                if self.recorder is not None:
                    self.recorder.record_many(
                        now, division_r=self.divider.r, tc=tc, tg=tg
                    )
            return self.divider.r
        decision = self.divider.update(tc, tg)
        if self.recorder is not None and self._system is not None:
            self.recorder.record_many(
                self._system.now, division_r=decision.r_next, tc=tc, tg=tg
            )
        return decision.r_next
