"""The assembled two-tier GreenGPU controller (paper §IV, Fig. 3).

:class:`GreenGpuController` wires the paper's control loops onto a
simulated :class:`~repro.sim.platform.HeteroSystem`:

- **Tier 2, GPU**: every ``scaling_interval_s`` (3 s), read the windowed
  core/memory utilizations through the ``nvidia-smi`` facade, run one WMA
  step, and enforce the chosen frequency pair.
- **Tier 2, CPU**: every ``ondemand_interval_s``, read /proc/stat-style
  utilization and apply the `ondemand` rule.
- **Tier 1**: at every iteration boundary the executor reports
  ``(tc, tg)`` and receives the next division ratio.

The two tiers are deliberately decoupled: division happens at iteration
granularity (long), scaling at a short fixed period, so the WMA loop can
settle within one division interval (§IV).  :class:`TierMode` selects
which tiers are active, which is how the paper's *Division-only* and
*Frequency-scaling-only* baselines are expressed.
"""

from __future__ import annotations

import enum

from repro.core.config import GreenGpuConfig
from repro.core.division import WorkloadDivider
from repro.core.ondemand import OndemandGovernor
from repro.core.wma import WmaFrequencyScaler
from repro.errors import SimulationError
from repro.monitors.cpustat import CpuStat
from repro.monitors.nvsmi import NvidiaSmi
from repro.sim.engine import TaskHandle
from repro.sim.platform import HeteroSystem
from repro.sim.trace import TraceRecorder


class TierMode(enum.Enum):
    """Which GreenGPU tiers are active."""

    HOLISTIC = "holistic"              # both tiers (GreenGPU proper)
    DIVISION_ONLY = "division-only"    # tier 1 only; frequencies pinned
    SCALING_ONLY = "scaling-only"      # tier 2 only; division pinned
    NONE = "none"                      # everything pinned (baselines)

    @property
    def division_enabled(self) -> bool:
        return self in (TierMode.HOLISTIC, TierMode.DIVISION_ONLY)

    @property
    def scaling_enabled(self) -> bool:
        return self in (TierMode.HOLISTIC, TierMode.SCALING_ONLY)


class GreenGpuController:
    """Runtime composition of the WMA scaler, ondemand and the divider."""

    def __init__(
        self,
        mode: TierMode = TierMode.HOLISTIC,
        config: GreenGpuConfig | None = None,
        initial_ratio: float | None = None,
        recorder: TraceRecorder | None = None,
    ):
        self.mode = mode
        self.config = config or GreenGpuConfig()
        self.recorder = recorder
        self._initial_ratio = initial_ratio
        self.scaler: WmaFrequencyScaler | None = None
        self.governor: OndemandGovernor | None = None
        self.divider: WorkloadDivider | None = None
        self._system: HeteroSystem | None = None
        self._nvsmi: NvidiaSmi | None = None
        self._cpustat: CpuStat | None = None
        self._tasks: list[TaskHandle] = []

    # -- lifecycle -----------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._system is not None

    def attach(self, system: HeteroSystem) -> None:
        """Bind to a testbed and register the periodic tier-2 loops."""
        if self.attached:
            raise SimulationError("controller already attached")
        self._system = system
        cfg = self.config
        if self.mode.division_enabled:
            self.divider = WorkloadDivider(cfg, r0=self._initial_ratio)
        else:
            self.divider = None
        if self.mode.scaling_enabled:
            self.scaler = WmaFrequencyScaler(
                system.gpu.spec.core_ladder, system.gpu.spec.mem_ladder, cfg
            )
            self.governor = OndemandGovernor(
                system.cpu.spec.ladder,
                up_threshold=cfg.ondemand_up_threshold,
                down_threshold=cfg.ondemand_down_threshold,
            )
            self._nvsmi = NvidiaSmi(system.gpu)
            self._cpustat = CpuStat(system.cpu)
            self._tasks.append(
                system.clock.every(
                    cfg.scaling_interval_s, self._scaling_tick, name="wma-scaling"
                )
            )
            self._tasks.append(
                system.clock.every(
                    cfg.ondemand_interval_s, self._ondemand_tick, name="ondemand"
                )
            )

    def detach(self) -> None:
        """Cancel the periodic loops and unbind from the testbed."""
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        self._system = None
        self._nvsmi = None
        self._cpustat = None

    # -- tier 2 ticks -----------------------------------------------------------------

    def _scaling_tick(self, t: float) -> None:
        assert self._system is not None and self._nvsmi is not None
        assert self.scaler is not None
        sample = self._nvsmi.query()
        decision = self.scaler.step(sample.u_core, sample.u_mem)
        self._system.gpu.set_frequencies(decision.f_core, decision.f_mem)
        if self.recorder is not None:
            self.recorder.record_many(
                t,
                gpu_u_core=sample.u_core,
                gpu_u_mem=sample.u_mem,
                gpu_f_core=decision.f_core,
                gpu_f_mem=decision.f_mem,
                system_power_w=self._system.system_power(),
            )

    def _ondemand_tick(self, t: float) -> None:
        assert self._system is not None and self._cpustat is not None
        assert self.governor is not None
        sample = self._cpustat.query()
        decision = self.governor.step(sample.u, self._system.cpu.f)
        if decision.changed:
            self._system.cpu.set_frequency(decision.f_target)
        if self.recorder is not None:
            self.recorder.record_many(t, cpu_u=sample.u, cpu_f=decision.f_target)

    # -- tier 1 boundary -----------------------------------------------------------------

    @property
    def ratio(self) -> float:
        """Current CPU work share."""
        if self.divider is not None:
            return self.divider.r
        if self._initial_ratio is not None:
            return self._initial_ratio
        return 0.0  # paper default: everything on the GPU

    def on_iteration_end(self, tc: float, tg: float) -> float:
        """Tier-1 boundary: feed (tc, tg), get the next division ratio."""
        if self.divider is None:
            return self.ratio
        decision = self.divider.update(tc, tg)
        if self.recorder is not None and self._system is not None:
            self.recorder.record_many(
                self._system.now, division_r=decision.r_next, tc=tc, tg=tg
            )
        return decision.r_next
