"""The assembled two-tier GreenGPU controller (paper §IV, Fig. 3).

:class:`GreenGpuController` wires the paper's control loops onto a
simulated :class:`~repro.sim.platform.HeteroSystem`:

- **Tier 2, GPU**: every ``scaling_interval_s`` (3 s), read the windowed
  core/memory utilizations through the ``nvidia-smi`` facade, run one WMA
  step, and enforce the chosen frequency pair.
- **Tier 2, CPU**: every ``ondemand_interval_s``, read /proc/stat-style
  utilization and apply the `ondemand` rule.
- **Tier 1**: at every iteration boundary the executor reports
  ``(tc, tg)`` and receives the next division ratio.

The two tiers are deliberately decoupled: division happens at iteration
granularity (long), scaling at a short fixed period, so the WMA loop can
settle within one division interval (§IV).  :class:`TierMode` selects
which tiers are active, which is how the paper's *Division-only* and
*Frequency-scaling-only* baselines are expressed.

Hardening (the degradation ladder)
----------------------------------

The paper's daemon ran against real hardware where ``nvidia-smi`` reads
stall and ``nvidia-settings`` writes fail; the controller tolerates the
same faults when driven through :mod:`repro.faults`:

1. **fresh** — a clean read drives a normal WMA/ondemand step;
2. **fallback** — a failed read is served from the last good sample,
   for at most ``stale_window_ticks`` intervals of staleness;
3. **skip** — with no usable sample the tick is skipped and the previous
   decision stays in force;
4. **degraded** — after ``watchdog_threshold`` consecutive faulty ticks
   the watchdog escalates to the safe state: peak GPU frequencies and a
   frozen division ratio.  The first fully clean tick recovers.

Frequency writes go through bounded retry with capped backoff and are
verified against ``peek_clocks()``, which is the only way to catch
silently-ignored writes and thermal-throttle pinning.  Every fault,
retry, fallback, skip and degradation is counted in
:class:`~repro.faults.health.ControlHealth` and recorded on the trace
(``ctrl_*`` channels).  With no faults injected, every guard is on the
success path and the controller is bit-identical to the unhardened one.

Observability
-------------

The controller is instrumented through :mod:`repro.telemetry`: every
tier-2 tick runs inside a span (``scaling_tick`` / ``ondemand_tick``)
with nested spans for the monitor read, the WMA update and the
frequency actuation; retries, ladder transitions and WMA decisions
become structured events; and power is tracked as a gauge plus a
distribution histogram.  The :class:`ControlHealth` counters live in
the telemetry registry (see :func:`repro.faults.health.counter_name`) —
``controller.health`` is a view over them, so the legacy record and the
exported metrics are one set of numbers.  Without a telemetry backend
all instruments are the allocation-free no-ops from
:data:`repro.telemetry.NOOP`; only the health counters stay real, in a
private registry.

An optional :class:`~repro.telemetry.audit.AuditTrail` records the *why*
of every decision: one structured record per scaling tick (inputs, loss
vectors, weight table, argmax-vs-runner-up margin, fault overrides) and
per division boundary, rendered by ``repro explain`` and compared by
``repro diff``.  Like telemetry, the audit path is guarded by a cached
flag and defers all derivation off the hot tick.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.core.config import GreenGpuConfig
from repro.core.division import WorkloadDivider
from repro.core.ondemand import OndemandGovernor
from repro.core.wma import WmaFrequencyScaler
from repro.errors import ActuationError, MonitorError, SimulationError
from repro.faults.health import HEALTH_FIELDS, ControlHealth, counter_name
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.faults.wrappers import FaultyCpuStat, FaultyGpuActuator, FaultyNvidiaSmi
from repro.monitors.cpustat import CpuStat, CpuUtilizationSample
from repro.monitors.nvsmi import GpuUtilizationSample, NvidiaSmi
from repro.sim.engine import TaskHandle
from repro.sim.platform import HeteroSystem
from repro.sim.trace import TraceRecorder
from repro.telemetry import NOOP, MetricsRegistry, NullTelemetry, Telemetry
from repro.telemetry.audit import AuditTrail


class TierMode(enum.Enum):
    """Which GreenGPU tiers are active."""

    HOLISTIC = "holistic"              # both tiers (GreenGPU proper)
    DIVISION_ONLY = "division-only"    # tier 1 only; frequencies pinned
    SCALING_ONLY = "scaling-only"      # tier 2 only; division pinned
    NONE = "none"                      # everything pinned (baselines)

    @property
    def division_enabled(self) -> bool:
        return self in (TierMode.HOLISTIC, TierMode.DIVISION_ONLY)

    @property
    def scaling_enabled(self) -> bool:
        return self in (TierMode.HOLISTIC, TierMode.SCALING_ONLY)


@dataclass(frozen=True)
class HardeningPolicy:
    """Knobs of the degradation ladder (see module docstring)."""

    retry: RetryPolicy = RetryPolicy()
    stale_window_ticks: int = 3
    watchdog_threshold: int = 5

    def __post_init__(self) -> None:
        if self.stale_window_ticks < 0:
            raise SimulationError("stale window must be non-negative")
        if self.watchdog_threshold < 1:
            raise SimulationError("watchdog threshold must be >= 1")


class GreenGpuController:
    """Runtime composition of the WMA scaler, ondemand and the divider."""

    def __init__(
        self,
        mode: TierMode = TierMode.HOLISTIC,
        config: GreenGpuConfig | None = None,
        initial_ratio: float | None = None,
        recorder: TraceRecorder | None = None,
        faults: FaultInjector | None = None,
        hardening: HardeningPolicy | None = None,
        telemetry: Telemetry | NullTelemetry | None = None,
        audit: AuditTrail | None = None,
    ):
        self.mode = mode
        self.config = config or GreenGpuConfig()
        self.recorder = recorder
        self.faults = faults
        self.hardening = hardening or HardeningPolicy()
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.audit = audit
        # Cached so the tier-2 tick bodies can guard their span sites
        # with a plain branch: the CI overhead gate budgets the disabled
        # hot path at < 3 %, which a `with null_span` per site would blow.
        # The audit flag gets the same treatment (< 5 % enabled budget).
        self._tel_on = self.telemetry.enabled
        self._audit_on = audit is not None
        # Health counters must be readable even with telemetry disabled,
        # so they fall back to a private registry (counters only — the
        # span/event path stays on the no-op backend).
        metrics = (self.telemetry.registry if self.telemetry.enabled
                   else MetricsRegistry())
        base = dict(self.telemetry.base_labels) if self.telemetry.enabled else {}
        self._health_counters = {
            name: metrics.counter(counter_name(name), **base)
            for name in HEALTH_FIELDS
        }
        self._initial_ratio = initial_ratio
        self.scaler: WmaFrequencyScaler | None = None
        self.governor: OndemandGovernor | None = None
        self.divider: WorkloadDivider | None = None
        self._system: HeteroSystem | None = None
        self._nvsmi: NvidiaSmi | FaultyNvidiaSmi | None = None
        self._cpustat: CpuStat | FaultyCpuStat | None = None
        self._actuator = None
        self._tasks: list[TaskHandle] = []
        self._last_gpu_sample: GpuUtilizationSample | None = None
        self._last_cpu_sample: CpuUtilizationSample | None = None
        self._consecutive_failures = 0
        self._degraded = False
        # Frequency-ladder ceiling (power-cap enforcement): WMA decisions
        # are clamped to level indices >= these (index 0 = peak), so a
        # fleet coordinator can bound this node's draw without touching
        # the learning loop.  (0, 0) — the default — is a no-op and the
        # controller is bit-identical to the unceilinged one.
        self._level_ceiling: tuple[int, int] = (0, 0)

    # -- lifecycle -----------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._system is not None

    @property
    def degraded(self) -> bool:
        """True while the watchdog holds the controller in the safe state."""
        return self._degraded

    @property
    def health(self) -> ControlHealth:
        """The fault/recovery record, materialized from telemetry counters.

        The counters are the single source of truth; this view survives
        :meth:`detach` (they reset on the next :meth:`attach`), matching
        the historical "health readable post-run" contract.
        """
        return ControlHealth(**{
            name: int(counter.value)
            for name, counter in self._health_counters.items()
        })

    def attach(self, system: HeteroSystem) -> None:
        """Bind to a testbed and register the periodic tier-2 loops."""
        if self.attached:
            raise SimulationError("controller already attached")
        self._system = system
        for counter in self._health_counters.values():
            counter.reset()
        cfg = self.config
        if self.faults is not None:
            self.faults.bind(clock=system.clock, recorder=self.recorder,
                             telemetry=self.telemetry)
        if self.mode.division_enabled:
            self.divider = WorkloadDivider(cfg, r0=self._initial_ratio)
        else:
            self.divider = None
        if self.mode.scaling_enabled:
            self.scaler = WmaFrequencyScaler(
                system.gpu.spec.core_ladder, system.gpu.spec.mem_ladder, cfg
            )
            self.governor = OndemandGovernor(
                system.cpu.spec.ladder,
                up_threshold=cfg.ondemand_up_threshold,
                down_threshold=cfg.ondemand_down_threshold,
            )
            if self.faults is not None:
                self._nvsmi = FaultyNvidiaSmi(NvidiaSmi(system.gpu), self.faults)
                self._cpustat = FaultyCpuStat(CpuStat(system.cpu), self.faults)
                self._actuator = FaultyGpuActuator(system.gpu, self.faults)
            else:
                self._nvsmi = NvidiaSmi(system.gpu)
                self._cpustat = CpuStat(system.cpu)
                self._actuator = system.gpu
            self._tasks.append(
                system.clock.every(
                    cfg.scaling_interval_s, self._scaling_tick, name="wma-scaling"
                )
            )
            self._tasks.append(
                system.clock.every(
                    cfg.ondemand_interval_s, self._ondemand_tick, name="ondemand"
                )
            )

    def detach(self) -> None:
        """Cancel the periodic loops, unbind, and drop all learned state.

        Detach is a full reset: a controller detached from one system and
        attached to another must not leak learned WMA weights, governor
        state or the division ratio between runs.  ``health`` survives
        until the next attach so callers can read it post-run.
        """
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        self._system = None
        self._nvsmi = None
        self._cpustat = None
        self._actuator = None
        self.scaler = None
        self.governor = None
        self.divider = None
        self._last_gpu_sample = None
        self._last_cpu_sample = None
        self._consecutive_failures = 0
        self._degraded = False

    # -- power-cap ceiling ---------------------------------------------------------

    @property
    def level_ceiling(self) -> tuple[int, int]:
        """Current (core, mem) ladder-ceiling indices; (0, 0) = uncapped."""
        return self._level_ceiling

    def set_level_ceiling(self, core_level: int, mem_level: int) -> None:
        """Cap the GPU at ladder levels no faster than the given indices.

        Index 0 is each ladder's peak, so a ceiling of ``(i, j)`` forbids
        levels above ``i``/``j`` — the enforcement half of a fleet power
        cap, which a coordinator derives from the node's worst-case wall
        power at each level pair.  Scaling decisions (and the watchdog's
        safe state) are clamped to the ceiling; the WMA table itself
        keeps learning over the full ladder, so lifting the cap restores
        full-range control instantly.  If the controller is attached and
        the clocks currently sit above the new ceiling, they are pushed
        down immediately (best effort, like the safe state).

        The ceiling is operator configuration, not learned state: it
        survives :meth:`detach` until explicitly changed.
        """
        if core_level < 0 or mem_level < 0:
            raise SimulationError("ceiling level indices must be >= 0")
        self._level_ceiling = (core_level, mem_level)
        if self.telemetry.enabled:
            self.telemetry.event(
                "cap_ceiling_set",
                t_sim=self._system.now if self._system is not None else 0.0,
                core_level=core_level, mem_level=mem_level,
            )
        system = self._system
        if system is None or not self.mode.scaling_enabled:
            return
        spec = system.gpu.spec
        ci, cj = self._clamped_ceiling(spec)
        f_core_max = spec.core_ladder[ci]
        f_mem_max = spec.mem_ladder[cj]
        if (system.gpu.f_core > f_core_max or system.gpu.f_mem > f_mem_max):
            target = (min(system.gpu.f_core, f_core_max),
                      min(system.gpu.f_mem, f_mem_max))
            try:
                (self._actuator or system.gpu).set_frequencies(*target)
            except ActuationError:
                pass  # retried by the next scaling tick's clamp

    def _clamped_ceiling(self, spec) -> tuple[int, int]:
        """Ceiling indices clipped into this system's ladder ranges."""
        ci, cj = self._level_ceiling
        return (min(ci, len(spec.core_ladder) - 1),
                min(cj, len(spec.mem_ladder) - 1))

    def _apply_ceiling(self, decision):
        """Clamp one scaling decision to the ladder ceiling (if any)."""
        if self._level_ceiling == (0, 0):
            return decision
        assert self._system is not None
        spec = self._system.gpu.spec
        ci, cj = self._clamped_ceiling(spec)
        i = max(decision.core_level, ci)
        j = max(decision.mem_level, cj)
        if (i, j) == (decision.core_level, decision.mem_level):
            return decision
        return replace(decision, core_level=i, mem_level=j,
                       f_core=spec.core_ladder[i], f_mem=spec.mem_ladder[j])

    # -- hardening plumbing --------------------------------------------------------

    def _record_event(self, channel: str, t: float, value: float = 1.0) -> None:
        if self.recorder is not None:
            self.recorder.record(channel, t, value)

    def _count(self, field: str) -> None:
        """Bump one :class:`ControlHealth` counter (the only write path)."""
        self._health_counters[field].inc()

    def _stale_gpu_sample(self, t: float) -> GpuUtilizationSample | None:
        """Last good GPU sample, if still inside the staleness window."""
        last = self._last_gpu_sample
        if last is None:
            return None
        max_age = self.hardening.stale_window_ticks * self.config.scaling_interval_s
        return last if (t - last.t) <= max_age else None

    def _stale_cpu_sample(self, t: float) -> CpuUtilizationSample | None:
        last = self._last_cpu_sample
        if last is None:
            return None
        max_age = self.hardening.stale_window_ticks * self.config.ondemand_interval_s
        return last if (t - last.t) <= max_age else None

    def _apply_gpu_frequencies(self, t: float, f_core: float, f_mem: float) -> bool:
        """Write a frequency pair with retry + verification.

        Returns True once ``peek_clocks()`` confirms the pair landed;
        False (after counting the actuation fault) when every attempt
        failed or was silently swallowed.
        """
        assert self._actuator is not None and self._nvsmi is not None

        telemetry = self.telemetry

        def attempt() -> None:
            self._actuator.set_frequencies(f_core, f_mem)
            if self._nvsmi.peek_clocks() != (f_core, f_mem):
                raise ActuationError("frequency write did not take effect")

        def on_retry(attempt_index: int, backoff_s: float, exc: Exception) -> None:
            self._count("retries")
            self._record_event("ctrl_retry", t, backoff_s)
            telemetry.event("retry", t_sim=t, attempt=attempt_index,
                            backoff_s=backoff_s, error=str(exc))

        try:
            if self._tel_on:
                with telemetry.span("freq_actuation"):
                    call_with_retry(attempt, self.hardening.retry,
                                    on_retry=on_retry)
            else:
                call_with_retry(attempt, self.hardening.retry,
                                on_retry=on_retry)
        except ActuationError:
            self._count("actuation_faults")
            self._record_event("ctrl_actuation_failed", t)
            return False
        return True

    def _note_tick_outcome(self, t: float, clean: bool) -> None:
        """Advance or reset the watchdog after a GPU scaling tick."""
        if clean:
            self._consecutive_failures = 0
            if self._degraded:
                self._degraded = False
                self._count("recoveries")
                self._record_event("ctrl_degraded", t, 0.0)
                self.telemetry.event("ladder_transition", t_sim=t,
                                     state="recovered")
            return
        self._consecutive_failures += 1
        if (
            not self._degraded
            and self._consecutive_failures >= self.hardening.watchdog_threshold
        ):
            self._degraded = True
            self._count("degraded_entries")
            self._record_event("ctrl_degraded", t, 1.0)
            self.telemetry.event("ladder_transition", t_sim=t,
                                 state="degraded",
                                 consecutive_failures=self._consecutive_failures)
        if self._degraded:
            self._enforce_safe_state()

    def _enforce_safe_state(self) -> None:
        """Best-effort push to peak frequencies (the watchdog's safe state).

        Peak is safe in the paper's sense: it can only cost energy, never
        correctness or deadline — the best-performance baseline.  Under a
        power-cap ceiling the safe state is the ceiling pair instead:
        exceeding the node's cap is not "safe" in a coordinated fleet.
        The write may itself fail (e.g. during a throttle episode); it is
        retried on every degraded tick until it lands.
        """
        assert self._system is not None and self._actuator is not None
        spec = self._system.gpu.spec
        ci, cj = self._clamped_ceiling(spec)
        try:
            self._actuator.set_frequencies(spec.core_ladder[ci],
                                           spec.mem_ladder[cj])
        except ActuationError:
            pass

    # -- tier 2 ticks -----------------------------------------------------------------

    def _scaling_tick(self, t: float) -> None:
        if self._tel_on:
            with self.telemetry.span("scaling_tick"):
                self._scaling_tick_body(t)
        else:
            self._scaling_tick_body(t)

    def _scaling_tick_body(self, t: float) -> None:
        assert self._system is not None and self._nvsmi is not None
        assert self.scaler is not None
        telemetry = self.telemetry
        tel_on = self._tel_on
        clean = True
        source = "fresh"
        try:
            if tel_on:
                with telemetry.span("monitor_read", device="gpu"):
                    sample = self._nvsmi.query()
            else:
                sample = self._nvsmi.query()
            self._last_gpu_sample = sample
        except MonitorError:
            clean = False
            self._count("monitor_faults")
            sample = self._stale_gpu_sample(t)
            if sample is None:
                # No usable data: skip the step, keep the previous decision.
                self._count("skipped_ticks")
                self._record_event("ctrl_skip", t)
                self._note_tick_outcome(t, clean=False)
                if self._audit_on:
                    self.audit.note_skip(t, degraded=self._degraded)
                return
            self._count("fallbacks")
            self._record_event("ctrl_fallback", t)
            source = "fallback"
        if tel_on:
            with telemetry.span("wma_update"):
                decision = self.scaler.step(sample.u_core, sample.u_mem)
        else:
            decision = self.scaler.step(sample.u_core, sample.u_mem)
        decision = self._apply_ceiling(decision)
        if tel_on:
            telemetry.event(
                "wma_update", t_sim=t,
                core_level=decision.core_level, mem_level=decision.mem_level,
                f_core=decision.f_core, f_mem=decision.f_mem,
                u_core=sample.u_core, u_mem=sample.u_mem,
                w_max=float(self.scaler.table.weights.max()),
            )
            telemetry.gauge("wma_f_core_hz").set(decision.f_core, t=t)
            telemetry.gauge("wma_f_mem_hz").set(decision.f_mem, t=t)
        actuated = self._apply_gpu_frequencies(t, decision.f_core, decision.f_mem)
        if not actuated:
            clean = False
        power_w: float | None = None
        if tel_on or self.recorder is not None:
            power_w = self._system.system_power()
            telemetry.gauge("system_power_w").set(power_w, t=t)
            telemetry.histogram("system_power_w_dist").observe(power_w)
            if self.recorder is not None:
                self.recorder.record_many(
                    t,
                    gpu_u_core=sample.u_core,
                    gpu_u_mem=sample.u_mem,
                    gpu_f_core=decision.f_core,
                    gpu_f_mem=decision.f_mem,
                    system_power_w=power_w,
                )
        self._note_tick_outcome(t, clean)
        if self._audit_on:
            # After _note_tick_outcome so `degraded` reflects whether the
            # watchdog's safe state overrides this decision.
            self.audit.note_scaling(
                t, sample.u_core, sample.u_mem, decision, source,
                actuated=actuated, degraded=self._degraded,
                weights=self.scaler.table.weights, power_w=power_w,
            )

    def _ondemand_tick(self, t: float) -> None:
        if self._tel_on:
            with self.telemetry.span("ondemand_tick"):
                self._ondemand_tick_body(t)
        else:
            self._ondemand_tick_body(t)

    def _ondemand_tick_body(self, t: float) -> None:
        assert self._system is not None and self._cpustat is not None
        assert self.governor is not None
        tel_on = self._tel_on
        try:
            if tel_on:
                with self.telemetry.span("monitor_read", device="cpu"):
                    sample = self._cpustat.query()
            else:
                sample = self._cpustat.query()
            self._last_cpu_sample = sample
        except MonitorError:
            self._count("monitor_faults")
            sample = self._stale_cpu_sample(t)
            if sample is None:
                self._count("skipped_ticks")
                self._record_event("ctrl_skip", t)
                return
            self._count("fallbacks")
            self._record_event("ctrl_fallback", t)
        decision = self.governor.step(sample.u, self._system.cpu.f)
        if decision.changed:
            self._system.cpu.set_frequency(decision.f_target)
            if tel_on:
                self.telemetry.gauge("cpu_f_hz").set(decision.f_target, t=t)
        if self.recorder is not None:
            self.recorder.record_many(t, cpu_u=sample.u, cpu_f=decision.f_target)

    # -- tier 1 boundary -----------------------------------------------------------------

    @property
    def ratio(self) -> float:
        """Current CPU work share."""
        if self.divider is not None:
            return self.divider.r
        if self._initial_ratio is not None:
            return self._initial_ratio
        return 0.0  # paper default: everything on the GPU

    def on_iteration_end(self, tc: float, tg: float) -> float:
        """Tier-1 boundary: feed (tc, tg), get the next division ratio."""
        if self.divider is None:
            return self.ratio
        now = self._system.now if self._system is not None else -1.0
        if self._degraded:
            # Watchdog safe state: hold the division ratio steady rather
            # than learn from timings measured under faulty control.
            self._count("frozen_divisions")
            if self._system is not None:
                self._record_event("ctrl_division_frozen", now)
                if self.recorder is not None:
                    self.recorder.record_many(
                        now, division_r=self.divider.r, tc=tc, tg=tg
                    )
            if self._audit_on:
                self.audit.note_division(
                    now, tc, tg, r_prev=self.divider.r,
                    r_next=self.divider.r, moved=False,
                    held_by_safeguard=False, frozen=True,
                )
            return self.divider.r
        r_prev = self.divider.r
        decision = self.divider.update(tc, tg)
        if self._audit_on:
            self.audit.note_division(
                now, tc, tg, r_prev=r_prev, r_next=decision.r_next,
                moved=decision.moved,
                held_by_safeguard=decision.held_by_safeguard, frozen=False,
            )
        if self.telemetry.enabled and self._system is not None:
            self.telemetry.event("division_update", t_sim=self._system.now,
                                 r_next=decision.r_next, tc=tc, tg=tg)
            self.telemetry.gauge("division_r").set(decision.r_next,
                                                   t=self._system.now)
        if self.recorder is not None and self._system is not None:
            self.recorder.record_many(
                self._system.now, division_r=decision.r_next, tc=tc, tg=tg
            )
        return decision.r_next
