"""Tier 1: the workload-division algorithm (paper §V-B).

``r`` is the fraction of an iteration's work assigned to the CPU (the GPU
takes ``1 - r``).  After each iteration the divider compares the two
sides' execution times:

- ``tc > tg`` — the CPU was the straggler: move one step of work to the
  GPU (``r -= step``);
- ``tc < tg`` — the GPU was the straggler: move one step to the CPU
  (``r += step``).

Oscillation safeguard
---------------------
Because divisions are quantized to the step size, the optimum may sit
between two grid points and the raw rule would bounce between them
forever, paying the division overhead each time.  Before committing a
move, the divider linearly extrapolates both sides' times to the candidate
division:

    tc' = (r_candidate / r) * tc
    tg' = ((1 - r_candidate) / (1 - r)) * tg

If the predicted comparison *flips* (the side we are unloading would
become the straggler), the move would be reverted next iteration, so the
divider holds the current division instead.  This is the paper's exact
example: at 10/90 with ``tc < tg`` the candidate is 15/85, and if
``tc' > tg'`` the division stays at 10/90.

Boundary behaviour: at ``r = 0`` the CPU has no work (``tc = 0``), linear
extrapolation is undefined, and the safeguard is skipped — the divider
simply probes one step toward the CPU when the GPU is the straggler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import GreenGpuConfig
from repro.errors import PartitionError
from repro.units import clamp

#: Below this share a side's measured time carries no per-unit signal.
_MIN_SIGNAL_RATIO = 1e-9


@dataclass(frozen=True, slots=True)
class DivisionDecision:
    """Outcome of one division update."""

    r_next: float
    moved: bool
    held_by_safeguard: bool
    tc: float
    tg: float


class WorkloadDivider:
    """Stateful tier-1 controller for the CPU work share ``r``."""

    def __init__(self, config: GreenGpuConfig | None = None, r0: float | None = None):
        self.config = config or GreenGpuConfig()
        r_init = self.config.initial_cpu_ratio if r0 is None else float(r0)
        if not self.config.min_cpu_ratio <= r_init <= self.config.max_cpu_ratio:
            raise PartitionError(
                f"initial ratio {r_init} outside "
                f"[{self.config.min_cpu_ratio}, {self.config.max_cpu_ratio}]"
            )
        self.r = r_init
        self.iterations = 0
        self.safeguard_holds = 0
        self.history: list[DivisionDecision] = []

    def _candidate(self, tc: float, tg: float) -> float:
        cfg = self.config
        if tc > tg:
            return clamp(self.r - cfg.division_step, cfg.min_cpu_ratio, cfg.max_cpu_ratio)
        if tc < tg:
            return clamp(self.r + cfg.division_step, cfg.min_cpu_ratio, cfg.max_cpu_ratio)
        return self.r

    def _would_oscillate(self, candidate: float, tc: float, tg: float) -> bool:
        """Linear extrapolation check from the module docstring.

        Extrapolation needs a measured per-unit time for the side gaining
        work, so the check is skipped only when the *current* ratio gives
        that side zero work (probing up from r = 0, or down from r = 1).
        A candidate at a boundary is fine: its predicted time is zero.
        """
        r = self.r
        if tc < tg:
            # Moving work toward the CPU; needs tc's per-unit rate.  A
            # vanishing share carries no usable estimate (and dividing by
            # it would overflow), so probe unconditionally.
            if r <= _MIN_SIGNAL_RATIO:
                return False
            tc_pred = (candidate / r) * tc
            tg_pred = ((1.0 - candidate) / (1.0 - r)) * tg
            # Oscillation if the CPU would become the straggler.
            return tc_pred > tg_pred
        # Moving work toward the GPU; needs tg's per-unit rate.
        if 1.0 - r <= _MIN_SIGNAL_RATIO:
            return False
        tc_pred = (candidate / r) * tc if r > _MIN_SIGNAL_RATIO else 0.0
        tg_pred = ((1.0 - candidate) / (1.0 - r)) * tg
        return tg_pred > tc_pred

    def update(self, tc: float, tg: float) -> DivisionDecision:
        """Consume one iteration's (tc, tg) and decide the next division."""
        if tc < 0.0 or tg < 0.0:
            raise PartitionError("execution times must be non-negative")
        self.iterations += 1
        candidate = self._candidate(tc, tg)
        held = False
        if candidate != self.r and self.config.oscillation_safeguard:
            if self._would_oscillate(candidate, tc, tg):
                candidate = self.r
                held = True
                self.safeguard_holds += 1
        moved = candidate != self.r
        self.r = candidate
        decision = DivisionDecision(
            r_next=self.r, moved=moved, held_by_safeguard=held, tc=tc, tg=tg
        )
        self.history.append(decision)
        return decision

    @property
    def converged(self) -> bool:
        """True once the divider has settled (held or stationary twice)."""
        if len(self.history) < 2:
            return False
        last_two = self.history[-2:]
        return all(not d.moved for d in last_two)
