"""Table-I loss functions of the GreenGPU frequency-scaling algorithm.

For each frequency level ``i`` of a component (GPU cores or GPU memory),
``umean[i]`` is the utilization that level is "most suitable" for: the
peak frequency suits 100 % utilization, the lowest suits 0 %, and the rest
map linearly (paper §V-A, following Dhiman & Rosing's CPU formulation).

Given the observed utilization ``u`` in the last interval:

====================  =====================  ========================
condition             energy loss l_e        performance loss l_p
====================  =====================  ========================
``u > umean[i]``      0                      ``u - umean[i]``
``u < umean[i]``      ``umean[i] - u``       0
====================  =====================  ========================

and the per-level loss blends the two with the component's alpha:

    l_i = alpha * l_e + (1 - alpha) * l_p                      (Eqs. 1-2)

A *small* alpha weights performance (the paper uses 0.15 for cores and
0.02 for memory).  Core and memory losses combine into the pair loss with

    TotalLoss[i, j] = phi * l_core[i] + (1 - phi) * l_mem[j]   (Eq. 3)

All losses are in [0, 1] by construction, which Eq. 4's multiplicative
update relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def umean_vector(n_levels: int) -> np.ndarray:
    """The linear utilization->level map for ``n_levels`` frequencies.

    Index 0 is the peak level (umean = 1.0) and index ``n_levels - 1`` is
    the floor (umean = 0.0), matching
    :meth:`repro.sim.frequency.FrequencyLadder.umean` for equally spaced
    ladders.  A single-level ladder gets umean = [1.0].
    """
    if n_levels < 1:
        raise ConfigError("need at least one frequency level")
    if n_levels == 1:
        return np.ones(1)
    return np.linspace(1.0, 0.0, n_levels)


def component_loss(u: float, umean: float, alpha: float) -> float:
    """Scalar Table-I loss for one level of one component."""
    if not 0.0 <= u <= 1.0:
        raise ConfigError(f"utilization must be in [0, 1], got {u}")
    if not 0.0 <= umean <= 1.0:
        raise ConfigError(f"umean must be in [0, 1], got {umean}")
    if not 0.0 <= alpha <= 1.0:
        raise ConfigError(f"alpha must be in [0, 1], got {alpha}")
    if u > umean:
        return (1.0 - alpha) * (u - umean)
    return alpha * (umean - u)


def loss_vector(u: float, umeans: np.ndarray, alpha: float) -> np.ndarray:
    """Vectorized Table-I loss across all levels of one component.

    Equivalent to ``[component_loss(u, m, alpha) for m in umeans]``.
    """
    if not 0.0 <= u <= 1.0:
        raise ConfigError(f"utilization must be in [0, 1], got {u}")
    if not 0.0 <= alpha <= 1.0:
        raise ConfigError(f"alpha must be in [0, 1], got {alpha}")
    diff = u - np.asarray(umeans, dtype=float)
    perf_loss = np.maximum(diff, 0.0)      # u above umean: too slow a level
    energy_loss = np.maximum(-diff, 0.0)   # u below umean: level too fast
    return alpha * energy_loss + (1.0 - alpha) * perf_loss


def total_loss_matrix(
    core_loss: np.ndarray, mem_loss: np.ndarray, phi: float
) -> np.ndarray:
    """Eq. 3: blend per-component losses into the N x M pair-loss matrix."""
    if not 0.0 <= phi <= 1.0:
        raise ConfigError(f"phi must be in [0, 1], got {phi}")
    core_loss = np.asarray(core_loss, dtype=float)
    mem_loss = np.asarray(mem_loss, dtype=float)
    if core_loss.ndim != 1 or mem_loss.ndim != 1:
        raise ConfigError("component losses must be 1-D")
    return phi * core_loss[:, None] + (1.0 - phi) * mem_loss[None, :]
