"""The Linux `ondemand` CPU frequency governor (paper §IV).

GreenGPU does not design a new CPU DVFS policy; it adopts the stock
linux-2.6.32 `ondemand` governor, which the paper describes as:

    "If CPU utilization rises above a upper utilization threshold value,
    the ondemand governor increases the CPU frequency to the highest
    available frequency.  When CPU utilization falls below a low
    utilization threshold, the governor sets the CPU to run at the next
    lowest frequency."

This module implements exactly that decision rule over a P-state ladder.
Utilization between the two thresholds keeps the current P-state.

The paper's key observation about this governor (§VII-A) is reproduced by
construction: because the benchmarks' synchronized GPU communication spins
the CPU at 100 % utilization, `ondemand` keeps the CPU at the peak P-state
even when it is doing no useful work — which is why Fig. 6c has to
*emulate* the CPU-throttling savings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.frequency import FrequencyLadder


@dataclass(frozen=True, slots=True)
class GovernorDecision:
    """Outcome of one governor tick."""

    f_target: float
    changed: bool
    reason: str


class OndemandGovernor:
    """Stateful `ondemand` reimplementation over a frequency ladder."""

    def __init__(
        self,
        ladder: FrequencyLadder,
        up_threshold: float = 0.80,
        down_threshold: float = 0.30,
    ):
        if not 0.0 < up_threshold <= 1.0:
            raise ConfigError("up_threshold must be in (0, 1]")
        if not 0.0 <= down_threshold < up_threshold:
            raise ConfigError("down_threshold must be in [0, up_threshold)")
        self.ladder = ladder
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.ticks = 0
        self.transitions = 0

    def step(self, u: float, f_current: float) -> GovernorDecision:
        """One sampling tick: map utilization to the next P-state."""
        if not 0.0 <= u <= 1.0:
            raise ConfigError(f"utilization must be in [0, 1], got {u}")
        self.ticks += 1
        if u > self.up_threshold:
            target = self.ladder.peak
            reason = "above up_threshold -> peak"
        elif u < self.down_threshold:
            target = self.ladder.step_down(f_current)
            reason = "below down_threshold -> step down"
        else:
            target = f_current
            reason = "within band -> hold"
        changed = target != f_current
        if changed:
            self.transitions += 1
        return GovernorDecision(f_target=target, changed=changed, reason=reason)
