"""Execution policies: GreenGPU and every baseline the paper compares.

A :class:`Policy` is what an experiment hands to the runtime: it fixes the
initial device frequencies, the initial (or pinned) division ratio, and
optionally constructs a live :class:`GreenGpuController`.

The paper's comparison set (§VII):

- **Rodinia default** — all work on the GPU, all frequencies at peak
  ("The default runtime configuration of Rodinia is that all the workloads
  are allocated to the GPU and all the frequencies are at their peak
  levels").  This is the baseline of the 21.04 % headline number.
- **Best-performance** — both GPU domains pinned at peak (576/900 MHz);
  the baseline for the tier-2 evaluation (Fig. 6).
- **Frequency-scaling only** — tier 2 active, division pinned.
- **Division only** — tier 1 active, frequencies pinned at peak.
- **GreenGPU** — both tiers active (the holistic solution).
- **Static** — arbitrary pinned frequency levels and ratio; the building
  block of the Fig. 1 / Fig. 2 sweeps and the oracle search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import GreenGpuConfig
from repro.core.controller import GreenGpuController, TierMode
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector, FaultPlan
from repro.sim.platform import HeteroSystem
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class Policy:
    """Base policy: pinned frequencies and ratio, no live control.

    ``gpu_core_level`` / ``gpu_mem_level`` / ``cpu_level`` are ladder
    indices (0 = peak); ``None`` leaves the device's current setting.
    ``fault_plan`` optionally injects seeded monitor/actuator/device
    faults into the run (see :mod:`repro.faults`); the controller built
    by :meth:`make_controller` is hardened against them.
    """

    name: str = "static"
    mode: TierMode = TierMode.NONE
    ratio: float = 0.0
    gpu_core_level: int | None = 0
    gpu_mem_level: int | None = 0
    cpu_level: int | None = 0
    config: GreenGpuConfig | None = None
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ConfigError(f"ratio must be in [0, 1], got {self.ratio}")

    def apply_initial_state(self, system: HeteroSystem) -> None:
        """Pin the requested initial frequencies on the testbed."""
        core = (
            system.gpu.core_level if self.gpu_core_level is None else self.gpu_core_level
        )
        mem = system.gpu.mem_level if self.gpu_mem_level is None else self.gpu_mem_level
        system.gpu.set_levels(core, mem)
        if self.cpu_level is not None:
            system.cpu.set_frequency(system.cpu.spec.ladder[self.cpu_level])

    def make_controller(
        self,
        recorder: TraceRecorder | None = None,
        telemetry=None,
        audit=None,
    ) -> GreenGpuController:
        """Build the live controller for this policy (NONE mode = inert).

        A fresh :class:`FaultInjector` is built per controller so repeated
        runs of one policy replay the identical seeded fault stream.
        ``audit`` optionally attaches a decision
        :class:`~repro.telemetry.audit.AuditTrail`.
        """
        faults = FaultInjector(self.fault_plan) if self.fault_plan is not None else None
        return GreenGpuController(
            mode=self.mode,
            config=self.config,
            initial_ratio=self.ratio,
            recorder=recorder,
            faults=faults,
            telemetry=telemetry,
            audit=audit,
        )

    def with_faults(self, plan: FaultPlan | None) -> "Policy":
        """Copy of this policy with ``fault_plan`` replaced."""
        from dataclasses import replace

        return replace(self, fault_plan=plan)


def StaticPolicy(
    gpu_core_level: int,
    gpu_mem_level: int,
    ratio: float = 0.0,
    cpu_level: int = 0,
    name: str | None = None,
) -> Policy:
    """Pinned operating point; the Fig. 1 / Fig. 2 sweep building block."""
    return Policy(
        name=name or f"static(c{gpu_core_level},m{gpu_mem_level},r{ratio:.2f})",
        mode=TierMode.NONE,
        ratio=ratio,
        gpu_core_level=gpu_core_level,
        gpu_mem_level=gpu_mem_level,
        cpu_level=cpu_level,
    )


def RodiniaDefaultPolicy() -> Policy:
    """All work on the GPU, every frequency at peak (§VII-C baseline)."""
    return Policy(
        name="rodinia-default",
        mode=TierMode.NONE,
        ratio=0.0,
        gpu_core_level=0,
        gpu_mem_level=0,
        cpu_level=0,
    )


def BestPerformancePolicy(ratio: float = 0.0) -> Policy:
    """GPU domains pinned at peak; the Fig. 5/6 baseline."""
    return Policy(
        name="best-performance",
        mode=TierMode.NONE,
        ratio=ratio,
        gpu_core_level=0,
        gpu_mem_level=0,
        cpu_level=0,
    )


def FrequencyScalingOnlyPolicy(
    ratio: float = 0.0, config: GreenGpuConfig | None = None
) -> Policy:
    """Tier 2 only.  The GPU starts at its lowest frequencies — "the
    default case for a GPU" (paper Fig. 5 discussion) — and the WMA scaler
    ramps it up from there."""
    n_core = None  # resolved at apply time via explicit floor levels below
    del n_core
    return Policy(
        name="frequency-scaling-only",
        mode=TierMode.SCALING_ONLY,
        ratio=ratio,
        gpu_core_level=-1,   # floor (python negative indexing on the ladder)
        gpu_mem_level=-1,
        cpu_level=0,
        config=config,
    )


def DivisionOnlyPolicy(
    initial_ratio: float | None = None, config: GreenGpuConfig | None = None
) -> Policy:
    """Tier 1 only; frequencies pinned at peak."""
    cfg = config or GreenGpuConfig()
    r0 = cfg.initial_cpu_ratio if initial_ratio is None else initial_ratio
    return Policy(
        name="division-only",
        mode=TierMode.DIVISION_ONLY,
        ratio=r0,
        gpu_core_level=0,
        gpu_mem_level=0,
        cpu_level=0,
        config=cfg,
    )


def GreenGpuPolicy(
    initial_ratio: float | None = None, config: GreenGpuConfig | None = None
) -> Policy:
    """The holistic two-tier solution (division + WMA + ondemand)."""
    cfg = config or GreenGpuConfig()
    r0 = cfg.initial_cpu_ratio if initial_ratio is None else initial_ratio
    return Policy(
        name="greengpu",
        mode=TierMode.HOLISTIC,
        ratio=r0,
        gpu_core_level=-1,
        gpu_mem_level=-1,
        cpu_level=0,
        config=cfg,
    )
