"""The N x M core-memory frequency-pair weight table (paper §V-A, Eq. 4).

Each entry holds the weight of one (core level, memory level) pair.  After
every scaling interval the whole table is multiplicatively discounted by
its pair loss:

    weight[i][j] <- weight[i][j] * (1 - (1 - beta) * TotalLoss[i][j])

and the argmax pair is enforced for the next interval.

Two implementation notes:

- Algorithm 1's prose initializes the weights "to an equal value (e.g. 0)",
  but a multiplicative update cannot ever leave zero; standard WMA
  (Littlestone & Warmuth) initializes to 1, so we do too.  Any positive
  equal value is equivalent — argmax is scale-invariant.
- Repeated multiplication by values < 1 underflows after enough intervals,
  so the table renormalizes by its maximum whenever that maximum drops
  below a threshold.  Renormalization never changes the argmax.  (The
  paper's sketched 8-bit hardware table has the same property: only the
  relative order matters.)

Ties in the argmax resolve to the *fastest* pair (lowest indices), which
biases toward performance — consistent with the paper's stated goal of
"energy savings with only negligible performance degradation".
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

_RENORM_THRESHOLD = 1e-30


class WeightTable:
    """Mutable N x M weight table with the Eq. 4 multiplicative update."""

    def __init__(self, n_core_levels: int, n_mem_levels: int):
        if n_core_levels < 1 or n_mem_levels < 1:
            raise ConfigError("need at least one level per component")
        self._weights = np.ones((n_core_levels, n_mem_levels))
        self.updates = 0
        self.renormalizations = 0

    @property
    def shape(self) -> tuple[int, int]:
        return self._weights.shape  # type: ignore[return-value]

    @property
    def weights(self) -> np.ndarray:
        """Read-only view of the current weights."""
        view = self._weights.view()
        view.flags.writeable = False
        return view

    def update(self, total_loss: np.ndarray, beta: float) -> None:
        """Apply Eq. 4 in place for one interval's loss matrix."""
        if not 0.0 < beta < 1.0:
            raise ConfigError(f"beta must be in (0, 1), got {beta}")
        loss = np.asarray(total_loss, dtype=float)
        if loss.shape != self._weights.shape:
            raise ConfigError(
                f"loss shape {loss.shape} != table shape {self._weights.shape}"
            )
        if np.any(loss < -1e-12) or np.any(loss > 1.0 + 1e-12):
            raise ConfigError("losses must be in [0, 1]")
        self._weights *= 1.0 - (1.0 - beta) * np.clip(loss, 0.0, 1.0)
        self.updates += 1
        peak = self._weights.max()
        if peak < _RENORM_THRESHOLD:
            if peak <= 0.0:
                # Total collapse is impossible while beta > 0 keeps every
                # factor >= beta > 0; guard against float underflow anyway.
                self._weights[:] = 1.0
            else:
                self._weights /= peak
            self.renormalizations += 1

    def best_pair(self) -> tuple[int, int]:
        """Indices of the highest-weight pair (ties -> fastest pair)."""
        flat = int(np.argmax(self._weights))
        return np.unravel_index(flat, self._weights.shape)  # type: ignore[return-value]

    def reset(self) -> None:
        """Return to the uniform initial state."""
        self._weights[:] = 1.0
        self.updates = 0
        self.renormalizations = 0
