"""Algorithm 1: the coordinated online-learning GPU frequency scaler.

Per scaling interval (3 s on the paper's testbed):

1. read the GPU core and memory utilizations ``u_c``, ``u_m`` averaged
   over the previous interval;
2. compute each component's per-level Table-I loss (Eqs. 1-2) against the
   linear umean map;
3. blend them into the N x M pair-loss matrix (Eq. 3) and discount the
   weight table (Eq. 4);
4. enforce the argmax (core, memory) frequency pair for the next interval.

Because every pair's loss is evaluated every interval (not just the pair
currently enforced), the scaler can jump straight to the best pair after a
utilization change — the behaviour the paper highlights in Fig. 5a ("it
can adjust the GPU core and memory frequencies directly to the best
levels").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import GreenGpuConfig
from repro.core.loss import loss_vector, total_loss_matrix
from repro.core.weights import WeightTable
from repro.sim.frequency import FrequencyLadder


@dataclass(frozen=True, slots=True)
class ScalingDecision:
    """Outcome of one WMA interval."""

    core_level: int
    mem_level: int
    f_core: float
    f_mem: float
    core_loss: np.ndarray
    mem_loss: np.ndarray


def best_and_runner_up(
    weights: np.ndarray,
) -> tuple[tuple[int, int], tuple[int, int], float]:
    """Argmax pair, runner-up pair, and their relative weight margin.

    The margin is ``(w_best - w_runner_up) / w_best`` in ``[0, 1]`` — 0
    means a tie (the decision hangs by the argmax tie-break), values near
    1 mean the table is certain.  Both argmaxes use the same flattened
    first-occurrence rule as :meth:`WeightTable.best_pair`, so ties
    resolve to the fastest pair here too.  This is the audit trail's
    "how close was the call" derivation (:mod:`repro.telemetry.audit`);
    it runs at render time, never on the hot control path.
    """
    matrix = np.asarray(weights, dtype=float)
    flat = matrix.ravel()
    if flat.size == 1:
        pair = (0, 0)
        return pair, pair, 0.0
    best = int(np.argmax(flat))
    masked = flat.copy()
    masked[best] = -np.inf
    second = int(np.argmax(masked))
    w_best, w_second = float(flat[best]), float(flat[second])
    margin = (w_best - w_second) / w_best if w_best > 0.0 else 0.0
    best_pair = np.unravel_index(best, matrix.shape)
    second_pair = np.unravel_index(second, matrix.shape)
    return (
        (int(best_pair[0]), int(best_pair[1])),
        (int(second_pair[0]), int(second_pair[1])),
        float(margin),
    )


class WmaFrequencyScaler:
    """Weighted-majority frequency controller for GPU cores + memory.

    The umean maps default to the ladders' own normalized positions, which
    coincide with the paper's linear map for the equally spaced ladders of
    the testbed, and remain correct for unevenly spaced ladders.
    """

    def __init__(
        self,
        core_ladder: FrequencyLadder,
        mem_ladder: FrequencyLadder,
        config: GreenGpuConfig | None = None,
    ):
        self.config = config or GreenGpuConfig()
        self.core_ladder = core_ladder
        self.mem_ladder = mem_ladder
        self._umean_core = np.array(
            [core_ladder.umean(i) for i in range(len(core_ladder))]
        )
        self._umean_mem = np.array(
            [mem_ladder.umean(j) for j in range(len(mem_ladder))]
        )
        self.table = WeightTable(len(core_ladder), len(mem_ladder))
        self.decisions: int = 0

    @property
    def umean_core(self) -> np.ndarray:
        return self._umean_core.copy()

    @property
    def umean_mem(self) -> np.ndarray:
        return self._umean_mem.copy()

    def step(self, u_core: float, u_mem: float) -> ScalingDecision:
        """Run one interval of Algorithm 1 and return the chosen pair."""
        cfg = self.config
        lc = loss_vector(u_core, self._umean_core, cfg.alpha_core)
        lm = loss_vector(u_mem, self._umean_mem, cfg.alpha_mem)
        total = total_loss_matrix(lc, lm, cfg.phi)
        self.table.update(total, cfg.beta)
        i, j = self.table.best_pair()
        self.decisions += 1
        return ScalingDecision(
            core_level=i,
            mem_level=j,
            f_core=self.core_ladder[i],
            f_mem=self.mem_ladder[j],
            core_loss=lc,
            mem_loss=lm,
        )

    def reset(self) -> None:
        """Forget all learned weights (start of a new workload)."""
        self.table.reset()
        self.decisions = 0

    # -- introspection used by tests and the design-ablation benches --------------

    def uniform_choice(self, u_core: float, u_mem: float) -> tuple[int, int]:
        """The pair a memoryless (beta-free) controller would choose now.

        Minimizes the one-shot pair loss; useful as a reference point when
        testing that the weighted history converges to the same pair under
        stationary utilizations.
        """
        cfg = self.config
        lc = loss_vector(u_core, self._umean_core, cfg.alpha_core)
        lm = loss_vector(u_mem, self._umean_mem, cfg.alpha_mem)
        total = total_loss_matrix(lc, lm, cfg.phi)
        flat = int(np.argmin(total))
        return np.unravel_index(flat, total.shape)  # type: ignore[return-value]
