"""Exception hierarchy for the GreenGPU reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate configuration problems from simulation
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


class SimulationError(ReproError):
    """The simulated testbed was driven into an invalid state."""


class FrequencyError(ConfigError):
    """A frequency value or level index is not in the device's ladder."""


class WorkloadError(ReproError):
    """A workload was constructed or executed with invalid parameters."""


class PartitionError(ReproError):
    """A work partition request is infeasible (e.g. ratio out of [0, 1])."""


class MeterError(SimulationError):
    """A power meter was queried outside its valid sampling window."""


class MonitorError(SimulationError):
    """A utilization monitor failed to produce a reading.

    Raised for empty sampling windows and for injected monitor faults
    (query timeouts, dropped samples).  The hardened controller treats
    these as transient: it falls back to the last good sample or skips
    the tick instead of crashing the run.
    """


class ActuationError(SimulationError):
    """A frequency write was rejected or did not take effect.

    Raised by the fault-injecting actuator wrappers and by the
    controller's post-write verification when the device clocks do not
    match the commanded pair.
    """


class ConvergenceError(ReproError):
    """An iterative search or controller failed to converge."""


class SerializationError(ReproError):
    """A persisted file (result JSON, journal, artifact) is corrupt.

    Raised instead of a bare ``json.JSONDecodeError`` so callers can
    tell "this run left a truncated/garbled file behind" apart from a
    programming error, and so the message always carries the offending
    path.
    """


class HarnessError(ReproError):
    """The supervised job harness was configured or driven incorrectly."""


class ServiceError(ReproError):
    """The simulation service was configured or driven incorrectly."""
