"""Paper-artifact reproduction experiments.

One module per table/figure of the paper's evaluation (see DESIGN.md §3
for the index).  Every module exposes ``run(...)`` returning structured
results and ``main()`` printing the paper-style rows; all are runnable as
``python -m repro.experiments.<name>``.

Durations: the paper's runs take minutes of wall time on real hardware.
Simulated time is cheap but not free, so every experiment accepts a
``time_scale`` that shrinks iteration lengths and the controller periods
*together* (preserving the tier-decoupling ratio).  ``time_scale=1.0``
reproduces the paper's full-length runs; the benchmark harness uses
smaller scales.
"""

from repro.experiments import (
    common,
    fig1,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    headline,
    sensitivity,
    suite,
    table2,
)

__all__ = [
    "common",
    "fig1",
    "fig2",
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "headline",
    "sensitivity",
    "suite",
]
