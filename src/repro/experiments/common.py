"""Shared plumbing for the paper-artifact experiments.

Time scaling: one knob shrinks the workload iteration length and every
controller period by the same factor, so the control dynamics (number of
WMA intervals per iteration, ondemand ticks per interval, repartition
overhead relative to iteration length) are preserved while wall-clock
cost drops.
"""

from __future__ import annotations

from repro.core.config import GreenGpuConfig
from repro.errors import ConfigError
from repro.runtime.executor import ExecutorOptions
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import get_profile, make_workload


def scaled_config(time_scale: float = 1.0, **overrides: object) -> GreenGpuConfig:
    """GreenGPU config with every period scaled by ``time_scale``."""
    if time_scale <= 0.0:
        raise ConfigError("time_scale must be positive")
    cfg = GreenGpuConfig(
        scaling_interval_s=3.0 * time_scale,
        ondemand_interval_s=0.1 * time_scale,
    )
    if overrides:
        cfg = cfg.with_(**overrides)
    return cfg


def scaled_options(time_scale: float = 1.0) -> ExecutorOptions:
    """Executor options with the repartition overhead scaled to match."""
    if time_scale <= 0.0:
        raise ConfigError("time_scale must be positive")
    return ExecutorOptions(repartition_overhead_s=0.5 * time_scale)


def scaled_workload(
    name: str, time_scale: float = 1.0, **overrides: object
) -> DemandModelWorkload:
    """Table II workload with its iteration duration scaled."""
    if time_scale <= 0.0:
        raise ConfigError("time_scale must be positive")
    profile = get_profile(name)
    seconds = profile.gpu_seconds_per_iteration * time_scale
    return make_workload(name, gpu_seconds_per_iteration=seconds, **overrides)
