"""Fig. 1: frequency-scaling case study on GPU cores and memory.

Reproduces all four panels: normalized execution time and relative energy
as one domain's frequency sweeps its ladder while the other stays at
peak, for core-bounded *nbody* and memory-bounded *streamcluster*.

Expected shapes (paper §III-A):

- nbody, memory sweep (1a/1b): time nearly flat; energy *decreases* to an
  interior minimum (the under-utilized memory can be throttled nearly for
  free) before the memory domain becomes the bottleneck.
- streamcluster, memory sweep: both time and energy increase — memory is
  the bottleneck.
- nbody, core sweep (1c/1d): both increase — cores are the bottleneck.
- streamcluster, core sweep: energy dips to a minimum around 410 MHz,
  then both degrade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.policies import StaticPolicy
from repro.errors import ConfigError
from repro.experiments.common import scaled_workload
from repro.runtime.executor import run_workload
from repro.sim.calibration import geforce_8800_gtx_spec
from repro.units import to_mhz

WORKLOADS = ("nbody", "streamcluster")
DOMAINS = ("mem", "core")


@dataclass(frozen=True)
class Fig1Point:
    """One sweep point: a frequency level and its normalized metrics."""

    level: int
    f_mhz: float
    normalized_time: float
    relative_energy: float


def run(
    workload_name: str,
    domain: str,
    n_iterations: int = 2,
    time_scale: float = 0.4,
) -> list[Fig1Point]:
    """Sweep one domain's ladder for one workload (peak = index 0)."""
    if workload_name not in WORKLOADS:
        raise ConfigError(f"fig1 uses {WORKLOADS}, got {workload_name!r}")
    if domain not in DOMAINS:
        raise ConfigError(f"domain must be one of {DOMAINS}, got {domain!r}")
    gpu = geforce_8800_gtx_spec()
    ladder = gpu.mem_ladder if domain == "mem" else gpu.core_ladder
    workload = scaled_workload(workload_name, time_scale)

    points: list[Fig1Point] = []
    baseline = None
    for level in range(len(ladder)):
        core_level, mem_level = (0, level) if domain == "mem" else (level, 0)
        result = run_workload(
            workload, StaticPolicy(core_level, mem_level), n_iterations=n_iterations
        )
        if baseline is None:
            baseline = result
        points.append(
            Fig1Point(
                level=level,
                f_mhz=to_mhz(ladder[level]),
                normalized_time=result.total_s / baseline.total_s,
                relative_energy=result.gpu_energy_j / baseline.gpu_energy_j,
            )
        )
    return points


def run_all(
    n_iterations: int = 2, time_scale: float = 0.4
) -> dict[tuple[str, str], list[Fig1Point]]:
    """All four panels: {(workload, domain): sweep points}."""
    return {
        (w, d): run(w, d, n_iterations=n_iterations, time_scale=time_scale)
        for w in WORKLOADS
        for d in DOMAINS
    }


def main() -> None:
    panels = run_all()
    for (workload, domain), points in panels.items():
        rows = [
            (p.level, f"{p.f_mhz:.1f}", p.normalized_time, p.relative_energy)
            for p in points
        ]
        print(
            format_table(
                ["level", f"f_{domain} (MHz)", "normalized time", "relative energy"],
                rows,
                title=f"\nFig. 1 — {workload}, {domain}-frequency sweep (other domain at peak)",
            )
        )


if __name__ == "__main__":
    main()
