"""Fig. 2: energy vs. workload-division ratio for *kmeans*.

Sweeps the CPU work share from 0 % to 90 % at peak frequencies and
measures whole-system wall energy.  Expected shape (paper §III-B): energy
falls from r = 0 to an interior minimum near 10-15 % CPU — "the
cooperation of the CPU and GPU parts can be more energy efficient than
the GPU part taking all the work exclusively" — then rises as the slower
CPU increasingly becomes the straggler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.static_division import DivisionSweepPoint, sweep_divisions
from repro.experiments.common import scaled_options, scaled_workload


@dataclass(frozen=True)
class Fig2Result:
    """The sweep plus its minimum."""

    points: list[DivisionSweepPoint]
    optimal_r: float
    normalized_energy: np.ndarray  # relative to r = 0 (all-GPU)

    @property
    def has_interior_minimum(self) -> bool:
        """True when some r > 0 beats the all-GPU configuration."""
        return self.optimal_r > 0.0 and bool(self.normalized_energy.min() < 1.0)


def run(
    workload_name: str = "kmeans",
    ratios: list[float] | None = None,
    n_iterations: int = 3,
    time_scale: float = 0.2,
) -> Fig2Result:
    """Run the static division sweep and locate the energy minimum."""
    workload = scaled_workload(workload_name, time_scale)
    if ratios is None:
        ratios = [round(0.05 * i, 2) for i in range(19)]  # 0.00 .. 0.90
    points = sweep_divisions(
        workload, ratios, n_iterations=n_iterations, options=scaled_options(time_scale)
    )
    energies = np.array([p.energy_j for p in points])
    normalized = energies / energies[0]
    optimal_r = points[int(np.argmin(energies))].r
    return Fig2Result(points=points, optimal_r=optimal_r, normalized_energy=normalized)


def main() -> None:
    result = run()
    rows = [
        (f"{p.r:.2f}", p.energy_j / 1e3, float(norm), p.time_s)
        for p, norm in zip(result.points, result.normalized_energy)
    ]
    print(
        format_table(
            ["CPU share r", "energy (kJ)", "normalized", "time (s)"],
            rows,
            title="Fig. 2 — kmeans energy vs. static workload division",
        )
    )
    print(f"\nenergy-minimum division: {result.optimal_r:.2f} CPU "
          f"(paper: ~0.10; interior minimum: {result.has_interior_minimum})")


if __name__ == "__main__":
    main()
