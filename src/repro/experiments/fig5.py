"""Fig. 5: runtime trace of the GPU frequency-scaling tier (*streamcluster*).

Reproduces the paper's trace experiment: the GPU starts at its lowest
core/memory frequencies (the idle default), the workload begins a few
seconds in, and the WMA scaler — sampling every 3 s — ramps the
frequencies to match the observed utilizations.  Expected behaviour
(paper §VII-A):

- the core frequency rises at the first scaling interval after the
  utilization ramp (paper: the 9th second for a ramp at the 6th);
- the memory frequency converges *below* peak (paper: 820 MHz vs the
  900 MHz peak), which is where the energy saving comes from;
- average power stays below the best-performance baseline at similar
  execution time (Fig. 5c).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.policies import BestPerformancePolicy, FrequencyScalingOnlyPolicy
from repro.experiments.common import scaled_config, scaled_workload
from repro.runtime.executor import run_workload
from repro.runtime.metrics import RunResult
from repro.sim.platform import make_testbed
from repro.sim.trace import Trace
from repro.units import to_mhz


@dataclass(frozen=True)
class Fig5Result:
    """Scaling-run traces plus the best-performance comparison."""

    scaled: RunResult
    baseline: RunResult
    idle_lead_s: float

    @property
    def core_freq_trace(self) -> Trace:
        return self.scaled.traces["gpu_f_core"]

    @property
    def mem_freq_trace(self) -> Trace:
        return self.scaled.traces["gpu_f_mem"]

    @property
    def core_util_trace(self) -> Trace:
        return self.scaled.traces["gpu_u_core"]

    @property
    def mem_util_trace(self) -> Trace:
        return self.scaled.traces["gpu_u_mem"]

    @property
    def power_trace(self) -> Trace:
        return self.scaled.traces["system_power_w"]

    @property
    def converged_mem_mhz(self) -> float:
        return to_mhz(self.mem_freq_trace.final)

    @property
    def converged_core_mhz(self) -> float:
        return to_mhz(self.core_freq_trace.final)


def run(
    workload_name: str = "streamcluster",
    n_iterations: int = 4,
    time_scale: float = 1.0,
    idle_lead_s: float | None = None,
) -> Fig5Result:
    """Run the traced scaling experiment and its baseline."""
    workload = scaled_workload(workload_name, time_scale)
    config = scaled_config(time_scale)
    idle_lead = 2.0 * config.scaling_interval_s if idle_lead_s is None else idle_lead_s

    # Scaled run: GPU at lowest clocks, idle lead-in under the controller
    # (it observes ~zero utilization and keeps the clocks low), then the
    # workload — matching the paper's trace setup.
    scaled = run_workload(
        workload,
        FrequencyScalingOnlyPolicy(config=config),
        n_iterations=n_iterations,
        system=make_testbed(),
        warmup_s=idle_lead,
    )
    baseline = run_workload(
        workload, BestPerformancePolicy(), n_iterations=n_iterations
    )
    return Fig5Result(scaled=scaled, baseline=baseline, idle_lead_s=idle_lead)


def main() -> None:
    from repro.analysis.ascii_plot import line_chart

    result = run(time_scale=0.5)
    t = result.core_freq_trace.times
    rows = [
        (
            float(ti),
            float(result.core_util_trace.values[i]),
            to_mhz(result.core_freq_trace.values[i]),
            float(result.mem_util_trace.values[i]),
            to_mhz(result.mem_freq_trace.values[i]),
            float(result.power_trace.values[i]),
        )
        for i, ti in enumerate(t)
    ]
    print(
        format_table(
            ["t (s)", "u_core", "f_core (MHz)", "u_mem", "f_mem (MHz)", "power (W)"],
            rows,
            title="Fig. 5 — streamcluster frequency-scaling trace",
        )
    )
    mem = result.mem_freq_trace
    print()
    print(
        line_chart(
            mem.times, mem.values / 1e6,
            title="Fig. 5b — memory frequency (MHz) over time",
            y_format="{:8.0f}",
        )
    )
    power = result.power_trace
    print()
    print(
        line_chart(
            power.times, power.values,
            title="Fig. 5c — system power (W) over time",
            y_format="{:8.0f}",
        )
    )
    print(
        f"\nconverged: core {result.converged_core_mhz:.1f} MHz, "
        f"mem {result.converged_mem_mhz:.1f} MHz (paper: mem converges to 820 MHz)"
    )
    print(
        f"avg power: scaled {result.scaled.average_power_w:.1f} W vs "
        f"best-performance {result.baseline.average_power_w:.1f} W; "
        f"time {result.scaled.total_s:.1f} s vs {result.baseline.total_s:.1f} s"
    )


if __name__ == "__main__":
    main()
