"""Fig. 6: per-workload energy savings of the frequency-scaling tier.

Three panels, all vs. the *best-performance* baseline (GPU pinned at
576/900 MHz), with the division tier disabled (all work on the GPU):

- **6a — GPU scaling**: total GPU-card (Meter2) energy saving.
  Paper: 5.97 % average, up to 14.53 %.
- **6b — dynamic energy**: saving in GPU energy after subtracting idle
  energy.  Paper: 29.2 % average with only 2.95 % longer execution.
- **6c — CPU/GPU scaling (emulated)**: whole-system saving when CPU
  busy-wait periods are re-priced at the lowest P-state's idle power.
  Paper: 12.48 % average.

Expected cross-workload shape: low-utilization workloads (PF, lud) save
the most; saturated ones (bfs) the least; fluctuating ones (QG, SC) still
save because the scaler tracks the phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.energy import (
    cpu_gpu_emulated_saving,
    dynamic_gpu_saving,
    total_gpu_saving,
)
from repro.analysis.tables import format_table
from repro.core.policies import BestPerformancePolicy, FrequencyScalingOnlyPolicy
from repro.experiments.common import scaled_config, scaled_workload
from repro.runtime.executor import run_workload
from repro.sim.calibration import default_testbed_config
from repro.workloads.characteristics import workload_names


@dataclass(frozen=True)
class Fig6Row:
    """All three panels' metrics for one workload."""

    name: str
    gpu_saving: float            # panel (a)
    dynamic_saving: float        # panel (b)
    cpu_gpu_saving: float        # panel (c)
    slowdown: float


@dataclass(frozen=True)
class Fig6Result:
    rows: list[Fig6Row]

    @property
    def average_gpu_saving(self) -> float:
        return float(np.mean([r.gpu_saving for r in self.rows]))

    @property
    def max_gpu_saving(self) -> float:
        return float(np.max([r.gpu_saving for r in self.rows]))

    @property
    def average_dynamic_saving(self) -> float:
        return float(np.mean([r.dynamic_saving for r in self.rows]))

    @property
    def average_cpu_gpu_saving(self) -> float:
        return float(np.mean([r.cpu_gpu_saving for r in self.rows]))

    @property
    def average_slowdown(self) -> float:
        return float(np.mean([r.slowdown for r in self.rows]))


def run_one(
    name: str, n_iterations: int = 6, time_scale: float = 0.3
) -> Fig6Row:
    """Measure all three savings metrics for one workload."""
    workload = scaled_workload(name, time_scale)
    config = scaled_config(time_scale)
    testbed_config = default_testbed_config()
    baseline = run_workload(workload, BestPerformancePolicy(), n_iterations=n_iterations)
    scaled = run_workload(
        workload, FrequencyScalingOnlyPolicy(config=config), n_iterations=n_iterations
    )
    return Fig6Row(
        name=name,
        gpu_saving=total_gpu_saving(scaled, baseline),
        dynamic_saving=dynamic_gpu_saving(scaled, baseline, testbed_config),
        cpu_gpu_saving=cpu_gpu_emulated_saving(scaled, baseline),
        slowdown=scaled.slowdown_vs(baseline),
    )


def run(
    names: list[str] | None = None, n_iterations: int = 6, time_scale: float = 0.3
) -> Fig6Result:
    """All workloads, all three panels."""
    if names is None:
        names = workload_names()
    rows = [run_one(n, n_iterations=n_iterations, time_scale=time_scale) for n in names]
    return Fig6Result(rows=rows)


def main() -> None:
    result = run()
    rows = [
        (
            r.name,
            100.0 * r.gpu_saving,
            100.0 * r.dynamic_saving,
            100.0 * r.cpu_gpu_saving,
            100.0 * r.slowdown,
        )
        for r in result.rows
    ]
    print(
        format_table(
            ["workload", "6a GPU save %", "6b dynamic save %", "6c CPU+GPU save %", "slowdown %"],
            rows,
            title="Fig. 6 — frequency-scaling savings vs best-performance",
            float_fmt="{:.2f}",
        )
    )
    from repro.analysis.ascii_plot import bar_chart

    print()
    print(
        bar_chart(
            [r.name for r in result.rows],
            [100.0 * r.gpu_saving for r in result.rows],
            title="Fig. 6a — GPU energy saving (%) vs best-performance",
        )
    )
    print(
        f"\naverages: GPU {100 * result.average_gpu_saving:.2f}% "
        f"(paper 5.97%, max {100 * result.max_gpu_saving:.2f}% vs paper 14.53%), "
        f"dynamic {100 * result.average_dynamic_saving:.2f}% (paper 29.2%), "
        f"CPU+GPU {100 * result.average_cpu_gpu_saving:.2f}% (paper 12.48%), "
        f"slowdown {100 * result.average_slowdown:.2f}% (paper 2.95%)"
    )


if __name__ == "__main__":
    main()
