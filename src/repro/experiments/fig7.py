"""Fig. 7: workload-division traces for *kmeans* and *hotspot*.

Runs the division tier alone (frequencies pinned at peak) from a 30 % CPU
initial ratio and records the division ratio and both sides' execution
times per iteration.  Also runs the static division sweep to locate the
energy-optimal static point the dynamic divider is judged against.

Paper targets: kmeans converges to 20/80 (static optimum 15/85); hotspot
converges exactly to the 50/50 optimum; the dynamic divider stays within
~5.45 % execution time of the optimal static division.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.convergence import convergence_iteration
from repro.analysis.tables import format_table
from repro.baselines.static_division import best_point, sweep_divisions
from repro.core.policies import DivisionOnlyPolicy
from repro.experiments.common import scaled_config, scaled_options, scaled_workload
from repro.runtime.executor import run_workload
from repro.runtime.metrics import RunResult

WORKLOADS = ("kmeans", "hotspot")


@dataclass(frozen=True)
class Fig7Result:
    """One division trace plus its static-sweep reference."""

    name: str
    run: RunResult
    converged_r: float
    convergence_iter: int
    static_optimal_r: float
    static_optimal_energy_j: float
    time_overhead_vs_optimal: float

    @property
    def ratios(self) -> np.ndarray:
        return self.run.ratios()


def run_one(
    name: str,
    n_iterations: int = 12,
    time_scale: float = 0.15,
    initial_ratio: float = 0.30,
) -> Fig7Result:
    """Division-only trace + static sweep for one workload."""
    workload = scaled_workload(name, time_scale)
    config = scaled_config(time_scale)
    options = scaled_options(time_scale)
    result = run_workload(
        workload,
        DivisionOnlyPolicy(initial_ratio=initial_ratio, config=config),
        n_iterations=n_iterations,
        options=options,
    )
    ratios = result.ratios()
    conv_iter = convergence_iteration(ratios)
    sweep = sweep_divisions(workload, n_iterations=3, options=options)
    optimum = best_point(sweep)
    # Execution-time overhead of the dynamic division vs the optimal
    # static division, compared per iteration (§VII-B's 5.45 % metric).
    dynamic_time_per_iter = result.total_s / result.n_iterations
    optimal_time_per_iter = optimum.time_s / optimum.result.n_iterations
    return Fig7Result(
        name=name,
        run=result,
        converged_r=float(ratios[-1]),
        convergence_iter=conv_iter,
        static_optimal_r=optimum.r,
        static_optimal_energy_j=optimum.energy_j,
        time_overhead_vs_optimal=dynamic_time_per_iter / optimal_time_per_iter - 1.0,
    )


def run(
    names: tuple[str, ...] = WORKLOADS,
    n_iterations: int = 12,
    time_scale: float = 0.15,
) -> dict[str, Fig7Result]:
    return {
        n: run_one(n, n_iterations=n_iterations, time_scale=time_scale) for n in names
    }


def main() -> None:
    results = run()
    for name, res in results.items():
        tc, tg = res.run.iteration_times()
        rows = [
            (m.index + 1, f"{m.r:.2f}", float(tc[i]), float(tg[i]))
            for i, m in enumerate(res.run.iterations)
        ]
        print(
            format_table(
                ["iteration", "CPU share r", "tc (s)", "tg (s)"],
                rows,
                title=f"\nFig. 7 — {name} division trace (initial 30% CPU)",
            )
        )
        print(
            f"converged to {res.converged_r:.2f} at iteration "
            f"{res.convergence_iter + 1}; static optimum {res.static_optimal_r:.2f}; "
            f"time overhead vs optimal static: "
            f"{100 * res.time_overhead_vs_optimal:.2f}% (paper: 5.45% for kmeans)"
        )


if __name__ == "__main__":
    main()
