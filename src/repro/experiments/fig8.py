"""Fig. 8: GreenGPU as a holistic solution (*hotspot* and *kmeans*).

Runs the same workload under the holistic controller and both
single-tier baselines, recording per-iteration whole-system energy.
Expected ordering (paper §VII-C): GreenGPU consumes the least energy in
steady state, Division-only next, Frequency-scaling-only most.

Paper anchors: hotspot — GreenGPU saves 7.88 % more than Division and
28.76 % more than Frequency-scaling; kmeans — 1.6 % and 12.05 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.policies import (
    DivisionOnlyPolicy,
    FrequencyScalingOnlyPolicy,
    GreenGpuPolicy,
)
from repro.experiments.common import scaled_config, scaled_options, scaled_workload
from repro.runtime.executor import run_workload
from repro.runtime.metrics import RunResult

WORKLOADS = ("hotspot", "kmeans")


@dataclass(frozen=True)
class Fig8Result:
    """The three runs of one workload."""

    name: str
    greengpu: RunResult
    division_only: RunResult
    scaling_only: RunResult

    @property
    def saving_vs_division(self) -> float:
        """How much more GreenGPU saves than Division-only."""
        return self.greengpu.energy_saving_vs(self.division_only)

    @property
    def saving_vs_scaling(self) -> float:
        """How much more GreenGPU saves than Frequency-scaling-only."""
        return self.greengpu.energy_saving_vs(self.scaling_only)

    @property
    def ordering_holds(self) -> bool:
        """GreenGPU <= Division-only <= Frequency-scaling-only in energy."""
        return (
            self.greengpu.total_energy_j <= self.division_only.total_energy_j
            and self.division_only.total_energy_j <= self.scaling_only.total_energy_j
        )


def run_one(name: str, n_iterations: int = 12, time_scale: float = 0.15) -> Fig8Result:
    """Holistic vs single-tier comparison for one workload."""
    workload = scaled_workload(name, time_scale)
    config = scaled_config(time_scale)
    options = scaled_options(time_scale)
    green = run_workload(
        workload, GreenGpuPolicy(config=config), n_iterations=n_iterations, options=options
    )
    division = run_workload(
        workload, DivisionOnlyPolicy(config=config), n_iterations=n_iterations, options=options
    )
    scaling = run_workload(
        workload,
        FrequencyScalingOnlyPolicy(config=config),
        n_iterations=n_iterations,
        options=options,
    )
    return Fig8Result(
        name=name, greengpu=green, division_only=division, scaling_only=scaling
    )


def run(
    names: tuple[str, ...] = WORKLOADS,
    n_iterations: int = 12,
    time_scale: float = 0.15,
) -> dict[str, Fig8Result]:
    return {
        n: run_one(n, n_iterations=n_iterations, time_scale=time_scale) for n in names
    }


def main() -> None:
    results = run()
    for name, res in results.items():
        green_e = res.greengpu.iteration_energies()
        div_e = res.division_only.iteration_energies()
        scale_e = res.scaling_only.iteration_energies()
        rows = [
            (
                i + 1,
                f"{res.greengpu.iterations[i].r:.2f}",
                float(green_e[i]) / 1e3,
                float(div_e[i]) / 1e3,
                float(scale_e[i]) / 1e3,
            )
            for i in range(len(green_e))
        ]
        print(
            format_table(
                ["iteration", "r (GreenGPU)", "GreenGPU kJ", "Division kJ", "Freq-scaling kJ"],
                rows,
                title=f"\nFig. 8 — {name} holistic comparison (per-iteration energy)",
            )
        )
        print(
            f"GreenGPU saves {100 * res.saving_vs_division:.2f}% vs Division-only "
            f"and {100 * res.saving_vs_scaling:.2f}% vs Frequency-scaling-only "
            f"(ordering holds: {res.ordering_holds})"
        )


if __name__ == "__main__":
    main()
