"""The headline result: 21.04 % average energy saving (paper §VII-C).

"The default runtime configuration of Rodinia is that all the workloads
are allocated to the GPU and all the frequencies are at their peak
levels.  Compared with that, GreenGPU can achieve on average 21.04 %
energy saving for kmeans and hotspot. ... GreenGPU has 1.7 % longer
execution time than workload-division-only."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.policies import DivisionOnlyPolicy, GreenGpuPolicy, RodiniaDefaultPolicy
from repro.experiments.common import scaled_config, scaled_options, scaled_workload
from repro.runtime.executor import run_workload

WORKLOADS = ("kmeans", "hotspot")


@dataclass(frozen=True)
class HeadlineRow:
    name: str
    saving_vs_default: float
    slowdown_vs_division: float


@dataclass(frozen=True)
class HeadlineResult:
    rows: list[HeadlineRow]

    @property
    def average_saving(self) -> float:
        """The 21.04 % analogue."""
        return float(np.mean([r.saving_vs_default for r in self.rows]))

    @property
    def average_slowdown_vs_division(self) -> float:
        """The 1.7 % analogue."""
        return float(np.mean([r.slowdown_vs_division for r in self.rows]))


def run(
    names: tuple[str, ...] = WORKLOADS,
    n_iterations: int = 12,
    time_scale: float = 0.15,
) -> HeadlineResult:
    """GreenGPU vs Rodinia default (and division-only) on both workloads."""
    rows = []
    for name in names:
        workload = scaled_workload(name, time_scale)
        config = scaled_config(time_scale)
        options = scaled_options(time_scale)
        default = run_workload(
            workload, RodiniaDefaultPolicy(), n_iterations=n_iterations, options=options
        )
        green = run_workload(
            workload, GreenGpuPolicy(config=config), n_iterations=n_iterations, options=options
        )
        division = run_workload(
            workload, DivisionOnlyPolicy(config=config), n_iterations=n_iterations, options=options
        )
        rows.append(
            HeadlineRow(
                name=name,
                saving_vs_default=green.energy_saving_vs(default),
                slowdown_vs_division=green.slowdown_vs(division),
            )
        )
    return HeadlineResult(rows=rows)


def main() -> None:
    result = run()
    table_rows = [
        (r.name, 100.0 * r.saving_vs_default, 100.0 * r.slowdown_vs_division)
        for r in result.rows
    ]
    print(
        format_table(
            ["workload", "saving vs Rodinia default %", "slowdown vs division-only %"],
            table_rows,
            title="Headline — GreenGPU vs the Rodinia default configuration",
            float_fmt="{:.2f}",
        )
    )
    print(
        f"\naverage saving: {100 * result.average_saving:.2f}% (paper: 21.04%); "
        f"average slowdown vs division-only: "
        f"{100 * result.average_slowdown_vs_division:.2f}% (paper: 1.7%)"
    )


if __name__ == "__main__":
    main()
