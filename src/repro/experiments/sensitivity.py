"""Savings landscape over the utilization plane.

The paper's cross-workload observations (§VII-A) — low-utilization
workloads save most, saturated ones least — are nine point samples of an
underlying surface.  This experiment maps that surface directly: a grid
of single-phase synthetic workloads at exact (u_core, u_mem) operating
points, each run under the frequency-scaling tier against
best-performance.

The result doubles as a design tool: given a target workload's measured
utilizations (from Table II or a trace replay), the map predicts how much
tier 2 can save before running anything.
"""

from __future__ import annotations

from dataclasses import dataclass



from repro.analysis.tables import format_table
from repro.core.policies import BestPerformancePolicy, FrequencyScalingOnlyPolicy
from repro.errors import ConfigError
from repro.experiments.common import scaled_config
from repro.runtime.executor import run_workload
from repro.sim.calibration import geforce_8800_gtx_spec, phenom_ii_x2_spec
from repro.workloads.generator import synthetic_workload, uniform_profile


@dataclass(frozen=True)
class SensitivityPoint:
    u_core: float
    u_mem: float
    gpu_saving: float
    slowdown: float


@dataclass(frozen=True)
class SensitivityMap:
    points: list[SensitivityPoint]

    def at(self, u_core: float, u_mem: float) -> SensitivityPoint:
        """Nearest grid point to a utilization pair."""
        if not self.points:
            raise ConfigError("empty sensitivity map")
        return min(
            self.points,
            key=lambda p: (p.u_core - u_core) ** 2 + (p.u_mem - u_mem) ** 2,
        )

    @property
    def best(self) -> SensitivityPoint:
        return max(self.points, key=lambda p: p.gpu_saving)

    @property
    def worst(self) -> SensitivityPoint:
        return min(self.points, key=lambda p: p.gpu_saving)


def run(
    grid: list[float] | None = None,
    time_scale: float = 0.1,
    n_iterations: int = 2,
    iteration_seconds: float = 30.0,
) -> SensitivityMap:
    """Measure tier-2 savings over a (u_core, u_mem) grid.

    Grid points outside the roofline's feasible region are skipped (they
    cannot be realized by any workload on this device).
    """
    if grid is None:
        grid = [0.15, 0.35, 0.55, 0.75]
    gpu, cpu = geforce_8800_gtx_spec(), phenom_ii_x2_spec()
    config = scaled_config(time_scale)
    points = []
    for u_core in grid:
        for u_mem in grid:
            if gpu.roofline.utilization_norm(u_core, u_mem) > 0.98:
                continue
            profile = uniform_profile(
                u_core, u_mem,
                gpu_seconds_per_iteration=iteration_seconds * time_scale,
                name=f"grid-{u_core:.2f}-{u_mem:.2f}",
            )
            workload = synthetic_workload(profile, gpu, cpu)
            baseline = run_workload(
                workload, BestPerformancePolicy(), n_iterations=n_iterations
            )
            scaled = run_workload(
                workload,
                FrequencyScalingOnlyPolicy(config=config),
                n_iterations=n_iterations,
            )
            points.append(
                SensitivityPoint(
                    u_core=u_core,
                    u_mem=u_mem,
                    gpu_saving=scaled.gpu_energy_saving_vs(baseline),
                    slowdown=scaled.slowdown_vs(baseline),
                )
            )
    if not points:
        raise ConfigError("no feasible grid points")
    return SensitivityMap(points=points)


def main() -> None:
    result = run()
    rows = [
        (f"{p.u_core:.2f}", f"{p.u_mem:.2f}", 100.0 * p.gpu_saving, 100.0 * p.slowdown)
        for p in result.points
    ]
    print(
        format_table(
            ["u_core", "u_mem", "GPU saving %", "slowdown %"],
            rows,
            title="Tier-2 savings over the utilization plane",
            float_fmt="{:.2f}",
        )
    )
    best, worst = result.best, result.worst
    print(
        f"\nbest: ({best.u_core:.2f}, {best.u_mem:.2f}) saves "
        f"{100 * best.gpu_saving:.1f}%; "
        f"worst: ({worst.u_core:.2f}, {worst.u_mem:.2f}) saves "
        f"{100 * worst.gpu_saving:.1f}% — savings fall as utilization rises, "
        f"the paper's §VII-A observation as a surface."
    )


if __name__ == "__main__":
    main()
