"""Run the whole evaluation and emit a structured summary.

``python -m repro.experiments.suite [--out summary.md]`` regenerates every
paper artifact at configurable scale, collects the headline numbers into
one :class:`SuiteSummary`, and optionally writes a markdown ledger — the
machine-generated counterpart of the hand-annotated EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field

from repro.experiments import fig1, fig2, fig5, fig6, fig7, fig8, headline, table2


@dataclass
class SuiteSummary:
    """The key number(s) from every artifact, in paper order."""

    elapsed_s: float = 0.0
    fig1_nbody_mem_best_energy: float = 0.0
    fig1_sc_core_best_energy: float = 0.0
    fig2_optimal_r: float = 0.0
    table2_matches: int = 0
    table2_total: int = 0
    fig5_converged_mem_mhz: float = 0.0
    fig6_avg_gpu_saving: float = 0.0
    fig6_avg_dynamic_saving: float = 0.0
    fig6_avg_cpu_gpu_saving: float = 0.0
    fig7_kmeans_converged_r: float = 0.0
    fig7_hotspot_converged_r: float = 0.0
    fig8_ordering_holds: bool = False
    headline_average_saving: float = 0.0
    notes: list[str] = field(default_factory=list)

    def to_markdown(self) -> str:
        rows = [
            ("Fig. 1 — nbody best relative energy (memory sweep)",
             f"{self.fig1_nbody_mem_best_energy:.3f}", "< 1.0 (interior minimum)"),
            ("Fig. 1 — SC best relative energy (core sweep)",
             f"{self.fig1_sc_core_best_energy:.3f}", "< 1.0, knee near 410 MHz"),
            ("Fig. 2 — kmeans energy-minimum division",
             f"{self.fig2_optimal_r:.2f}", "~0.10 (paper fig), 0.15 (paper §VII-B)"),
            ("Table II — class matches",
             f"{self.table2_matches}/{self.table2_total}", "9/9"),
            ("Fig. 5 — SC memory convergence",
             f"{self.fig5_converged_mem_mhz:.0f} MHz", "820 MHz"),
            ("Fig. 6a — average GPU saving",
             f"{100 * self.fig6_avg_gpu_saving:.2f}%", "5.97%"),
            ("Fig. 6b — average dynamic saving",
             f"{100 * self.fig6_avg_dynamic_saving:.2f}%", "29.2%"),
            ("Fig. 6c — average CPU+GPU saving",
             f"{100 * self.fig6_avg_cpu_gpu_saving:.2f}%", "12.48%"),
            ("Fig. 7 — kmeans division", f"{self.fig7_kmeans_converged_r:.2f}", "0.20"),
            ("Fig. 7 — hotspot division", f"{self.fig7_hotspot_converged_r:.2f}", "0.50"),
            ("Fig. 8 — energy ordering holds", str(self.fig8_ordering_holds), "True"),
            ("Headline — average saving vs default",
             f"{100 * self.headline_average_saving:.2f}%", "21.04%"),
        ]
        lines = [
            "# Evaluation suite summary (auto-generated)",
            "",
            f"Total simulation wall time: {self.elapsed_s:.1f} s.",
            "",
            "| artifact | measured | paper |",
            "|---|---|---|",
        ]
        lines += [f"| {a} | {m} | {p} |" for a, m, p in rows]
        if self.notes:
            lines += ["", "Notes:"] + [f"- {n}" for n in self.notes]
        return "\n".join(lines)


def run(time_scale: float = 0.15, verbose: bool = False) -> SuiteSummary:
    """Regenerate every artifact and collect the summary."""
    summary = SuiteSummary()
    started = time.perf_counter()

    def log(msg: str) -> None:
        if verbose:
            print(msg)

    log("fig1 ...")
    panels = fig1.run_all(n_iterations=1, time_scale=min(time_scale, 0.2))
    summary.fig1_nbody_mem_best_energy = min(
        p.relative_energy for p in panels[("nbody", "mem")]
    )
    summary.fig1_sc_core_best_energy = min(
        p.relative_energy for p in panels[("streamcluster", "core")]
    )

    log("fig2 ...")
    fig2_result = fig2.run(n_iterations=2, time_scale=min(time_scale, 0.1))
    summary.fig2_optimal_r = fig2_result.optimal_r

    log("table2 ...")
    rows = table2.run(n_iterations=1, time_scale=time_scale)
    summary.table2_total = len(rows)
    for row in rows:
        measured_fluct = row.fluctuating
        paper_fluct = "fluctuate" in row.paper_description.lower()
        if measured_fluct == paper_fluct:
            summary.table2_matches += 1
        else:
            summary.notes.append(f"table2 mismatch: {row.name}")

    log("fig5 ...")
    fig5_result = fig5.run(n_iterations=3, time_scale=max(time_scale, 0.2))
    summary.fig5_converged_mem_mhz = fig5_result.converged_mem_mhz

    log("fig6 ...")
    fig6_result = fig6.run(n_iterations=3, time_scale=time_scale)
    summary.fig6_avg_gpu_saving = fig6_result.average_gpu_saving
    summary.fig6_avg_dynamic_saving = fig6_result.average_dynamic_saving
    summary.fig6_avg_cpu_gpu_saving = fig6_result.average_cpu_gpu_saving

    log("fig7 ...")
    fig7_results = fig7.run(n_iterations=10, time_scale=min(time_scale, 0.1))
    summary.fig7_kmeans_converged_r = fig7_results["kmeans"].converged_r
    summary.fig7_hotspot_converged_r = fig7_results["hotspot"].converged_r

    log("fig8 ...")
    fig8_results = fig8.run(n_iterations=10, time_scale=min(time_scale, 0.1))
    summary.fig8_ordering_holds = all(r.ordering_holds for r in fig8_results.values())

    log("headline ...")
    headline_result = headline.run(n_iterations=10, time_scale=min(time_scale, 0.1))
    summary.headline_average_saving = headline_result.average_saving

    summary.elapsed_s = time.perf_counter() - started
    return summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--time-scale", type=float, default=0.15)
    parser.add_argument("--out", default=None, help="write the markdown summary here")
    args = parser.parse_args()
    summary = run(time_scale=args.time_scale, verbose=True)
    markdown = summary.to_markdown()
    print("\n" + markdown)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(markdown + "\n")
        print(f"\nwritten to {args.out}")


if __name__ == "__main__":
    main()
