"""Run the whole evaluation and emit a structured summary.

``python -m repro.experiments.suite [--out summary.md]`` regenerates every
paper artifact at configurable scale, collects the headline numbers into
one :class:`SuiteSummary`, and optionally writes a markdown ledger — the
machine-generated counterpart of the hand-annotated EXPERIMENTS.md.

Since the crash-safety work the suite runs under the supervised harness
(:mod:`repro.harness`): each artifact is an isolated, journaled job with
a timeout and retry budget, ``--parallel N`` fans independent artifacts
out across worker processes, and ``--resume <run-dir>`` picks a killed
run back up, skipping artifacts whose journaled content hash still
verifies.  :func:`run` remains the zero-overhead in-process path; both
paths call the same job targets, so their numbers are bit-identical.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from repro.harness.suite_jobs import SUITE_ARTIFACTS, SUITE_TARGETS, suite_specs
from repro.harness.supervisor import HarnessResult, run_jobs, stderr_progress
from repro.ioutil import atomic_write_text


@dataclass
class SuiteSummary:
    """The key number(s) from every artifact, in paper order."""

    elapsed_s: float = 0.0
    fig1_nbody_mem_best_energy: float = 0.0
    fig1_sc_core_best_energy: float = 0.0
    fig2_optimal_r: float = 0.0
    table2_matches: int = 0
    table2_total: int = 0
    fig5_converged_mem_mhz: float = 0.0
    fig6_avg_gpu_saving: float = 0.0
    fig6_avg_dynamic_saving: float = 0.0
    fig6_avg_cpu_gpu_saving: float = 0.0
    fig7_kmeans_converged_r: float = 0.0
    fig7_hotspot_converged_r: float = 0.0
    fig8_ordering_holds: bool = False
    headline_average_saving: float = 0.0
    notes: list[str] = field(default_factory=list)

    @classmethod
    def from_payloads(cls, payloads: dict[str, dict[str, Any]]) -> "SuiteSummary":
        """Merge per-artifact job payloads, in canonical artifact order.

        Merging follows :data:`SUITE_ARTIFACTS` order regardless of job
        completion order, so parallel and resumed runs produce the same
        summary (including the order of ``notes``).
        """
        summary = cls()
        known = set(summary.__dataclass_fields__)
        for name in SUITE_ARTIFACTS:
            payload = payloads.get(name)
            if payload is None:
                continue
            for key, value in payload.items():
                if key == "notes":
                    summary.notes.extend(value)
                elif key in known:
                    setattr(summary, key, value)
        return summary

    def to_markdown(self, include_elapsed: bool = True) -> str:
        """Render the ledger.

        ``include_elapsed=False`` drops the wall-time line — the harness
        uses it for the on-disk ``summary.md`` so that a resumed run is
        byte-identical to an uninterrupted one.
        """
        rows = [
            ("Fig. 1 — nbody best relative energy (memory sweep)",
             f"{self.fig1_nbody_mem_best_energy:.3f}", "< 1.0 (interior minimum)"),
            ("Fig. 1 — SC best relative energy (core sweep)",
             f"{self.fig1_sc_core_best_energy:.3f}", "< 1.0, knee near 410 MHz"),
            ("Fig. 2 — kmeans energy-minimum division",
             f"{self.fig2_optimal_r:.2f}", "~0.10 (paper fig), 0.15 (paper §VII-B)"),
            ("Table II — class matches",
             f"{self.table2_matches}/{self.table2_total}", "9/9"),
            ("Fig. 5 — SC memory convergence",
             f"{self.fig5_converged_mem_mhz:.0f} MHz", "820 MHz"),
            ("Fig. 6a — average GPU saving",
             f"{100 * self.fig6_avg_gpu_saving:.2f}%", "5.97%"),
            ("Fig. 6b — average dynamic saving",
             f"{100 * self.fig6_avg_dynamic_saving:.2f}%", "29.2%"),
            ("Fig. 6c — average CPU+GPU saving",
             f"{100 * self.fig6_avg_cpu_gpu_saving:.2f}%", "12.48%"),
            ("Fig. 7 — kmeans division", f"{self.fig7_kmeans_converged_r:.2f}", "0.20"),
            ("Fig. 7 — hotspot division", f"{self.fig7_hotspot_converged_r:.2f}", "0.50"),
            ("Fig. 8 — energy ordering holds", str(self.fig8_ordering_holds), "True"),
            ("Headline — average saving vs default",
             f"{100 * self.headline_average_saving:.2f}%", "21.04%"),
        ]
        lines = ["# Evaluation suite summary (auto-generated)", ""]
        if include_elapsed:
            lines += [f"Total simulation wall time: {self.elapsed_s:.1f} s.", ""]
        lines += [
            "| artifact | measured | paper |",
            "|---|---|---|",
        ]
        lines += [f"| {a} | {m} | {p} |" for a, m, p in rows]
        if self.notes:
            lines += ["", "Notes:"] + [f"- {n}" for n in self.notes]
        return "\n".join(lines)


def run(time_scale: float = 0.15, verbose: bool = False) -> SuiteSummary:
    """Regenerate every artifact in-process and collect the summary."""
    started = time.perf_counter()
    payloads: dict[str, dict[str, Any]] = {}
    for name in SUITE_ARTIFACTS:
        if verbose:
            print(f"{name} ...")
        payloads[name] = SUITE_TARGETS[name](time_scale=time_scale)
    summary = SuiteSummary.from_payloads(payloads)
    summary.elapsed_s = time.perf_counter() - started
    return summary


SUMMARY_NAME = "summary.md"
HEALTH_NAME = "health.md"


def run_supervised(
    time_scale: float = 0.15,
    run_dir: str | None = None,
    *,
    parallel: int = 1,
    resume: bool = False,
    only: tuple[str, ...] | list[str] | None = None,
    timeout_s: float | None = 600.0,
    isolate: bool = True,
    progress: Any = None,
) -> tuple[SuiteSummary, HarnessResult]:
    """Run the suite as supervised jobs; write the run-dir ledgers.

    Writes ``summary.md`` (deterministic — no wall-time line, so it is
    byte-identical across interrupted-and-resumed and uninterrupted
    runs of the same seed/scale) and ``health.md`` (the per-run harness
    report) into ``run_dir``, both atomically.
    """
    if run_dir is None:
        if resume:
            raise ValueError("--resume needs an explicit run directory")
        with tempfile.TemporaryDirectory(prefix="greengpu-suite-") as tmp:
            return run_supervised(
                time_scale, tmp, parallel=parallel, resume=False, only=only,
                timeout_s=timeout_s, isolate=isolate, progress=progress,
            )
    specs = suite_specs(time_scale=time_scale, only=only, timeout_s=timeout_s)
    result = run_jobs(specs, run_dir, parallel=parallel, resume=resume,
                      isolate=isolate, progress=progress)
    summary = SuiteSummary.from_payloads(result.payloads)
    summary.elapsed_s = result.report.elapsed_s
    for name, outcome in result.outcomes.items():
        if outcome.state.value == "quarantined":
            summary.notes.append(f"quarantined: {name}")
    atomic_write_text(os.path.join(run_dir, SUMMARY_NAME),
                      summary.to_markdown(include_elapsed=False) + "\n")
    atomic_write_text(os.path.join(run_dir, HEALTH_NAME),
                      result.report.to_markdown())
    return summary, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--time-scale", type=float, default=0.15)
    parser.add_argument("--out", default=None, help="write the markdown summary here")
    parser.add_argument("--run-dir", default=None,
                        help="journaled run directory (required for --resume)")
    parser.add_argument("--parallel", type=int, default=1,
                        help="worker processes to fan artifacts across")
    parser.add_argument("--resume", action="store_true",
                        help="replay --run-dir's journal; re-run only missing jobs")
    parser.add_argument("--jobs", nargs="*", default=None, metavar="ARTIFACT",
                        help=f"subset of {list(SUITE_ARTIFACTS)} (default: all)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-job wall-clock kill deadline in seconds")
    parser.add_argument("--no-isolate", action="store_true",
                        help="run jobs in-process (no timeouts, no parallelism)")
    args = parser.parse_args(argv)
    if args.resume and args.run_dir is None:
        parser.error("--resume requires --run-dir")

    summary, result = run_supervised(
        time_scale=args.time_scale,
        run_dir=args.run_dir,
        parallel=args.parallel,
        resume=args.resume,
        only=args.jobs,
        timeout_s=args.timeout,
        isolate=not args.no_isolate,
        progress=stderr_progress,
    )
    report = result.report
    print("\n" + summary.to_markdown())
    print()
    print(report.summary_line())
    if args.out:
        atomic_write_text(args.out, summary.to_markdown() + "\n")
        print(f"\nwritten to {args.out}")
    if report.interrupted:
        print("interrupted — finish with --resume "
              f"--run-dir {args.run_dir}", file=sys.stderr)
        return 130
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
