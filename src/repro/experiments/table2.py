"""Table II: workload characterization on the simulated testbed.

Runs every workload all-on-GPU at peak frequencies and measures the
average core/memory utilizations with the ``nvidia-smi`` facade, then
classifies them with the same qualitative bands the paper's table uses.
The measured classes must match the paper's "Description" column — this
is the calibration contract of :mod:`repro.workloads.characteristics`.

Fluctuation is *measured*, not taken from metadata: the paper identified
QG and streamcluster "by studying the utilization traces" of a polled
``nvidia-smi``; we poll the same way (one sample per scaling interval)
and run :func:`repro.analysis.fluctuation.detect_fluctuation` on the
result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fluctuation import detect_fluctuation
from repro.analysis.tables import format_table
from repro.core.policies import BestPerformancePolicy
from repro.errors import ConfigError
from repro.experiments.common import scaled_workload
from repro.monitors.nvsmi import NvidiaSmi
from repro.runtime.executor import run_workload
from repro.sim.platform import make_testbed
from repro.workloads.characteristics import TABLE_II, workload_names


def classify(u: float) -> str:
    """Qualitative utilization band (paper Table II vocabulary)."""
    if not 0.0 <= u <= 1.0:
        raise ConfigError(f"utilization must be in [0, 1], got {u}")
    if u >= 0.70:
        return "high"
    if u >= 0.40:
        return "medium"
    return "low"


@dataclass(frozen=True)
class CharacterizationRow:
    """Measured utilization characterization of one workload."""

    name: str
    enlargement: str
    paper_description: str
    u_core: float
    u_mem: float
    fluctuating: bool          # measured from the polled trace
    volatility: float          # the detector's underlying statistic

    @property
    def measured_description(self) -> str:
        if self.fluctuating:
            return "Utilizations highly fluctuate"
        return (
            f"{classify(self.u_core).capitalize()} core, "
            f"{classify(self.u_mem)} memory utilization"
        )


def run(n_iterations: int = 2, time_scale: float = 0.2) -> list[CharacterizationRow]:
    """Measure every Table II workload's utilizations at peak clocks."""
    rows = []
    for name in workload_names():
        profile = TABLE_II[name]
        workload = scaled_workload(name, time_scale)
        system = make_testbed()
        # Poll nvidia-smi once per (scaled) scaling interval, like the
        # paper's trace collection.
        monitor = NvidiaSmi(system.gpu)
        u_core_trace: list[float] = []
        u_mem_trace: list[float] = []

        def poll(t: float) -> None:
            sample = monitor.query()
            u_core_trace.append(sample.u_core)
            u_mem_trace.append(sample.u_mem)

        task = system.clock.every(3.0 * time_scale, poll, name="smi-poll")
        run_workload(
            workload, BestPerformancePolicy(), n_iterations=n_iterations, system=system
        )
        task.cancel()
        elapsed = system.gpu.elapsed_seconds
        report = detect_fluctuation(u_core_trace, u_mem_trace)
        rows.append(
            CharacterizationRow(
                name=name,
                enlargement=profile.enlargement,
                paper_description=profile.description,
                u_core=system.gpu.busy_core_seconds / elapsed,
                u_mem=system.gpu.busy_mem_seconds / elapsed,
                fluctuating=report.fluctuating,
                volatility=report.volatility,
            )
        )
    return rows


def main() -> None:
    rows = run()
    table_rows = [
        (
            r.name,
            r.u_core,
            r.u_mem,
            r.measured_description,
            r.paper_description,
        )
        for r in rows
    ]
    print(
        format_table(
            ["workload", "u_core", "u_mem", "measured class", "paper Table II"],
            table_rows,
            title="Table II — workload characterization (all-GPU at peak clocks)",
        )
    )


if __name__ == "__main__":
    main()
