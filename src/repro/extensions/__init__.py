"""Extensions beyond the paper's evaluated system.

Each module here implements something the paper *sketches, emulates or
defers to future work*, built on the same substrate so it can be compared
against the published design:

- :mod:`repro.extensions.hardware_table` — the §VI on-chip implementation
  sketch: an 8-bit fixed-point weight table ("8-bit precision is accurate
  enough for the purpose of picking up the largest weight"), verified
  against the floating-point controller.
- :mod:`repro.extensions.gpu_dvfs` — GPU voltage-and-frequency scaling.
  The 8800 GTX could only scale frequency; the paper notes "If DVFS is
  enabled, we expect more energy saving can be achieved from frequency
  scaling" (§VII-C).  This module adds a V(f) GPU power model and
  quantifies that expectation.
- :mod:`repro.extensions.async_comm` — *measured* CPU+GPU scaling with
  asynchronous host-device communication, replacing the paper's Fig. 6c
  emulation (their benchmarks spin the CPU, defeating ondemand).
- :mod:`repro.extensions.multigpu` — N-way workload division ("one
  pthread for one GPU", §VI) generalizing the two-way tier-1 algorithm.
- :mod:`repro.extensions.coupled` — the coupled-tier alternative the
  paper rejects in §IV, so the decoupling argument can be tested.
- :mod:`repro.extensions.tuner` — offline grid search over the hand-tuned
  alpha/beta/phi (the paper's stated future direction: "currently we
  derive alpha, beta, and phi from manual tuning ... which could be our
  future direction").
"""

from repro.extensions.hardware_table import QuantizedWeightTable, QuantizedWmaScaler
from repro.extensions.gpu_dvfs import dvfs_gpu_spec, dvfs_savings_comparison
from repro.extensions.async_comm import measured_async_savings
from repro.extensions.multigpu import DeviceTiming, MultiwayDivider
from repro.extensions.multigpu_sim import (
    MultiGreenGpuController,
    MultiHeteroSystem,
    MultiRunResult,
    run_multi_workload,
)
from repro.extensions.coupled import CoupledController, compare_coupling
from repro.extensions.tuner import TuningResult, grid_search_wma_params

__all__ = [
    "QuantizedWeightTable",
    "QuantizedWmaScaler",
    "dvfs_gpu_spec",
    "dvfs_savings_comparison",
    "measured_async_savings",
    "MultiwayDivider",
    "DeviceTiming",
    "MultiHeteroSystem",
    "MultiGreenGpuController",
    "MultiRunResult",
    "run_multi_workload",
    "CoupledController",
    "compare_coupling",
    "grid_search_wma_params",
    "TuningResult",
]
