"""Measured CPU+GPU scaling with asynchronous communication.

The paper could only *emulate* Fig. 6c's CPU-throttling savings because
its benchmarks synchronize host and device with busy-waiting, pinning CPU
utilization at 100 % and defeating `ondemand` (§VII-A).  Our runtime has
the asynchronous mode the paper wished for (``ExecutorOptions.sync_spin =
False``: the host blocks instead of spinning while the GPU computes), so
the emulated claim can be *measured*:

- with async communication the CPU's windowed utilization drops to ~0
  during GPU-only phases, `ondemand` walks the P-states down, and the
  Meter1 energy falls for real;
- the measured saving should land in the same band as the paper's
  conservative emulation (they assume the CPU can never throttle around
  communication points; our ondemand takes a few sampling intervals to
  walk down, a comparable haircut).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.energy import cpu_gpu_emulated_saving
from repro.core.policies import BestPerformancePolicy, FrequencyScalingOnlyPolicy
from repro.experiments.common import scaled_config, scaled_workload
from repro.runtime.executor import ExecutorOptions, run_workload


@dataclass(frozen=True)
class AsyncSavingsResult:
    """Measured vs emulated whole-system tier-2 savings for one workload."""

    workload: str
    emulated_saving: float   # the paper's Fig. 6c methodology
    measured_saving: float   # real async run, real ondemand throttling
    cpu_floor_reached: bool  # did ondemand actually reach the lowest P-state?


def measured_async_savings(
    workload_name: str = "kmeans",
    time_scale: float = 0.2,
    n_iterations: int = 4,
) -> AsyncSavingsResult:
    """Run the Fig. 6c experiment for real instead of emulating it."""
    workload = scaled_workload(workload_name, time_scale)
    config = scaled_config(time_scale)

    # Baseline: best-performance, synchronized (the paper's setup).
    baseline = run_workload(
        workload, BestPerformancePolicy(), n_iterations=n_iterations
    )

    # Emulated path: synchronized run + spin-repricing (Fig. 6c).
    sync_scaled = run_workload(
        workload, FrequencyScalingOnlyPolicy(config=config), n_iterations=n_iterations
    )
    emulated = cpu_gpu_emulated_saving(sync_scaled, baseline)

    # Measured path: asynchronous communication, ondemand free to act.
    from repro.sim.platform import make_testbed

    system = make_testbed()
    async_scaled = run_workload(
        workload,
        FrequencyScalingOnlyPolicy(config=config),
        n_iterations=n_iterations,
        system=system,
        options=ExecutorOptions(sync_spin=False),
    )
    measured = 1.0 - async_scaled.total_energy_j / baseline.total_energy_j
    floor = system.cpu.f == system.cpu.spec.ladder.floor

    return AsyncSavingsResult(
        workload=workload_name,
        emulated_saving=emulated,
        measured_saving=measured,
        cpu_floor_reached=floor,
    )
