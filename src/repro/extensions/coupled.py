"""The coupled-tier alternative the paper rejects (§IV).

GreenGPU decouples its loops: division at iteration granularity, frequency
scaling on a short fixed period, so the WMA settles within each division
interval.  §IV notes "Alternatively, we could explore coupled algorithms"
but argues division overheads make frequent re-division counterproductive.

:class:`CoupledController` implements that alternative faithfully enough
to test the argument: it re-divides after *every* frequency-scaling
interval's worth of work rather than after full iterations — i.e., the
workload runs as many short micro-iterations, each paying the
repartitioning overhead whenever the ratio moves.
:func:`compare_coupling` runs both designs on the same workload and
reports energies; the decoupled design should win once repartitioning
costs anything, which is exactly the paper's §IV claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import GreenGpuConfig
from repro.core.policies import GreenGpuPolicy
from repro.errors import ConfigError
from repro.runtime.executor import ExecutorOptions, run_workload
from repro.runtime.metrics import RunResult
from repro.workloads.base import DemandModelWorkload, WorkloadProfile


@dataclass(frozen=True)
class CoupledController:
    """Configuration shim: GreenGPU with micro-iterations.

    Coupling is expressed through the workload: each paper iteration is
    split into ``subdivisions`` micro-iterations, so the divider acts at
    the frequency-scaling timescale.  The controller logic itself is
    unchanged — which is the honest comparison, since the paper's coupled
    alternative would reuse the same heuristics at a faster cadence.
    """

    subdivisions: int = 10

    def __post_init__(self) -> None:
        if self.subdivisions < 1:
            raise ConfigError("need at least one subdivision")

    def micro_workload(self, workload: DemandModelWorkload) -> DemandModelWorkload:
        """The same total work, chopped into micro-iterations.

        Only the *divisible* work divides by N.  The serial component —
        the barrier, the reduction, the host-side kernel re-invocation
        that defines an iteration boundary — is paid once per invocation,
        so every micro-iteration carries the full serial seconds.  This
        per-invocation tax is exactly the overhead §IV says makes frequent
        re-division counterproductive.
        """
        import dataclasses

        profile: WorkloadProfile = workload.profile
        full_serial_s = profile.serial_fraction * profile.gpu_seconds_per_iteration
        micro_divisible_s = (
            (1.0 - profile.serial_fraction)
            * profile.gpu_seconds_per_iteration
            / self.subdivisions
        )
        micro_total_s = micro_divisible_s + full_serial_s
        micro = dataclasses.replace(
            profile,
            gpu_seconds_per_iteration=micro_total_s,
            serial_fraction=full_serial_s / micro_total_s,
            h2d_bytes_per_iteration=profile.h2d_bytes_per_iteration / self.subdivisions,
            d2h_bytes_per_iteration=profile.d2h_bytes_per_iteration / self.subdivisions,
        )
        # Rebuild against the same device models the original was built on;
        # the default calibration specs are deterministic, so this is safe.
        from repro.sim.calibration import geforce_8800_gtx_spec, phenom_ii_x2_spec

        return DemandModelWorkload(micro, geforce_8800_gtx_spec(), phenom_ii_x2_spec())


@dataclass(frozen=True)
class CouplingComparison:
    decoupled: RunResult
    coupled: RunResult

    @property
    def decoupled_advantage(self) -> float:
        """Fractional energy advantage of the paper's decoupled design."""
        return 1.0 - self.decoupled.total_energy_j / self.coupled.total_energy_j


def compare_coupling(
    workload: DemandModelWorkload,
    config: GreenGpuConfig,
    n_iterations: int = 6,
    subdivisions: int = 10,
    repartition_overhead_s: float = 0.5,
) -> CouplingComparison:
    """Decoupled (paper) vs coupled (micro-iteration) GreenGPU."""
    options = ExecutorOptions(repartition_overhead_s=repartition_overhead_s)
    decoupled = run_workload(
        workload,
        GreenGpuPolicy(config=config),
        n_iterations=n_iterations,
        options=options,
    )
    shim = CoupledController(subdivisions=subdivisions)
    coupled = run_workload(
        shim.micro_workload(workload),
        GreenGpuPolicy(config=config),
        n_iterations=n_iterations * subdivisions,
        options=options,
    )
    return CouplingComparison(decoupled=decoupled, coupled=coupled)
