"""GPU voltage-and-frequency scaling (the paper's §VII-C expectation).

The GeForce 8800 GTX only scales frequency, so GPU dynamic power falls
linearly with f and the tier-2 savings are modest.  The paper expects
more from a DVFS-capable GPU: "If DVFS is enabled, we expect more energy
saving can be achieved from frequency scaling."

This module builds a DVFS variant of the GPU power model — clock and
activity power scale with f * V(f)^2, with the linear V(f) used for the
CPU — and an experiment comparing the WMA scaler's savings on both cards.
Nothing in the controller changes: it still only sees utilizations, which
is the point of the paper's design.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.policies import BestPerformancePolicy, FrequencyScalingOnlyPolicy
from repro.errors import ConfigError
from repro.experiments.common import scaled_config
from repro.runtime.executor import run_workload
from repro.sim.calibration import geforce_8800_gtx_spec, phenom_ii_x2_spec
from repro.sim.gpu import GpuSpec
from repro.sim.platform import HeteroSystem, TestbedConfig
from repro.sim.power import GpuPowerModel
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import get_profile


@dataclass(frozen=True, slots=True)
class DvfsGpuPowerModel(GpuPowerModel):
    """GPU power with voltage scaling: dynamic terms follow f * V(f)^2.

    ``v_floor_ratio`` is the relative supply voltage at each domain's
    lowest frequency; voltage interpolates linearly in the domain's
    frequency ratio, like the CPU model.
    """

    v_floor_ratio: float = 0.80

    def __post_init__(self) -> None:
        # Explicit base call: zero-arg super() breaks in slots dataclasses
        # (the decorator rebuilds the class, invalidating __class__).
        GpuPowerModel.__post_init__(self)
        if not 0.0 < self.v_floor_ratio <= 1.0:
            raise ConfigError("v_floor_ratio must be in (0, 1]")

    #: Relative frequency at which the voltage floor is reached.  Both
    #: 8800 GTX ladders bottom out near half their peak (0.52 and 0.56).
    _F_FLOOR = 0.5

    def _v_sq(self, f_ratio: float) -> float:
        """Squared relative voltage at a frequency ratio (linear V(f))."""
        if f_ratio >= 1.0:
            return 1.0
        if f_ratio <= self._F_FLOOR:
            return self.v_floor_ratio**2
        frac = (f_ratio - self._F_FLOOR) / (1.0 - self._F_FLOOR)
        v = self.v_floor_ratio + (1.0 - self.v_floor_ratio) * frac
        return v * v

    def power_unchecked(
        self,
        f_core_ratio: float,
        f_mem_ratio: float,
        u_core: float,
        u_mem: float,
    ) -> float:
        # Override the arithmetic entry point (the checked ``power``
        # inherits from the base and dispatches here, so both the hot
        # path and the validating public API see the DVFS terms).  Each
        # domain's frequency-dependent power scales with its own rail's
        # V(f)^2; the static floor is voltage-insensitive (fans, board).
        v_core_sq = self._v_sq(f_core_ratio)
        v_mem_sq = self._v_sq(f_mem_ratio)
        return (
            self.static_w
            + (self.clock_core_w + self.active_core_w * u_core)
            * f_core_ratio * v_core_sq
            + (self.clock_mem_w + self.active_mem_w * u_mem)
            * f_mem_ratio * v_mem_sq
        )


def dvfs_gpu_spec(v_floor_ratio: float = 0.80) -> GpuSpec:
    """The 8800 GTX card with hypothetical voltage scaling enabled."""
    base = geforce_8800_gtx_spec()
    model = base.power
    dvfs = DvfsGpuPowerModel(
        static_w=model.static_w,
        clock_core_w=model.clock_core_w,
        clock_mem_w=model.clock_mem_w,
        active_core_w=model.active_core_w,
        active_mem_w=model.active_mem_w,
        v_floor_ratio=v_floor_ratio,
    )
    return dataclasses.replace(base, name=base.name + " (DVFS)", power=dvfs)


@dataclass(frozen=True)
class DvfsComparison:
    """Tier-2 savings with and without GPU voltage scaling."""

    workload: str
    saving_frequency_only: float
    saving_dvfs: float

    @property
    def dvfs_advantage(self) -> float:
        return self.saving_dvfs - self.saving_frequency_only


def _tier2_saving(gpu_spec: GpuSpec, workload_name: str, time_scale: float,
                  n_iterations: int) -> float:
    from repro.sim.calibration import default_testbed_config

    cpu_spec = phenom_ii_x2_spec()
    profile = dataclasses.replace(
        get_profile(workload_name),
        gpu_seconds_per_iteration=get_profile(workload_name).gpu_seconds_per_iteration
        * time_scale,
    )
    workload = DemandModelWorkload(profile, gpu_spec, cpu_spec)
    base_config = default_testbed_config()
    testbed_config = TestbedConfig(
        gpu=gpu_spec,
        cpu=cpu_spec,
        bus=base_config.bus,
        meter1_overhead_w=base_config.meter1_overhead_w,
        meter1_efficiency=base_config.meter1_efficiency,
        meter2_overhead_w=base_config.meter2_overhead_w,
        meter2_efficiency=base_config.meter2_efficiency,
    )
    baseline = run_workload(
        workload, BestPerformancePolicy(), n_iterations=n_iterations,
        system=HeteroSystem(testbed_config),
    )
    scaled = run_workload(
        workload,
        FrequencyScalingOnlyPolicy(config=scaled_config(time_scale)),
        n_iterations=n_iterations,
        system=HeteroSystem(testbed_config),
    )
    return scaled.gpu_energy_saving_vs(baseline)


def dvfs_savings_comparison(
    workload_name: str = "pathfinder",
    time_scale: float = 0.2,
    n_iterations: int = 4,
    v_floor_ratio: float = 0.80,
) -> DvfsComparison:
    """Quantify the paper's 'more saving with DVFS' expectation."""
    return DvfsComparison(
        workload=workload_name,
        saving_frequency_only=_tier2_saving(
            geforce_8800_gtx_spec(), workload_name, time_scale, n_iterations
        ),
        saving_dvfs=_tier2_saving(
            dvfs_gpu_spec(v_floor_ratio), workload_name, time_scale, n_iterations
        ),
    )
