"""The §VI on-chip hardware sketch: an 8-bit fixed-point weight table.

The paper argues the frequency-scaling tier is cheap enough to implement
on-chip: a 36-byte table (6 x 6 pairs x 8 bits), shift-add multipliers for
the fixed-coefficient loss blend, and the claim that "because the loss
factor value is between 0 and 1, 8-bit precision is accurate enough for
the purpose of picking up the largest weight".

This module implements that sketch faithfully:

- weights live in unsigned ``bits``-bit integers (Q0.8 by default:
  255 == 1.0);
- the Eq. 4 multiplicative update happens in fixed point with
  round-to-nearest;
- renormalization shifts the whole table left whenever the maximum drops
  below half scale (a barrel shift in hardware), which preserves argmax;
- the loss inputs are themselves quantized to the same precision, since a
  hardware implementation would compute them with the sketched shift-add
  units.

:class:`QuantizedWmaScaler` drops this table into Algorithm 1 so the
paper's accuracy claim becomes testable.  Measured finding (pinned by the
tests): the claim holds *with a blur*.  The per-update factor
``1 - (1 - beta) * loss`` compresses loss gaps by (1 - beta) = 0.8, so two
levels whose losses differ by less than ~1.25 quanta collapse to the same
8-bit factor and become indistinguishable.  With the paper's
``alpha_core = 0.15`` the core losses are well separated and the
fixed-point controller agrees with the float one within one level; with
``alpha_mem = 0.02`` the memory-side energy losses are tiny and the blur
reaches two levels — always erring toward the *faster* clock (ties
resolve to the lowest index), i.e. trading a little energy for
performance, consistent with the paper's priorities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import GreenGpuConfig
from repro.core.loss import loss_vector, total_loss_matrix
from repro.errors import ConfigError
from repro.sim.frequency import FrequencyLadder


class QuantizedWeightTable:
    """Fixed-point weight table with the Eq. 4 update (see module docs)."""

    def __init__(self, n_core_levels: int, n_mem_levels: int, bits: int = 8):
        if n_core_levels < 1 or n_mem_levels < 1:
            raise ConfigError("need at least one level per component")
        if not 2 <= bits <= 16:
            raise ConfigError("bits must be in [2, 16]")
        self.bits = bits
        self.scale = (1 << bits) - 1
        self._weights = np.full((n_core_levels, n_mem_levels), self.scale, dtype=np.int64)
        self.updates = 0
        self.renormalizations = 0

    @property
    def shape(self) -> tuple[int, int]:
        return self._weights.shape  # type: ignore[return-value]

    @property
    def weights(self) -> np.ndarray:
        """Current integer weights (copy)."""
        return self._weights.copy()

    @property
    def storage_bytes(self) -> int:
        """Table storage in bytes (the paper's 36-byte figure for 6x6x8)."""
        return self._weights.size * self.bits // 8

    def _quantize(self, values: np.ndarray) -> np.ndarray:
        """Round a [0, 1] array to ``bits``-bit fixed point integers."""
        return np.rint(np.clip(values, 0.0, 1.0) * self.scale).astype(np.int64)

    def update(self, total_loss: np.ndarray, beta: float) -> None:
        """Eq. 4 in fixed point: w <- w * (1 - (1-beta) * loss).

        The multiplicative factor is quantized once per entry, then the
        product is computed exactly in integers and rounded back — the
        behaviour of a fixed-point multiplier with round-to-nearest.
        """
        if not 0.0 < beta < 1.0:
            raise ConfigError(f"beta must be in (0, 1), got {beta}")
        loss = np.asarray(total_loss, dtype=float)
        if loss.shape != self._weights.shape:
            raise ConfigError(
                f"loss shape {loss.shape} != table shape {self._weights.shape}"
            )
        factor_q = self._quantize(1.0 - (1.0 - beta) * loss)
        product = self._weights * factor_q  # exact integer product
        self._weights = (product + self.scale // 2) // self.scale
        self.updates += 1
        peak = int(self._weights.max())
        if peak == 0:
            # Total collapse (possible after extreme quantized losses):
            # reset to uniform, as a hardware saturating table would.
            self._weights[:] = self.scale
            self.renormalizations += 1
        elif peak <= self.scale // 2:
            shift = 0
            while (peak << (shift + 1)) <= self.scale:
                shift += 1
            if shift:
                self._weights <<= shift
                self.renormalizations += 1

    def best_pair(self) -> tuple[int, int]:
        """Argmax pair; ties resolve to the fastest (lowest indices)."""
        flat = int(np.argmax(self._weights))
        return np.unravel_index(flat, self._weights.shape)  # type: ignore[return-value]

    def reset(self) -> None:
        self._weights[:] = self.scale
        self.updates = 0
        self.renormalizations = 0


@dataclass(frozen=True, slots=True)
class QuantizedDecision:
    core_level: int
    mem_level: int
    f_core: float
    f_mem: float


class QuantizedWmaScaler:
    """Algorithm 1 running on the fixed-point table (hardware analogue)."""

    def __init__(
        self,
        core_ladder: FrequencyLadder,
        mem_ladder: FrequencyLadder,
        config: GreenGpuConfig | None = None,
        bits: int = 8,
    ):
        self.config = config or GreenGpuConfig()
        self.core_ladder = core_ladder
        self.mem_ladder = mem_ladder
        self._umean_core = np.array(
            [core_ladder.umean(i) for i in range(len(core_ladder))]
        )
        self._umean_mem = np.array(
            [mem_ladder.umean(j) for j in range(len(mem_ladder))]
        )
        self.table = QuantizedWeightTable(len(core_ladder), len(mem_ladder), bits=bits)
        self._loss_scale = (1 << bits) - 1

    def _quantize_loss(self, loss: np.ndarray) -> np.ndarray:
        """Losses as the shift-add hardware would compute them."""
        return np.rint(loss * self._loss_scale) / self._loss_scale

    def step(self, u_core: float, u_mem: float) -> QuantizedDecision:
        cfg = self.config
        lc = self._quantize_loss(loss_vector(u_core, self._umean_core, cfg.alpha_core))
        lm = self._quantize_loss(loss_vector(u_mem, self._umean_mem, cfg.alpha_mem))
        total = self._quantize_loss(total_loss_matrix(lc, lm, cfg.phi))
        self.table.update(total, cfg.beta)
        i, j = self.table.best_pair()
        return QuantizedDecision(
            core_level=i, mem_level=j,
            f_core=self.core_ladder[i], f_mem=self.mem_ladder[j],
        )
