"""Hardware tables: the node catalog and the §VI fixed-point sketch.

Two related things live here:

1. **The hardware catalog** (:data:`HARDWARE_TABLE`) — named, validated
   :class:`HardwareEntry` node classes a fleet simulation mixes: the
   paper's calibrated testbed, a DVFS-capable variant of the same card,
   and two synthetic 2012-era classes (a low-power efficiency node and a
   high-performance node).  :func:`validate` / :func:`validate_all`
   check every entry's frequency ladders and power figures before a
   fleet instantiates thousands of copies — one bad entry would
   otherwise become a silent fleet-wide error.

2. **The §VI on-chip sketch** — an 8-bit fixed-point weight table.

The paper argues the frequency-scaling tier is cheap enough to implement
on-chip: a 36-byte table (6 x 6 pairs x 8 bits), shift-add multipliers for
the fixed-coefficient loss blend, and the claim that "because the loss
factor value is between 0 and 1, 8-bit precision is accurate enough for
the purpose of picking up the largest weight".

This module implements that sketch faithfully:

- weights live in unsigned ``bits``-bit integers (Q0.8 by default:
  255 == 1.0);
- the Eq. 4 multiplicative update happens in fixed point with
  round-to-nearest;
- renormalization shifts the whole table left whenever the maximum drops
  below half scale (a barrel shift in hardware), which preserves argmax;
- the loss inputs are themselves quantized to the same precision, since a
  hardware implementation would compute them with the sketched shift-add
  units.

:class:`QuantizedWmaScaler` drops this table into Algorithm 1 so the
paper's accuracy claim becomes testable.  Measured finding (pinned by the
tests): the claim holds *with a blur*.  The per-update factor
``1 - (1 - beta) * loss`` compresses loss gaps by (1 - beta) = 0.8, so two
levels whose losses differ by less than ~1.25 quanta collapse to the same
8-bit factor and become indistinguishable.  With the paper's
``alpha_core = 0.15`` the core losses are well separated and the
fixed-point controller agrees with the float one within one level; with
``alpha_mem = 0.02`` the memory-side energy losses are tiny and the blur
reaches two levels — always erring toward the *faster* clock (ties
resolve to the lowest index), i.e. trading a little energy for
performance, consistent with the paper's priorities.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.core.config import GreenGpuConfig
from repro.core.loss import loss_vector, total_loss_matrix
from repro.errors import ConfigError
from repro.sim.bus import PcieBus
from repro.sim.calibration import default_testbed_config
from repro.sim.cpu import CpuSpec
from repro.sim.frequency import FrequencyLadder
from repro.sim.gpu import GpuSpec
from repro.sim.perf import RooflineModel
from repro.sim.platform import TestbedConfig
from repro.sim.power import CpuPowerModel, GpuPowerModel
from repro.units import ghz, mhz


# -- the hardware catalog ------------------------------------------------------


@dataclass(frozen=True)
class HardwareEntry:
    """One node class a fleet can instantiate.

    ``factory`` builds a fresh :class:`TestbedConfig` per call (specs are
    frozen but devices built from them are stateful, so sharing a config
    between nodes is fine while sharing devices is not).
    """

    key: str
    description: str
    factory: Callable[[], TestbedConfig]

    def make_config(self, sample_log_cap: int | None = None) -> TestbedConfig:
        """A fresh testbed config (optionally bounding meter sample logs)."""
        config = self.factory()
        if sample_log_cap is not None:
            config = replace(config, sample_log_cap=sample_log_cap)
        return config


def wall_power_bound_w(config: TestbedConfig, core_level: int,
                       mem_level: int) -> float:
    """Worst-case node wall draw with the GPU held at a ladder pair.

    Upper bound used to translate a power cap into a frequency-ladder
    ceiling: GPU fully busy at ``(core_level, mem_level)``, CPU fully
    busy at its peak P-state, both meters' overheads and conversion
    losses included.  Every term in the power models is monotone in
    utilization and frequency, so capping the ladder at a pair whose
    bound fits the cap guarantees the measured wall power fits too.
    """
    gpu, cpu = config.gpu, config.cpu
    fc = gpu.core_ladder[core_level] / gpu.core_ladder.peak
    fm = gpu.mem_ladder[mem_level] / gpu.mem_ladder.peak
    gpu_w = gpu.power.power_unchecked(fc, fm, 1.0, 1.0)
    cpu_w = cpu.power.power_unchecked(1.0, 1.0)
    return ((gpu_w + config.meter2_overhead_w) / config.meter2_efficiency
            + (cpu_w + config.meter1_overhead_w) / config.meter1_efficiency)


def peak_wall_power_w(config: TestbedConfig) -> float:
    """Worst-case wall draw with every clock at its peak."""
    return wall_power_bound_w(config, 0, 0)


def floor_wall_power_w(config: TestbedConfig) -> float:
    """Worst-case wall draw with the GPU pinned to its ladder floors.

    This is the least power a cap can usefully demand of a node: below
    it, no frequency ceiling can honour the cap while the node works.
    """
    return wall_power_bound_w(config, len(config.gpu.core_ladder) - 1,
                              len(config.gpu.mem_ladder) - 1)


def _paper_testbed() -> TestbedConfig:
    """The calibrated 8800 GTX + Phenom II node (the paper's testbed)."""
    return default_testbed_config()


def _paper_testbed_dvfs() -> TestbedConfig:
    """Same card, but voltage-and-frequency scaling (§VII-C expectation)."""
    from repro.extensions.gpu_dvfs import DvfsGpuPowerModel

    config = default_testbed_config()
    base = config.gpu.power
    return replace(config, gpu=replace(config.gpu, power=DvfsGpuPowerModel(
        static_w=base.static_w,
        clock_core_w=base.clock_core_w,
        clock_mem_w=base.clock_mem_w,
        active_core_w=base.active_core_w,
        active_mem_w=base.active_mem_w,
        v_floor_ratio=0.80,
    )))


def _efficiency_node() -> TestbedConfig:
    """Synthetic low-power node: small card, small CPU, lean PSU.

    Roughly a GeForce 9600-GT-class card on a 45 W dual-core — a third
    of the paper testbed's wall draw at a quarter of its throughput, so
    its *marginal* perf/W headroom differs sharply from the big nodes'.
    """
    gpu = GpuSpec(
        name="Synthetic 9600 GT class",
        core_ladder=FrequencyLadder.equally_spaced(mhz(325), mhz(650), 6),
        mem_ladder=FrequencyLadder.equally_spaced(mhz(450), mhz(900), 6),
        peak_compute_rate=208.0e9,
        peak_bandwidth=57.6e9,
        power=GpuPowerModel(static_w=22.0, clock_core_w=12.0,
                            clock_mem_w=13.0, active_core_w=9.0,
                            active_mem_w=5.0),
        roofline=RooflineModel(4.0),
        launch_overhead_s=1.0e-4,
    )
    cpu = CpuSpec(
        name="Synthetic 45 W dual-core",
        ladder=FrequencyLadder([ghz(v) for v in (2.4, 1.8, 1.2)]),
        cores=2,
        peak_compute_rate=19.2e9,
        host_bandwidth=8.0e9,
        power=CpuPowerModel(static_w=8.0, active_w=22.0, v_floor_ratio=0.78,
                            f_floor_ratio=1.2 / 2.4),
        roofline=RooflineModel(2.0),
    )
    return TestbedConfig(
        gpu=gpu, cpu=cpu, bus=PcieBus(bandwidth=3.0e9, latency_s=10.0e-6),
        meter1_overhead_w=35.0, meter1_efficiency=0.84,
        meter2_overhead_w=4.0, meter2_efficiency=0.82,
    )


def _highperf_node() -> TestbedConfig:
    """Synthetic high-performance node: Fermi-class card, quad-core host.

    Twice the paper testbed's throughput at roughly twice the wall
    draw — the fleet's best absolute performer but with a wide power
    swing, so it is the node an efficiency-weighted allocator throttles
    first when the datacenter budget tightens.
    """
    gpu = GpuSpec(
        name="Synthetic GTX 480 class",
        core_ladder=FrequencyLadder.equally_spaced(mhz(350), mhz(700), 6),
        mem_ladder=FrequencyLadder.equally_spaced(mhz(924), mhz(1848), 6),
        peak_compute_rate=1344.0e9,
        peak_bandwidth=177.4e9,
        power=GpuPowerModel(static_w=90.0, clock_core_w=48.0,
                            clock_mem_w=42.0, active_core_w=45.0,
                            active_mem_w=25.0),
        roofline=RooflineModel(4.0),
        launch_overhead_s=0.8e-4,
    )
    cpu = CpuSpec(
        name="Synthetic 95 W quad-core",
        ladder=FrequencyLadder([ghz(v) for v in (3.2, 2.4, 1.6, 0.8)]),
        cores=4,
        peak_compute_rate=51.2e9,
        host_bandwidth=12.8e9,
        power=CpuPowerModel(static_w=20.0, active_w=55.0, v_floor_ratio=0.72,
                            f_floor_ratio=0.8 / 3.2),
        roofline=RooflineModel(2.0),
    )
    return TestbedConfig(
        gpu=gpu, cpu=cpu, bus=PcieBus(bandwidth=6.0e9, latency_s=8.0e-6),
        meter1_overhead_w=70.0, meter1_efficiency=0.82,
        meter2_overhead_w=6.0, meter2_efficiency=0.80,
    )


#: Every node class a fleet can mix, keyed by its catalog name.
HARDWARE_TABLE: dict[str, HardwareEntry] = {
    entry.key: entry
    for entry in (
        HardwareEntry(
            key="paper-8800gtx",
            description="Calibrated paper testbed: 8800 GTX + Phenom II X2",
            factory=_paper_testbed,
        ),
        HardwareEntry(
            key="paper-8800gtx-dvfs",
            description="Paper testbed with a DVFS-capable GPU power model",
            factory=_paper_testbed_dvfs,
        ),
        HardwareEntry(
            key="efficiency-node",
            description="Low-power 9600-GT-class node (lean PSU, 45 W host)",
            factory=_efficiency_node,
        ),
        HardwareEntry(
            key="highperf-node",
            description="Fermi-class high-performance node (quad-core host)",
            factory=_highperf_node,
        ),
    )
}


def hardware_keys() -> tuple[str, ...]:
    """Catalog keys, in table order."""
    return tuple(HARDWARE_TABLE)


def hardware_entry(key: str) -> HardwareEntry:
    """Look up one catalog entry by key."""
    try:
        return HARDWARE_TABLE[key]
    except KeyError:
        raise ConfigError(
            f"unknown hardware entry {key!r}; choose from {sorted(HARDWARE_TABLE)}"
        ) from None


#: Sanity band for a single node's wall draw: anything outside almost
#: certainly mixed up units (kW vs W, MHz vs Hz).
_WALL_POWER_BAND_W = (20.0, 3000.0)


def _check_ladder(problems: list[str], label: str,
                  ladder: FrequencyLadder) -> None:
    levels = ladder.levels
    if any(f <= 0.0 for f in levels):
        problems.append(f"{label}: non-positive frequency level")
    if any(a <= b for a, b in zip(levels, levels[1:])):
        problems.append(f"{label}: levels not strictly descending")
    if levels and not 1.0e6 <= levels[0] <= 1.0e10:
        problems.append(
            f"{label}: peak {levels[0]:g} Hz outside the 1 MHz..10 GHz "
            "band (Hz/MHz mixup?)"
        )


def validate(entry: HardwareEntry) -> list[str]:
    """Validate one catalog entry; returns a list of problems (empty = ok).

    Checks the frequency ladders (strictly positive, strictly
    descending, plausible units) and the power figures for unit
    consistency: non-negative coefficients, idle strictly below peak,
    monotone wall-power bounds, and node wall draw inside a sane band.
    """
    problems: list[str] = []
    try:
        config = entry.make_config()
    except Exception as exc:  # a broken factory is itself the finding
        return [f"{entry.key}: factory failed: {exc!r}"]

    gpu, cpu = config.gpu, config.cpu
    _check_ladder(problems, f"{entry.key}: gpu core ladder", gpu.core_ladder)
    _check_ladder(problems, f"{entry.key}: gpu mem ladder", gpu.mem_ladder)
    _check_ladder(problems, f"{entry.key}: cpu ladder", cpu.ladder)

    for name, value in (
        ("gpu static_w", gpu.power.static_w),
        ("gpu clock_core_w", gpu.power.clock_core_w),
        ("gpu clock_mem_w", gpu.power.clock_mem_w),
        ("gpu active_core_w", gpu.power.active_core_w),
        ("gpu active_mem_w", gpu.power.active_mem_w),
        ("cpu static_w", cpu.power.static_w),
        ("cpu active_w", cpu.power.active_w),
        ("meter1_overhead_w", config.meter1_overhead_w),
        ("meter2_overhead_w", config.meter2_overhead_w),
    ):
        if value < 0.0:
            problems.append(f"{entry.key}: {name} is negative ({value:g})")
    for name, value in (("meter1_efficiency", config.meter1_efficiency),
                        ("meter2_efficiency", config.meter2_efficiency)):
        if not 0.0 < value <= 1.0:
            problems.append(f"{entry.key}: {name} must be in (0, 1], "
                            f"got {value:g}")

    fc_floor = gpu.core_ladder.floor / gpu.core_ladder.peak
    fm_floor = gpu.mem_ladder.floor / gpu.mem_ladder.peak
    if gpu.power.idle_power(fc_floor, fm_floor) >= gpu.power.peak_power:
        problems.append(f"{entry.key}: gpu idle power >= peak power")
    if cpu.power.idle_power(cpu.power.f_floor_ratio) >= cpu.power.peak_power:
        problems.append(f"{entry.key}: cpu idle power >= peak power")

    if not problems:
        floor_w = floor_wall_power_w(config)
        peak_w = peak_wall_power_w(config)
        if not floor_w < peak_w:
            problems.append(
                f"{entry.key}: wall floor {floor_w:.1f} W not below wall "
                f"peak {peak_w:.1f} W (no cap headroom)"
            )
        lo, hi = _WALL_POWER_BAND_W
        if not lo <= peak_w <= hi:
            problems.append(
                f"{entry.key}: peak wall draw {peak_w:.1f} W outside the "
                f"[{lo:g}, {hi:g}] W sanity band (unit mixup?)"
            )
    return problems


def validate_all(table: dict[str, HardwareEntry] | None = None) -> None:
    """Validate every catalog entry; raises :class:`ConfigError` listing
    all problems found (fleet startup calls this before mixing nodes)."""
    problems: list[str] = []
    for entry in (table or HARDWARE_TABLE).values():
        problems.extend(validate(entry))
    if problems:
        raise ConfigError(
            "hardware table validation failed:\n  " + "\n  ".join(problems)
        )


# -- the §VI on-chip fixed-point sketch ---------------------------------------


class QuantizedWeightTable:
    """Fixed-point weight table with the Eq. 4 update (see module docs)."""

    def __init__(self, n_core_levels: int, n_mem_levels: int, bits: int = 8):
        if n_core_levels < 1 or n_mem_levels < 1:
            raise ConfigError("need at least one level per component")
        if not 2 <= bits <= 16:
            raise ConfigError("bits must be in [2, 16]")
        self.bits = bits
        self.scale = (1 << bits) - 1
        self._weights = np.full((n_core_levels, n_mem_levels), self.scale, dtype=np.int64)
        self.updates = 0
        self.renormalizations = 0

    @property
    def shape(self) -> tuple[int, int]:
        return self._weights.shape  # type: ignore[return-value]

    @property
    def weights(self) -> np.ndarray:
        """Current integer weights (copy)."""
        return self._weights.copy()

    @property
    def storage_bytes(self) -> int:
        """Table storage in bytes (the paper's 36-byte figure for 6x6x8)."""
        return self._weights.size * self.bits // 8

    def _quantize(self, values: np.ndarray) -> np.ndarray:
        """Round a [0, 1] array to ``bits``-bit fixed point integers."""
        return np.rint(np.clip(values, 0.0, 1.0) * self.scale).astype(np.int64)

    def update(self, total_loss: np.ndarray, beta: float) -> None:
        """Eq. 4 in fixed point: w <- w * (1 - (1-beta) * loss).

        The multiplicative factor is quantized once per entry, then the
        product is computed exactly in integers and rounded back — the
        behaviour of a fixed-point multiplier with round-to-nearest.
        """
        if not 0.0 < beta < 1.0:
            raise ConfigError(f"beta must be in (0, 1), got {beta}")
        loss = np.asarray(total_loss, dtype=float)
        if loss.shape != self._weights.shape:
            raise ConfigError(
                f"loss shape {loss.shape} != table shape {self._weights.shape}"
            )
        factor_q = self._quantize(1.0 - (1.0 - beta) * loss)
        product = self._weights * factor_q  # exact integer product
        self._weights = (product + self.scale // 2) // self.scale
        self.updates += 1
        peak = int(self._weights.max())
        if peak == 0:
            # Total collapse (possible after extreme quantized losses):
            # reset to uniform, as a hardware saturating table would.
            self._weights[:] = self.scale
            self.renormalizations += 1
        elif peak <= self.scale // 2:
            shift = 0
            while (peak << (shift + 1)) <= self.scale:
                shift += 1
            if shift:
                self._weights <<= shift
                self.renormalizations += 1

    def best_pair(self) -> tuple[int, int]:
        """Argmax pair; ties resolve to the fastest (lowest indices)."""
        flat = int(np.argmax(self._weights))
        return np.unravel_index(flat, self._weights.shape)  # type: ignore[return-value]

    def reset(self) -> None:
        self._weights[:] = self.scale
        self.updates = 0
        self.renormalizations = 0


@dataclass(frozen=True, slots=True)
class QuantizedDecision:
    core_level: int
    mem_level: int
    f_core: float
    f_mem: float


class QuantizedWmaScaler:
    """Algorithm 1 running on the fixed-point table (hardware analogue)."""

    def __init__(
        self,
        core_ladder: FrequencyLadder,
        mem_ladder: FrequencyLadder,
        config: GreenGpuConfig | None = None,
        bits: int = 8,
    ):
        self.config = config or GreenGpuConfig()
        self.core_ladder = core_ladder
        self.mem_ladder = mem_ladder
        self._umean_core = np.array(
            [core_ladder.umean(i) for i in range(len(core_ladder))]
        )
        self._umean_mem = np.array(
            [mem_ladder.umean(j) for j in range(len(mem_ladder))]
        )
        self.table = QuantizedWeightTable(len(core_ladder), len(mem_ladder), bits=bits)
        self._loss_scale = (1 << bits) - 1

    def _quantize_loss(self, loss: np.ndarray) -> np.ndarray:
        """Losses as the shift-add hardware would compute them."""
        return np.rint(loss * self._loss_scale) / self._loss_scale

    def step(self, u_core: float, u_mem: float) -> QuantizedDecision:
        cfg = self.config
        lc = self._quantize_loss(loss_vector(u_core, self._umean_core, cfg.alpha_core))
        lm = self._quantize_loss(loss_vector(u_mem, self._umean_mem, cfg.alpha_mem))
        total = self._quantize_loss(total_loss_matrix(lc, lm, cfg.phi))
        self.table.update(total, cfg.beta)
        i, j = self.table.best_pair()
        return QuantizedDecision(
            core_level=i, mem_level=j,
            f_core=self.core_ladder[i], f_mem=self.mem_ladder[j],
        )
