"""N-way workload division: multiple GPUs plus the CPU.

The paper's runtime already anticipates this ("multiple pthreads are
launched ... one pthread for one GPU", §VI) but only evaluates one GPU.
This module generalizes the tier-1 algorithm to N devices:

- the division state is a share vector ``r`` on the probability simplex
  (one entry per device);
- each iteration, one ``step``-sized slice of work moves from the
  *slowest* device to the *fastest* one — the natural N-way analogue of
  the paper's pairwise rule;
- the oscillation safeguard extrapolates both affected devices' times
  linearly (exactly the §V-B check) and holds when the transfer would
  invert their ordering.

The closed-loop fixed point equalizes finish times across devices, which
minimizes idle/spin energy for the same reasons as the two-device case.
:class:`DeviceTiming` carries one iteration's measured per-device times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError

_MIN_SIGNAL_SHARE = 1e-9


@dataclass(frozen=True, slots=True)
class DeviceTiming:
    """One device's measured execution time for its share."""

    name: str
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0.0:
            raise PartitionError("execution time must be non-negative")


@dataclass(frozen=True, slots=True)
class MultiwayDecision:
    shares: np.ndarray
    donor: int | None
    receiver: int | None
    held_by_safeguard: bool


class MultiwayDivider:
    """Tier-1 division over N devices (see module docstring)."""

    def __init__(
        self,
        device_names: list[str],
        step: float = 0.05,
        initial_shares: list[float] | None = None,
        oscillation_safeguard: bool = True,
    ):
        if len(device_names) < 2:
            raise PartitionError("need at least two devices to divide work")
        if not 0.0 < step <= 0.5:
            raise PartitionError("step must be in (0, 0.5]")
        self.names = list(device_names)
        self.step = step
        self.safeguard = oscillation_safeguard
        n = len(self.names)
        if initial_shares is None:
            shares = np.full(n, 1.0 / n)
        else:
            shares = np.asarray(initial_shares, dtype=float)
            if shares.shape != (n,):
                raise PartitionError("one initial share per device required")
            if np.any(shares < 0.0) or abs(shares.sum() - 1.0) > 1e-9:
                raise PartitionError("shares must be non-negative and sum to 1")
        self._shares = shares
        self.iterations = 0
        self.safeguard_holds = 0
        self.history: list[MultiwayDecision] = []

    @property
    def shares(self) -> np.ndarray:
        """Current work shares (copy), summing to 1."""
        return self._shares.copy()

    def _predict(self, share_new: float, share_old: float, t_old: float) -> float:
        """Linear §V-B extrapolation of one device's time to a new share."""
        if share_old <= _MIN_SIGNAL_SHARE:
            return 0.0 if share_new <= _MIN_SIGNAL_SHARE else float("inf")
        return (share_new / share_old) * t_old

    def update(self, timings: list[DeviceTiming]) -> MultiwayDecision:
        """Consume one iteration's per-device times; move one step."""
        if len(timings) != len(self.names):
            raise PartitionError(
                f"expected {len(self.names)} timings, got {len(timings)}"
            )
        by_name = {t.name: t.seconds for t in timings}
        if set(by_name) != set(self.names):
            raise PartitionError("timings must name every device exactly once")
        times = np.array([by_name[n] for n in self.names])
        self.iterations += 1

        # Devices with zero share report zero time; they are receivers
        # only (a zero-share device can't be slow at doing nothing).
        donor = int(np.argmax(times))
        active = self._shares > _MIN_SIGNAL_SHARE
        # Fastest device *per unit of remaining headroom*: the one that
        # finished earliest.  Zero-share devices count as instantly done.
        receiver = int(np.argmin(np.where(active, times, 0.0)))
        if receiver == donor or times[donor] == times[receiver]:
            decision = MultiwayDecision(self.shares, None, None, False)
            self.history.append(decision)
            return decision

        moved = min(self.step, self._shares[donor])
        if moved <= 0.0:
            decision = MultiwayDecision(self.shares, None, None, False)
            self.history.append(decision)
            return decision

        held = False
        if self.safeguard and self._shares[donor] > _MIN_SIGNAL_SHARE:
            donor_pred = self._predict(
                self._shares[donor] - moved, self._shares[donor], times[donor]
            )
            receiver_pred = self._predict(
                self._shares[receiver] + moved, self._shares[receiver], times[receiver]
            )
            if (
                np.isfinite(receiver_pred)
                and receiver_pred > donor_pred
            ):
                held = True

        if held:
            self.safeguard_holds += 1
            decision = MultiwayDecision(self.shares, donor, receiver, True)
        else:
            self._shares[donor] -= moved
            self._shares[receiver] += moved
            decision = MultiwayDecision(self.shares, donor, receiver, False)
        self.history.append(decision)
        return decision

    # -- closed-loop helper used by tests and benches ---------------------------

    def drive(self, unit_times: list[float], iterations: int) -> np.ndarray:
        """Closed loop against fixed per-unit device speeds.

        ``unit_times[i]`` is device i's seconds per unit of work; each
        iteration's measured time is share * unit_time.  Returns the final
        share vector.
        """
        if len(unit_times) != len(self.names):
            raise PartitionError("one unit time per device required")
        for _ in range(iterations):
            timings = [
                DeviceTiming(name, self._shares[i] * unit_times[i])
                for i, name in enumerate(self.names)
            ]
            self.update(timings)
        return self.shares

    def imbalance(self, unit_times: list[float]) -> float:
        """max/min finish-time ratio at the current shares (1.0 = perfect)."""
        times = self._shares * np.asarray(unit_times, dtype=float)
        nonzero = times[times > 0.0]
        if nonzero.size == 0:
            raise PartitionError("no device has work")
        return float(nonzero.max() / nonzero.min())
