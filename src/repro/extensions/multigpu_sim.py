"""Full multi-GPU co-simulation: N cards + CPU under GreenGPU control.

:mod:`repro.extensions.multigpu` generalizes the tier-1 *algorithm*; this
module runs it on a complete simulated platform — one CPU plus any number
of (possibly heterogeneous) GPU cards, each with its own PCIe link, wall
meter, utilization counters and per-card WMA frequency scaler.  It is the
system §VI's runtime sketch describes ("one pthread for one GPU") but the
paper never had the hardware to evaluate.

Composition:

- :class:`MultiHeteroSystem` — the platform: devices advance in lockstep
  event-to-event like :class:`~repro.sim.platform.HeteroSystem`.
- :class:`MultiGreenGpuController` — tier 2 per card (independent WMA
  scalers, exactly the paper's controller replicated) + ondemand for the
  CPU; tier 1 is a :class:`MultiwayDivider` over [cpu, gpu0, gpu1, ...].
- :func:`run_multi_workload` — the executor loop: every iteration splits
  the work by the current shares, runs all devices concurrently, feeds
  the divider the per-device times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import GreenGpuConfig
from repro.core.ondemand import OndemandGovernor
from repro.core.wma import WmaFrequencyScaler
from repro.errors import ConfigError, SimulationError
from repro.extensions.multigpu import DeviceTiming, MultiwayDivider
from repro.monitors.cpustat import CpuStat
from repro.monitors.nvsmi import NvidiaSmi
from repro.sim.activity import KernelActivity
from repro.sim.bus import PcieBus
from repro.sim.calibration import (
    default_bus,
    default_testbed_config,
    geforce_8800_gtx_spec,
    phenom_ii_x2_spec,
)
from repro.sim.cpu import CpuDevice, CpuSpec
from repro.sim.engine import SimClock
from repro.sim.gpu import GpuDevice, GpuSpec
from repro.sim.meter import PowerMeter
from repro.workloads.base import Workload

_MAX_STEPS = 50_000_000


class MultiHeteroSystem:
    """One CPU + N GPU cards, co-simulated."""

    def __init__(
        self,
        gpu_specs: list[GpuSpec] | None = None,
        cpu_spec: CpuSpec | None = None,
        bus: PcieBus | None = None,
    ):
        if gpu_specs is None:
            gpu_specs = [geforce_8800_gtx_spec(), geforce_8800_gtx_spec()]
        if not gpu_specs:
            raise ConfigError("need at least one GPU")
        base = default_testbed_config()
        self.clock = SimClock()
        self.cpu = CpuDevice(cpu_spec or phenom_ii_x2_spec())
        self.gpus = [GpuDevice(spec) for spec in gpu_specs]
        self.bus = bus or default_bus()
        self.meter_cpu = PowerMeter(
            "meter1-cpu-box",
            [self.cpu.instantaneous_power],
            overhead_w=base.meter1_overhead_w,
            efficiency=base.meter1_efficiency,
        )
        self.meter_gpus = [
            PowerMeter(
                f"meter2-gpu{i}",
                [gpu.instantaneous_power],
                overhead_w=base.meter2_overhead_w,
                efficiency=base.meter2_efficiency,
            )
            for i, gpu in enumerate(self.gpus)
        ]

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def total_energy_j(self) -> float:
        return self.meter_cpu.energy_j + sum(m.energy_j for m in self.meter_gpus)

    def reset_meters(self) -> None:
        self.meter_cpu.reset()
        for meter in self.meter_gpus:
            meter.reset()

    def step(self, horizon: float | None = None) -> float:
        candidates: list[float] = []
        deadline = self.clock.next_deadline()
        if deadline is not None:
            candidates.append(max(0.0, deadline - self.clock.now))
        for device in (self.cpu, *self.gpus):
            tte = device.time_to_event()
            if tte is not None:
                candidates.append(tte)
        if horizon is not None:
            candidates.append(horizon)
        if not candidates:
            raise SimulationError("nothing to simulate")
        dt = min(candidates)
        self.meter_cpu.accumulate(dt)
        for meter in self.meter_gpus:
            meter.accumulate(dt)
        self.cpu.advance(dt)
        for gpu in self.gpus:
            gpu.advance(dt)
        self.clock.advance_by(dt)
        return dt

    def any_gpu_busy(self) -> bool:
        return any(gpu.busy for gpu in self.gpus)


class MultiGreenGpuController:
    """Per-card tier 2 + N-way tier 1 (see module docstring)."""

    def __init__(
        self,
        system: MultiHeteroSystem,
        config: GreenGpuConfig | None = None,
        initial_cpu_share: float | None = None,
    ):
        self.system = system
        self.config = config or GreenGpuConfig()
        n_gpus = len(system.gpus)
        names = ["cpu"] + [f"gpu{i}" for i in range(n_gpus)]
        cpu_share = (
            self.config.initial_cpu_ratio
            if initial_cpu_share is None
            else initial_cpu_share
        )
        gpu_share = (1.0 - cpu_share) / n_gpus
        self.divider = MultiwayDivider(
            names,
            step=self.config.division_step,
            initial_shares=[cpu_share] + [gpu_share] * n_gpus,
        )
        self.scalers = [
            WmaFrequencyScaler(gpu.spec.core_ladder, gpu.spec.mem_ladder, self.config)
            for gpu in system.gpus
        ]
        self._monitors = [NvidiaSmi(gpu) for gpu in system.gpus]
        self.governor = OndemandGovernor(
            system.cpu.spec.ladder,
            up_threshold=self.config.ondemand_up_threshold,
            down_threshold=self.config.ondemand_down_threshold,
        )
        self._cpustat = CpuStat(system.cpu)
        self._tasks = [
            system.clock.every(self.config.scaling_interval_s, self._scaling_tick),
            system.clock.every(self.config.ondemand_interval_s, self._ondemand_tick),
        ]

    def _scaling_tick(self, t: float) -> None:
        for gpu, scaler, monitor in zip(self.system.gpus, self.scalers, self._monitors):
            sample = monitor.query()
            decision = scaler.step(sample.u_core, sample.u_mem)
            gpu.set_frequencies(decision.f_core, decision.f_mem)

    def _ondemand_tick(self, t: float) -> None:
        sample = self._cpustat.query()
        decision = self.governor.step(sample.u, self.system.cpu.f)
        if decision.changed:
            self.system.cpu.set_frequency(decision.f_target)

    def detach(self) -> None:
        for task in self._tasks:
            task.cancel()


@dataclass
class MultiRunResult:
    """Results of a multi-GPU run."""

    workload: str
    n_gpus: int
    total_s: float = 0.0
    total_energy_j: float = 0.0
    final_shares: list[float] = field(default_factory=list)
    iteration_times: list[float] = field(default_factory=list)


def run_multi_workload(
    workload: Workload,
    system: MultiHeteroSystem | None = None,
    controller: MultiGreenGpuController | None = None,
    config: GreenGpuConfig | None = None,
    n_iterations: int = 8,
    timeout_s: float = 1.0e5,
) -> MultiRunResult:
    """Run divided iterations across the CPU and every GPU.

    Each GPU gets its share as H2D -> kernel -> D2H (its own PCIe link),
    the CPU runs its share, and the host spins when it has no work while
    any GPU is busy (the paper's synchronized-communication semantics).
    """
    if n_iterations < 1:
        raise SimulationError("need at least one iteration")
    if system is None:
        system = MultiHeteroSystem()
    if controller is None:
        controller = MultiGreenGpuController(system, config)
    system.reset_meters()
    t_start = system.now
    result = MultiRunResult(workload=workload.name, n_gpus=len(system.gpus))

    for _ in range(n_iterations):
        shares = controller.divider.shares
        t0 = system.now
        cpu_share = shares[0]
        if cpu_share > 0.0:
            phases = workload.cpu_phases(float(cpu_share), 0)
            if phases:
                system.cpu.submit_kernel(KernelActivity(phases, label=workload.name))
        for gpu, share in zip(system.gpus, shares[1:]):
            share = float(share)
            if share <= 0.0:
                continue
            gpu.submit_transfer(
                system.bus.make_transfer(workload.h2d_bytes(share), label="h2d")
            )
            phases = workload.gpu_phases(share, 0)
            if phases:
                gpu.submit_kernel(KernelActivity(phases, label=workload.name))
            gpu.submit_transfer(
                system.bus.make_transfer(workload.d2h_bytes(share), label="d2h")
            )

        done_at: dict[str, float | None] = {"cpu": None if cpu_share > 0.0 else t0}
        for i, share in enumerate(shares[1:]):
            done_at[f"gpu{i}"] = None if share > 0.0 else t0

        deadline = t0 + timeout_s
        steps = 0
        if not system.cpu.has_work and system.any_gpu_busy():
            system.cpu.spin()
        while system.any_gpu_busy() or system.cpu.has_work:
            if system.now >= deadline:
                raise SimulationError("multi-GPU iteration exceeded its timeout")
            system.step(horizon=deadline - system.now)
            steps += 1
            if steps > _MAX_STEPS:
                raise SimulationError("step explosion in multi-GPU iteration")
            if done_at["cpu"] is None and not system.cpu.has_work:
                done_at["cpu"] = system.now
                if system.any_gpu_busy():
                    system.cpu.spin()
            for i, gpu in enumerate(system.gpus):
                if done_at[f"gpu{i}"] is None and not gpu.busy:
                    done_at[f"gpu{i}"] = system.now
        system.cpu.stop_spin()

        timings = [
            DeviceTiming(name, (when if when is not None else t0) - t0)
            for name, when in done_at.items()
        ]
        controller.divider.update(timings)
        result.iteration_times.append(system.now - t0)

    result.total_s = system.now - t_start
    result.total_energy_j = system.total_energy_j
    result.final_shares = [float(s) for s in controller.divider.shares]
    controller.detach()
    return result
