"""Offline tuning of the WMA trade-off parameters.

The paper hand-tunes alpha_c = 0.15, alpha_m = 0.02, phi = 0.3, beta = 0.2
and explicitly flags deriving them automatically as future work ("we
derive alpha, beta, and phi from manual tuning due to the lack of
accurate, general, and scalable performance/performance model for GPUs,
which could be our future direction", §V-A).

:func:`grid_search_wma_params` is that future direction on the simulated
testbed: it sweeps a parameter grid, runs the frequency-scaling tier on a
set of training workloads, and scores each point by energy saving subject
to a slowdown budget — the paper's own objective ("save energy with only
negligible performance degradation").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.config import GreenGpuConfig
from repro.core.policies import BestPerformancePolicy, FrequencyScalingOnlyPolicy
from repro.errors import ConfigError
from repro.experiments.common import scaled_workload
from repro.runtime.executor import run_workload


@dataclass(frozen=True)
class TuningPoint:
    """One evaluated parameter combination."""

    alpha_core: float
    alpha_mem: float
    phi: float
    beta: float
    mean_saving: float
    mean_slowdown: float
    feasible: bool


@dataclass(frozen=True)
class TuningResult:
    """Grid-search outcome."""

    points: list[TuningPoint]
    slowdown_budget: float

    @property
    def best(self) -> TuningPoint:
        feasible = [p for p in self.points if p.feasible]
        pool = feasible if feasible else self.points
        return max(pool, key=lambda p: p.mean_saving)

    def point_for(self, config: GreenGpuConfig) -> TuningPoint | None:
        """The grid point matching a config's parameters, if present."""
        for p in self.points:
            if (
                p.alpha_core == config.alpha_core
                and p.alpha_mem == config.alpha_mem
                and p.phi == config.phi
                and p.beta == config.beta
            ):
                return p
        return None


def _evaluate(
    alpha_core: float,
    alpha_mem: float,
    phi: float,
    beta: float,
    workloads: list[str],
    time_scale: float,
    n_iterations: int,
    slowdown_budget: float,
    baselines: dict[str, object],
) -> TuningPoint:
    config = GreenGpuConfig(
        alpha_core=alpha_core,
        alpha_mem=alpha_mem,
        phi=phi,
        beta=beta,
        scaling_interval_s=3.0 * time_scale,
        ondemand_interval_s=0.1 * time_scale,
    )
    savings, slowdowns = [], []
    for name in workloads:
        workload = scaled_workload(name, time_scale)
        base = baselines[name]
        scaled = run_workload(
            workload, FrequencyScalingOnlyPolicy(config=config),
            n_iterations=n_iterations,
        )
        savings.append(scaled.gpu_energy_saving_vs(base))
        slowdowns.append(scaled.slowdown_vs(base))
    mean_saving = float(np.mean(savings))
    mean_slowdown = float(np.mean(slowdowns))
    return TuningPoint(
        alpha_core=alpha_core,
        alpha_mem=alpha_mem,
        phi=phi,
        beta=beta,
        mean_saving=mean_saving,
        mean_slowdown=mean_slowdown,
        feasible=mean_slowdown <= slowdown_budget,
    )


def grid_search_wma_params(
    workloads: list[str] | None = None,
    alpha_core_grid: tuple[float, ...] = (0.05, 0.15, 0.40),
    alpha_mem_grid: tuple[float, ...] = (0.02, 0.15),
    phi_grid: tuple[float, ...] = (0.3, 0.7),
    beta_grid: tuple[float, ...] = (0.2,),
    time_scale: float = 0.1,
    n_iterations: int = 2,
    slowdown_budget: float = 0.05,
) -> TuningResult:
    """Exhaustive grid search over the WMA trade-off parameters.

    Returns every evaluated point so callers can inspect the whole
    landscape, not just the winner.  Baselines are shared across points —
    they do not depend on the parameters being tuned.
    """
    if workloads is None:
        workloads = ["kmeans", "pathfinder", "streamcluster"]
    if not workloads:
        raise ConfigError("need at least one training workload")
    baselines = {
        name: run_workload(
            scaled_workload(name, time_scale),
            BestPerformancePolicy(),
            n_iterations=n_iterations,
        )
        for name in workloads
    }
    points = [
        _evaluate(
            ac, am, phi, beta, workloads, time_scale, n_iterations,
            slowdown_budget, baselines,
        )
        for ac, am, phi, beta in itertools.product(
            alpha_core_grid, alpha_mem_grid, phi_grid, beta_grid
        )
    ]
    return TuningResult(points=points, slowdown_budget=slowdown_budget)
