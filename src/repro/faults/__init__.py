"""Fault injection and hardening primitives.

The robustness layer of the reproduction: seeded fault plans
(:mod:`~repro.faults.injector`), faulty monitor/actuator/meter wrappers
(:mod:`~repro.faults.wrappers`), bounded retry with capped backoff
(:mod:`~repro.faults.retry`) and the controller health record
(:mod:`~repro.faults.health`).

See the "Fault model & degradation ladder" section of
``docs/architecture.md`` for how the hardened controller composes these.
"""

from repro.faults.health import ControlHealth
from repro.faults.injector import (
    FAULT_KIND_RATES,
    FAULT_PROFILES,
    FaultInjector,
    FaultPlan,
    fault_profile,
)
from repro.faults.retry import BackoffState, RetryPolicy, call_with_retry
from repro.faults.wrappers import (
    FaultyCpuStat,
    FaultyGpuActuator,
    FaultyNvidiaSmi,
    LossyPowerMeter,
)

__all__ = [
    "FAULT_KIND_RATES",
    "FAULT_PROFILES",
    "BackoffState",
    "ControlHealth",
    "FaultInjector",
    "FaultPlan",
    "FaultyCpuStat",
    "FaultyGpuActuator",
    "FaultyNvidiaSmi",
    "LossyPowerMeter",
    "RetryPolicy",
    "call_with_retry",
    "fault_profile",
]
