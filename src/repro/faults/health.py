"""Controller-side fault/recovery bookkeeping.

:class:`ControlHealth` counts what the *hardened controller observed and
did* — distinct from the injector's counts of what was *injected*.  The
two views bracket the robustness story: every injected fault must show up
either as a controller reaction here (fallback, retry, skip, degradation)
or as a verified-and-corrected write, never as silent corruption.

Since the telemetry subsystem landed, the dataclass is a *view*: each
field is backed by exactly one telemetry counter (named by
:func:`counter_name`), the controller increments those counters, and
``GreenGpuController.health`` materializes this record from them on
access.  The dataclass API and its serialize round-trip are unchanged —
only the storage moved.

The record rides on :class:`~repro.runtime.metrics.RunResult` (which
re-exports this class) so chaos benchmarks can assert on it and the CLI
can print it in the run summary.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class ControlHealth:
    """Counters of faults seen and degradations taken during one run."""

    monitor_faults: int = 0      # queries that raised MonitorError
    actuation_faults: int = 0    # frequency writes failed after all retries
    retries: int = 0             # individual retry attempts that were needed
    fallbacks: int = 0           # ticks served from the last good sample
    skipped_ticks: int = 0       # ticks with no usable data at all
    degraded_entries: int = 0    # watchdog escalations to the safe state
    recoveries: int = 0          # returns from the safe state
    frozen_divisions: int = 0    # tier-1 updates suppressed while degraded

    @property
    def total_events(self) -> int:
        """All recorded events, across every counter."""
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def degraded(self) -> bool:
        """True if the run ended inside the watchdog's safe state."""
        return self.degraded_entries > self.recoveries

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "ControlHealth":
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in data.items() if k in known})


#: Every ControlHealth field, in declaration order.
HEALTH_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(ControlHealth))


def counter_name(field: str) -> str:
    """The telemetry counter backing one :class:`ControlHealth` field.

    This mapping is the single place the controller's health counters
    are defined: the controller increments ``ctrl_<field>_total`` and
    the ``health`` view reads the same counters back, so the legacy
    dataclass and the exported metrics can never disagree.
    """
    return f"ctrl_{field}_total"
