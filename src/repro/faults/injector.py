"""Deterministic, seeded fault injection for the simulated testbed.

The paper's daemon ran against 2012-era hardware where ``nvidia-smi``
reads stall, ``nvidia-settings`` writes get silently rejected, thermal
events pin the clocks, and the WattsUp meters drop 1 Hz samples.  The
simulated testbed is perfect by construction, so this module recreates
those failure modes *on purpose*:

- a :class:`FaultPlan` declares per-decision-point fault rates (and,
  optionally, trace-driven device-stall episodes at fixed times);
- a :class:`FaultInjector` turns the plan into a seeded PCG64 draw
  stream, one uniform draw per decision point, so any run is
  bit-reproducible for a given seed;
- every injected fault becomes a telemetry event and a
  ``faults_injected_total{kind=...}`` counter bump (plus the legacy
  ``fault_<kind>`` channel on the bound
  :class:`~repro.sim.trace.TraceRecorder`), so chaos tests can prove no
  injected fault was silently lost.  :attr:`FaultInjector.counts` is a
  view over those counters — the telemetry registry is the only place
  injected faults are tallied.

The injector itself never touches a device; the wrappers in
:mod:`repro.faults.wrappers` consult it at each monitor query /
frequency write / meter sample and act on its verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

from repro.errors import ConfigError
from repro.seeding import spawn_seed
from repro.telemetry import NOOP, MetricsRegistry

#: Every fault kind the injector can fire, mapped to its plan rate field.
FAULT_KIND_RATES: dict[str, str] = {
    "gpu_monitor_timeout": "monitor_timeout_rate",
    "gpu_monitor_drop": "monitor_drop_rate",
    "gpu_monitor_freeze": "monitor_freeze_rate",
    "cpu_monitor_timeout": "monitor_timeout_rate",
    "cpu_monitor_drop": "monitor_drop_rate",
    "cpu_monitor_freeze": "monitor_freeze_rate",
    "actuator_reject": "actuator_reject_rate",
    "actuator_ignore": "actuator_ignore_rate",
    "actuator_offby": "actuator_offby_rate",
    "device_stall": "device_stall_rate",
    "meter_sample_loss": "meter_loss_rate",
}


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject into one run.

    All ``*_rate`` fields are per-decision-point probabilities in
    [0, 1]: each monitor query, frequency write or meter sample consumes
    one draw per applicable kind.  ``stall_episodes`` adds trace-driven
    thermal-throttle episodes ``(start_s, duration_s)`` on top of the
    rate-driven ones; during an episode the GPU clocks are pinned to
    their floors and frequency writes are ignored.
    """

    seed: int = 0
    monitor_timeout_rate: float = 0.0
    monitor_drop_rate: float = 0.0
    monitor_freeze_rate: float = 0.0
    actuator_reject_rate: float = 0.0
    actuator_ignore_rate: float = 0.0
    actuator_offby_rate: float = 0.0
    device_stall_rate: float = 0.0
    device_stall_duration_s: float = 5.0
    meter_loss_rate: float = 0.0
    stall_episodes: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                v = getattr(self, f.name)
                if not 0.0 <= v <= 1.0:
                    raise ConfigError(f"{f.name} must be in [0, 1], got {v}")
        if self.device_stall_duration_s <= 0.0:
            raise ConfigError("device stall duration must be positive")
        for episode in self.stall_episodes:
            start, duration = episode
            if start < 0.0 or duration <= 0.0:
                raise ConfigError(f"bad stall episode {episode}")

    @property
    def any_faults(self) -> bool:
        """True if this plan can ever inject anything."""
        if self.stall_episodes:
            return True
        return any(
            getattr(self, f.name) > 0.0
            for f in fields(self)
            if f.name.endswith("_rate")
        )

    def rate_for(self, kind: str) -> float:
        """Probability of fault ``kind`` at one decision point."""
        try:
            return getattr(self, FAULT_KIND_RATES[kind])
        except KeyError:
            raise ConfigError(f"unknown fault kind {kind!r}") from None

    def for_node(self, node_id: int, *path: int) -> "FaultPlan":
        """This plan re-seeded for one node of a larger simulation.

        The child seed comes from :func:`repro.seeding.spawn_seed`, so
        sibling nodes get decorrelated draw streams (a ``seed + i``
        derivation would hand adjacent nodes near-identical fault
        schedules).  Rates and episodes are unchanged.
        """
        return replace(self, seed=spawn_seed(self.seed, node_id, *path))


#: Named fault profiles for the CLI's ``--faults`` flag.  Rates cover
#: monitors and the actuator; "moderate" is the 5-10 % band the chaos
#: robustness benchmark pins.
FAULT_PROFILES: dict[str, dict[str, float]] = {
    "light": dict(
        monitor_timeout_rate=0.02,
        monitor_freeze_rate=0.01,
        actuator_reject_rate=0.02,
        actuator_ignore_rate=0.01,
        meter_loss_rate=0.02,
    ),
    "moderate": dict(
        monitor_timeout_rate=0.05,
        monitor_drop_rate=0.02,
        monitor_freeze_rate=0.03,
        actuator_reject_rate=0.05,
        actuator_ignore_rate=0.03,
        actuator_offby_rate=0.02,
        device_stall_rate=0.005,
        meter_loss_rate=0.05,
    ),
    "heavy": dict(
        monitor_timeout_rate=0.12,
        monitor_drop_rate=0.05,
        monitor_freeze_rate=0.08,
        actuator_reject_rate=0.12,
        actuator_ignore_rate=0.08,
        actuator_offby_rate=0.05,
        device_stall_rate=0.01,
        meter_loss_rate=0.10,
    ),
}


def fault_profile(name: str, seed: int = 0) -> FaultPlan:
    """Build the named :class:`FaultPlan` profile (seeded)."""
    try:
        rates = FAULT_PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown fault profile {name!r}; choose from {sorted(FAULT_PROFILES)}"
        ) from None
    return FaultPlan(seed=seed, **rates)


class FaultInjector:
    """Seeded fault oracle consulted by the faulty device/monitor wrappers.

    One injector drives one run.  It is bound to the run's sim clock
    (for event timestamps and trace-driven episode scheduling) and
    optionally to its :class:`~repro.sim.trace.TraceRecorder` at
    controller attach time.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._clock = None
        self._recorder = None
        self._actuator = None
        self._telemetry = NOOP
        # Injection tallies must survive a disabled telemetry backend, so
        # they fall back to a private registry (same single-definition
        # principle as the controller's health counters).
        self._metrics = MetricsRegistry()
        self._counters: dict[str, object] = {}

    # -- wiring ----------------------------------------------------------------

    def bind(self, clock=None, recorder=None, telemetry=None) -> None:
        """Attach the run's clock, trace recorder, and telemetry backend.

        Trace-driven stall episodes from the plan are scheduled on the
        clock here (episodes already in the past are skipped).
        """
        if clock is not None:
            self._clock = clock
            for start, duration in self.plan.stall_episodes:
                if start < clock.now:
                    continue
                clock.at(
                    start,
                    lambda t, d=duration: self._begin_scheduled_stall(t, d),
                    name="fault-stall-episode",
                )
        if recorder is not None:
            self._recorder = recorder
        if telemetry is not None and telemetry.enabled:
            self._telemetry = telemetry
            self._metrics = telemetry.registry
            self._counters = {}

    def _counter(self, kind: str):
        counter = self._counters.get(kind)
        if counter is None:
            telemetry = self._telemetry
            if telemetry.enabled:
                counter = telemetry.counter("faults_injected_total", kind=kind)
            else:
                counter = self._metrics.counter("faults_injected_total",
                                                kind=kind)
            self._counters[kind] = counter
        return counter

    def attach_actuator(self, actuator) -> None:
        """Register the faulty GPU actuator (target of stall episodes)."""
        self._actuator = actuator

    def _begin_scheduled_stall(self, t: float, duration: float) -> None:
        if self._actuator is not None:
            self.record("device_stall")
            self._actuator.begin_stall(duration)

    @property
    def now(self) -> float:
        """Current simulated time (0.0 before a clock is bound)."""
        return self._clock.now if self._clock is not None else 0.0

    # -- the draw stream -------------------------------------------------------

    def fire(self, kind: str) -> bool:
        """Draw once for fault ``kind``; record and count it on a hit.

        A draw is consumed even when the rate is nonzero and misses, so
        the stream depends only on the seed and the call sequence.
        """
        rate = self.plan.rate_for(kind)
        if rate <= 0.0:
            return False
        if self._rng.random() >= rate:
            return False
        self.record(kind)
        return True

    def record(self, kind: str) -> None:
        """Count one injected fault; log it as a telemetry event and on
        the trace recorder."""
        self._counter(kind).inc()
        self._telemetry.event("fault_injected", kind=kind, t_sim=self.now)
        if self._recorder is not None:
            self._recorder.record(f"fault_{kind}", self.now, 1.0)

    @property
    def counts(self) -> dict[str, int]:
        """Injected-fault tallies by kind (a view over telemetry counters)."""
        return {
            kind: int(counter.value)
            for kind, counter in sorted(self._counters.items())
            if counter.value
        }

    @property
    def total_injected(self) -> int:
        """Total faults injected so far, across all kinds."""
        return sum(self.counts.values())
