"""Retry-with-capped-backoff for flaky actuations and reads.

The paper's daemon shelled out to ``nvidia-settings`` for every frequency
write; on the real testbed those writes occasionally fail and the fix is
simply to try again.  :func:`call_with_retry` packages that: bounded
attempts, exponential backoff capped at a ceiling.

Backoff semantics under simulation: controller callbacks run *inside* a
sim-clock dispatch and must not advance time, so the computed backoff is
not slept — it is reported to the ``on_retry`` hook (the controller logs
it to the trace), exactly what a real daemon would sleep.  The attempt
bound, not the sleep, is what the simulated robustness results depend on.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import ActuationError, ConfigError, MonitorError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry schedule with capped exponential backoff."""

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("need at least one attempt")
        if self.base_backoff_s < 0.0 or self.max_backoff_s < 0.0:
            raise ConfigError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff factor must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Backoff after failed attempt ``attempt`` (0-based), capped."""
        return min(
            self.base_backoff_s * self.backoff_factor ** attempt,
            self.max_backoff_s,
        )


def call_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy | None = None,
    on_retry: Callable[[int, float, Exception], None] | None = None,
    retry_on: tuple[type[Exception], ...] = (ActuationError, MonitorError),
) -> tuple[Any, int]:
    """Call ``fn`` with up to ``policy.max_attempts`` attempts.

    Returns ``(result, retries_used)``.  After each failed attempt that
    leaves budget, ``on_retry(attempt, backoff_s, exc)`` is invoked; when
    the budget is exhausted the last exception propagates.  Exceptions
    outside ``retry_on`` propagate immediately (a programming error is
    not a transient fault).
    """
    policy = policy or RetryPolicy()
    last: Exception | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn(), attempt
        except retry_on as exc:
            last = exc
            if attempt + 1 < policy.max_attempts and on_retry is not None:
                on_retry(attempt, policy.backoff_s(attempt), exc)
    assert last is not None
    raise last
