"""Retry-with-capped-backoff for flaky actuations and reads.

The paper's daemon shelled out to ``nvidia-settings`` for every frequency
write; on the real testbed those writes occasionally fail and the fix is
simply to try again.  :func:`call_with_retry` packages that: bounded
attempts, exponential backoff capped at a ceiling.

Backoff semantics under simulation: controller callbacks run *inside* a
sim-clock dispatch and must not advance time, so the computed backoff is
not slept — it is reported to the ``on_retry`` hook (the controller logs
it to the trace), exactly what a real daemon would sleep.  The attempt
bound, not the sleep, is what the simulated robustness results depend on.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import ActuationError, ConfigError, MonitorError

#: Accepted values of :attr:`RetryPolicy.jitter`.
JITTER_MODES = ("none", "decorrelated")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry schedule with capped exponential backoff.

    ``jitter="decorrelated"`` replaces the deterministic exponential
    schedule with decorrelated jitter (*Exponential Backoff and Jitter*,
    AWS Architecture Blog): each backoff is drawn uniformly from
    ``[base, 3 * previous]`` and capped.  A fleet of workers that all
    failed at the same instant then retries at spread-out times instead
    of stampeding in lockstep.  With ``jitter_seed`` set, the draw
    stream is deterministic (per ``salt``, typically the job name), so
    tests and resumed runs can pin the exact schedule.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    jitter: str = "none"
    jitter_seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("need at least one attempt")
        if self.base_backoff_s < 0.0 or self.max_backoff_s < 0.0:
            raise ConfigError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff factor must be >= 1")
        if self.jitter not in JITTER_MODES:
            raise ConfigError(
                f"unknown jitter mode {self.jitter!r}; choose from {JITTER_MODES}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Jitter-free backoff after failed attempt ``attempt`` (0-based)."""
        return min(
            self.base_backoff_s * self.backoff_factor ** attempt,
            self.max_backoff_s,
        )

    def backoff_state(self, salt: str | None = None) -> "BackoffState":
        """A fresh per-retry-loop backoff sequence (see :class:`BackoffState`).

        ``salt`` decorrelates seeded streams that share one policy object
        — the supervisor passes the job name, so two jobs retrying under
        the same seeded policy still draw distinct schedules.
        """
        return BackoffState(self, salt=salt)


class BackoffState:
    """One retry loop's backoff sequence; stateful because decorrelated
    jitter draws each interval from the *previous* one."""

    def __init__(self, policy: RetryPolicy, salt: str | None = None) -> None:
        self.policy = policy
        self._attempt = 0
        self._prev = policy.base_backoff_s
        if policy.jitter == "none":
            self._rng = None
        elif policy.jitter_seed is None:
            self._rng = random.Random()
        else:
            material = f"{policy.jitter_seed}:{salt or ''}".encode()
            digest = hashlib.sha256(material).digest()
            self._rng = random.Random(int.from_bytes(digest[:8], "big"))

    def next_backoff(self) -> float:
        """The backoff to wait after the next failed attempt."""
        attempt = self._attempt
        self._attempt += 1
        if self._rng is None:
            return self.policy.backoff_s(attempt)
        low = self.policy.base_backoff_s
        high = max(self._prev * 3.0, low)
        backoff = min(self._rng.uniform(low, high), self.policy.max_backoff_s)
        self._prev = backoff
        return backoff


def call_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy | None = None,
    on_retry: Callable[[int, float, Exception], None] | None = None,
    retry_on: tuple[type[Exception], ...] = (ActuationError, MonitorError),
) -> tuple[Any, int]:
    """Call ``fn`` with up to ``policy.max_attempts`` attempts.

    Returns ``(result, retries_used)``.  After each failed attempt that
    leaves budget, ``on_retry(attempt, backoff_s, exc)`` is invoked; when
    the budget is exhausted the last exception propagates.  Exceptions
    outside ``retry_on`` propagate immediately (a programming error is
    not a transient fault).
    """
    policy = policy or RetryPolicy()
    backoff = policy.backoff_state()
    last: Exception | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn(), attempt
        except retry_on as exc:
            last = exc
            backoff_s = backoff.next_backoff()
            if attempt + 1 < policy.max_attempts and on_retry is not None:
                on_retry(attempt, backoff_s, exc)
    assert last is not None
    raise last
