"""Fault-injecting wrappers for monitors, the GPU actuator and the meters.

Each wrapper mirrors the :class:`~repro.monitors.noise.NoisyNvidiaSmi`
pattern: it wraps the clean component, consults the shared
:class:`~repro.faults.injector.FaultInjector` at every decision point,
and otherwise passes through untouched.  With a zero-rate plan every
wrapper is bit-transparent.

Fault semantics, matched to how the real tools fail:

- **query timeout** — the read never completes, so the underlying
  counter window is *not* consumed; the next successful read covers the
  union of both windows (exactly like re-running a stalled
  ``nvidia-smi``);
- **dropped sample** — the read completed but the data was lost in
  transit, so the window *is* consumed;
- **frozen counters** — the hardware counters did not advance over the
  window, so the reading comes back as zero utilization at full
  plausibility (the classic frozen-counter signature);
- **rejected write** — ``nvidia-settings`` returns an error
  (:class:`~repro.errors.ActuationError`);
- **ignored write** — the tool reports success but the clocks never
  change (only post-write verification can catch this);
- **off-by-one write** — the clocks land one ladder level below the
  request;
- **thermal-throttle episode** — the device pins both domains to their
  floor frequencies and ignores writes for the episode's duration;
- **meter sample loss** — a 1 Hz WattsUp log entry disappears (the
  exact energy integral is unaffected — sample loss corrupts the *log*,
  not physics).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ActuationError, MonitorError
from repro.faults.injector import FaultInjector
from repro.monitors.cpustat import CpuStat, CpuUtilizationSample
from repro.monitors.nvsmi import GpuUtilizationSample, NvidiaSmi
from repro.sim.gpu import GpuDevice
from repro.sim.meter import PowerMeter


class FaultyNvidiaSmi:
    """``nvidia-smi`` facade with injected timeouts, drops and freezes."""

    def __init__(self, inner: NvidiaSmi, injector: FaultInjector):
        self._inner = inner
        self._injector = injector

    def query(self) -> GpuUtilizationSample:
        if self._injector.fire("gpu_monitor_timeout"):
            raise MonitorError("injected: nvidia-smi query timed out")
        sample = self._inner.query()
        if self._injector.fire("gpu_monitor_drop"):
            raise MonitorError("injected: GPU utilization sample dropped")
        if self._injector.fire("gpu_monitor_freeze"):
            return GpuUtilizationSample(
                t=sample.t,
                window_s=sample.window_s,
                u_core=0.0,
                u_mem=0.0,
                f_core=sample.f_core,
                f_mem=sample.f_mem,
            )
        return sample

    def peek_clocks(self) -> tuple[float, float]:
        return self._inner.peek_clocks()


class FaultyCpuStat:
    """``/proc/stat`` facade with injected timeouts, drops and freezes."""

    def __init__(self, inner: CpuStat, injector: FaultInjector):
        self._inner = inner
        self._injector = injector

    def query(self) -> CpuUtilizationSample:
        if self._injector.fire("cpu_monitor_timeout"):
            raise MonitorError("injected: /proc/stat read timed out")
        sample = self._inner.query()
        if self._injector.fire("cpu_monitor_drop"):
            raise MonitorError("injected: CPU utilization sample dropped")
        if self._injector.fire("cpu_monitor_freeze"):
            return CpuUtilizationSample(
                t=sample.t, window_s=sample.window_s, u=0.0, f=sample.f
            )
        return sample


class FaultyGpuActuator:
    """``nvidia-settings`` surface with rejected/ignored/skewed writes.

    Also owns the transient thermal-throttle state: while an episode is
    active both domains are pinned at their floor frequencies and every
    write is silently ignored (the controller's post-write verification
    is what detects this).
    """

    def __init__(self, gpu: GpuDevice, injector: FaultInjector):
        self._gpu = gpu
        self._injector = injector
        self._stall_until = -1.0
        injector.attach_actuator(self)

    # -- thermal-throttle episodes ---------------------------------------------

    @property
    def stalled(self) -> bool:
        """True while a throttle episode pins the clocks."""
        return self._injector.now < self._stall_until

    def begin_stall(self, duration_s: float) -> None:
        """Start a throttle episode: pin both domains to their floors."""
        self._stall_until = self._injector.now + duration_s
        spec = self._gpu.spec
        self._gpu.set_frequencies(spec.core_ladder.floor, spec.mem_ladder.floor)

    # -- nvidia-settings surface -----------------------------------------------

    def set_frequencies(self, f_core: float, f_mem: float) -> None:
        if self.stalled:
            return  # pinned: the write is swallowed by the throttled device
        injector = self._injector
        if injector.fire("device_stall"):
            self.begin_stall(injector.plan.device_stall_duration_s)
            return
        if injector.fire("actuator_reject"):
            raise ActuationError("injected: frequency write rejected")
        if injector.fire("actuator_ignore"):
            return
        if injector.fire("actuator_offby"):
            spec = self._gpu.spec
            core = min(spec.core_ladder.index_of(f_core) + 1, len(spec.core_ladder) - 1)
            mem = min(spec.mem_ladder.index_of(f_mem) + 1, len(spec.mem_ladder) - 1)
            self._gpu.set_frequencies(spec.core_ladder[core], spec.mem_ladder[mem])
            return
        self._gpu.set_frequencies(f_core, f_mem)


class LossyPowerMeter(PowerMeter):
    """WattsUp-style meter whose 1 Hz sample log drops entries.

    The continuous energy integral is the simulation's ground truth and
    is never touched; only the discrete ``samples`` log loses entries,
    mirroring the real instrument's serial-link hiccups.
    """

    def __init__(
        self,
        name: str,
        sources: list[Callable[[], float]],
        injector: FaultInjector,
        overhead_w: float = 0.0,
        efficiency: float = 1.0,
        sample_period_s: float = 1.0,
    ):
        super().__init__(
            name,
            sources,
            overhead_w=overhead_w,
            efficiency=efficiency,
            sample_period_s=sample_period_s,
        )
        self._injector = injector
        self.dropped_samples = 0

    def accumulate(self, dt: float) -> None:
        before = len(self.samples)
        super().accumulate(dt)
        kept = []
        for sample in self.samples[before:]:
            if self._injector.fire("meter_sample_loss"):
                self.dropped_samples += 1
            else:
                kept.append(sample)
        self.samples[before:] = kept
