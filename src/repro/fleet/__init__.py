"""Fleet-scale simulation: thousands of GreenGPU nodes under one budget.

The fleet layer sits above everything shipped so far: it instantiates N
heterogeneous nodes from the hardware catalog
(:mod:`repro.extensions.hardware_table`), runs each node's own
:class:`~repro.core.controller.GreenGpuController` on the fast-path
engine, and coordinates them under a datacenter power budget:

- :mod:`repro.fleet.allocators` — the :class:`Allocator` protocol and
  the uniform-cap, proportional-share, and efficiency-weighted budget
  allocators (all conserving: per-tick grants never exceed the budget);
- :mod:`repro.fleet.scenario` — first-class fleet scenarios (diurnal
  load waves, rolling power-cap changes, correlated rack-level fault
  bursts), all derived deterministically from one seed;
- :mod:`repro.fleet.coordinator` — the :class:`PowerCapCoordinator`:
  demand-model-driven cap planning with slack reclamation;
- :mod:`repro.fleet.node` — one simulated node: a real
  :class:`~repro.sim.platform.HeteroSystem` plus controller, with power
  caps enforced as frequency-ladder ceilings;
- :mod:`repro.fleet.sim` / :mod:`repro.fleet.shard` — the
  :class:`FleetSim` orchestrator riding the harness's spawn-isolated
  workers for sharded execution, with fleet-level telemetry merge.

Entry points: ``greengpu fleet`` (CLI) and
:func:`repro.fleet.sim.run_fleet` (API).
"""

from repro.fleet.allocators import (
    ALLOCATORS,
    Allocator,
    NodeDemand,
    get_allocator,
)
from repro.fleet.coordinator import CapPlan, PowerCapCoordinator
from repro.fleet.node import FleetNode, ceiling_for_cap
from repro.fleet.scenario import SCENARIOS, FleetScenario, make_scenario
from repro.fleet.sim import FleetResult, FleetSim, run_fleet

__all__ = [
    "ALLOCATORS",
    "Allocator",
    "CapPlan",
    "FleetNode",
    "FleetResult",
    "FleetScenario",
    "FleetSim",
    "NodeDemand",
    "PowerCapCoordinator",
    "SCENARIOS",
    "ceiling_for_cap",
    "get_allocator",
    "make_scenario",
    "run_fleet",
]
