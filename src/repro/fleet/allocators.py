"""Power-budget allocators: one datacenter budget, N node caps.

Every coordination tick the :class:`~repro.fleet.coordinator.
PowerCapCoordinator` hands an allocator the fleet's per-node demands and
the global budget; the allocator returns one wall-power cap per node.
All allocators share the same two-phase shape:

1. **floors first** — every node is granted its ``floor_w``, the
   worst-case wall draw with its GPU pinned to the ladder floors.  A cap
   below that is unenforceable (no frequency ceiling honours it while
   the node works), so a budget below the sum of floors is rejected as
   infeasible up front.
2. **headroom by policy** — the remaining budget is divided as headroom
   above the floors.  This is where the allocators differ, and where
   slack reclamation happens: a node whose demand sits at its floor (an
   idle node) donates its share of the pool, and bursting nodes borrow
   it, subject to the policy.

Conservation is a hard invariant, not a hope: grants are drawn from a
monotonically decreasing remainder (plus a final float-settlement pass),
so ``sum(caps) <= budget_w`` holds exactly at every tick — the property
test in ``tests/properties/test_prop_fleet_budget.py`` pins it for all
allocators under rolling budget changes and fault bursts.

The three policies:

- **uniform-cap** — equal headroom to every node (water-filling on the
  node headrooms), blind to demand.  The classic static rack budget;
  the baseline the demand-aware policies are judged against.
- **proportional-share** — headroom in proportion to requested demand
  above floor.  Demand-aware but efficiency-blind.
- **efficiency-weighted** — requested headroom granted greedily in
  descending marginal perf/W order (the "sweet-spot" chase of the
  energy-efficiency literature): watts go where they buy the most
  throughput, so under a tight budget the fleet drains its backlog —
  and races the whole datacenter to idle — soonest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.errors import ConfigError

#: Float-settlement slack: grants are corrected until the overshoot is
#: below this (absolute watts across the whole fleet).
_EPS_W = 1e-9


@dataclass(frozen=True)
class NodeDemand:
    """One node's standing at a coordination tick, in wall watts.

    ``floor_w``/``peak_w`` bound the enforceable cap range (GPU ladder
    floor / everything at peak, worst case).  ``demand_w`` is the wall
    power the node's demand model asks for this tick — ``floor_w`` when
    idle, up to ``peak_w`` when bursting.  ``efficiency`` is the node's
    marginal performance per watt of headroom (flop/s per W), the
    quantity the efficiency-weighted allocator ranks by.
    """

    node_id: int
    floor_w: float
    peak_w: float
    demand_w: float
    efficiency: float = 0.0

    def __post_init__(self) -> None:
        if self.floor_w <= 0.0:
            raise ConfigError(f"node {self.node_id}: floor_w must be positive")
        if self.peak_w < self.floor_w:
            raise ConfigError(
                f"node {self.node_id}: peak_w {self.peak_w:g} below "
                f"floor_w {self.floor_w:g}"
            )
        if not self.floor_w <= self.demand_w <= self.peak_w:
            raise ConfigError(
                f"node {self.node_id}: demand_w {self.demand_w:g} outside "
                f"[floor_w, peak_w]"
            )
        if self.efficiency < 0.0:
            raise ConfigError(
                f"node {self.node_id}: efficiency must be non-negative"
            )

    @property
    def headroom_w(self) -> float:
        """Cap range above the floor (watts)."""
        return self.peak_w - self.floor_w

    @property
    def want_w(self) -> float:
        """Requested headroom above the floor (watts)."""
        return self.demand_w - self.floor_w


class Allocator(Protocol):
    """The allocator protocol: demands + budget in, per-node caps out."""

    name: str

    def allocate(self, demands: Sequence[NodeDemand],
                 budget_w: float) -> list[float]:
        """Per-node caps (watts), aligned with ``demands``.

        Must satisfy ``demands[i].floor_w <= caps[i] <= demands[i].peak_w``
        for every node and ``sum(caps) <= budget_w`` exactly.
        """
        ...


def spare_budget(demands: Sequence[NodeDemand], budget_w: float) -> float:
    """Budget left after every node's floor, or raise if infeasible."""
    floors = sum(d.floor_w for d in demands)
    if budget_w < floors - _EPS_W:
        raise ConfigError(
            f"budget {budget_w:.1f} W below the fleet floor {floors:.1f} W "
            f"({len(demands)} nodes): no allocation can enforce it"
        )
    return max(0.0, budget_w - floors)


def _settle(caps: list[float], demands: Sequence[NodeDemand],
            budget_w: float) -> list[float]:
    """Exact-conservation pass: trim any float overshoot, floors intact."""
    excess = sum(caps) - budget_w
    if excess <= 0.0:
        return caps
    order = sorted(range(len(caps)),
                   key=lambda i: caps[i] - demands[i].floor_w, reverse=True)
    for i in order:
        if excess <= 0.0:
            break
        take = min(excess, caps[i] - demands[i].floor_w)
        caps[i] -= take
        excess -= take
    return caps


def _water_level(headrooms: Sequence[float], extra_w: float) -> float:
    """Largest uniform headroom ``h`` with ``sum(min(h, hr)) <= extra_w``."""
    level = 0.0
    remaining = extra_w
    pending = sorted(headrooms)
    for index, hr in enumerate(pending):
        nodes_left = len(pending) - index
        step = (hr - level) * nodes_left
        if step >= remaining:
            return level + remaining / nodes_left
        remaining -= step
        level = hr
    return level  # every node saturated; leftover budget stays unallocated


class UniformCapAllocator:
    """Equal headroom for every node, demand-blind (the static baseline)."""

    name = "uniform-cap"

    def allocate(self, demands: Sequence[NodeDemand],
                 budget_w: float) -> list[float]:
        extra = spare_budget(demands, budget_w)
        level = _water_level([d.headroom_w for d in demands], extra)
        caps = [d.floor_w + min(level, d.headroom_w) for d in demands]
        return _settle(caps, demands, budget_w)


class ProportionalShareAllocator:
    """Headroom in proportion to requested demand above the floor."""

    name = "proportional-share"

    def allocate(self, demands: Sequence[NodeDemand],
                 budget_w: float) -> list[float]:
        extra = spare_budget(demands, budget_w)
        wants = [d.want_w for d in demands]
        total_want = sum(wants)
        if total_want <= 0.0:
            caps = [d.floor_w for d in demands]
        elif total_want <= extra:
            # Everyone's request fits; the leftover slack stays banked.
            caps = [d.floor_w + want for d, want in zip(demands, wants)]
        else:
            share = extra / total_want
            caps = [d.floor_w + want * share
                    for d, want in zip(demands, wants)]
        return _settle(caps, demands, budget_w)


class EfficiencyWeightedAllocator:
    """Requested headroom granted in descending marginal perf/W order.

    Watts go to the nodes where a watt of headroom buys the most
    throughput; ties break on node id so the allocation is a pure
    function of its inputs.  Nodes requesting nothing donate their
    entire share — slack reclamation falls out of the greedy order.
    """

    name = "efficiency-weighted"

    def allocate(self, demands: Sequence[NodeDemand],
                 budget_w: float) -> list[float]:
        remaining = spare_budget(demands, budget_w)
        caps = [d.floor_w for d in demands]
        order = sorted(range(len(demands)),
                       key=lambda i: (-demands[i].efficiency,
                                      demands[i].node_id))
        for i in order:
            if remaining <= 0.0:
                break
            grant = min(demands[i].want_w, remaining)
            caps[i] += grant
            remaining -= grant
        return _settle(caps, demands, budget_w)


#: Allocator registry, keyed by policy name (CLI ``--allocator`` values).
ALLOCATORS: dict[str, Allocator] = {
    allocator.name: allocator
    for allocator in (UniformCapAllocator(), ProportionalShareAllocator(),
                      EfficiencyWeightedAllocator())
}


def get_allocator(name: str) -> Allocator:
    """Look up an allocator by policy name."""
    try:
        return ALLOCATORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown allocator {name!r}; choose from {sorted(ALLOCATORS)}"
        ) from None
