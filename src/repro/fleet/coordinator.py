"""The datacenter power-cap coordinator (the fleet's planning brain).

On every coordination tick the :class:`PowerCapCoordinator` turns one
global power budget into one wall-power cap per node.  It is
**demand-model-driven**: rather than reading measured power back from
thousands of node simulations (which would serialize the fleet through
the coordinator every tick), it runs a central *fluid* model of the
fleet — per-node backlog in peak-seconds of work, arrivals from the
scenario's load wave, service speed linear in granted headroom, burst
racks degraded to floor speed — and allocates against the modeled
demand.  The output is a complete :class:`CapPlan`: every node's cap at
every tick, fixed before any node simulation starts.

That open-loop split is what makes the fleet shardable and cacheable:
a node simulation depends only on (scenario, node id, its cap column),
never on its siblings, so shards can run in spawn-isolated workers and
node results can be content-addressed.  The price is model error — the
fluid model's backlog drifts from the simulated one — but caps are
enforced as conservative frequency ceilings, so model error costs only
efficiency, never a violation.

Slack reclamation falls out of the demand model: an idle node's demand
collapses to its floor, the allocator sees the donated headroom, and
bursting nodes borrow it the same tick.  The plan keeps allocating past
the scenario end (the *drain horizon*) while modeled backlog remains,
so demand-aware allocators keep steering the budget at exactly the time
the fleet is racing to idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.extensions.hardware_table import hardware_entry
from repro.fleet.allocators import Allocator, NodeDemand, get_allocator
from repro.fleet.node import NodePowerProfile
from repro.fleet.scenario import FleetScenario

#: Modeled backlog below this (seconds of peak work) counts as drained.
_BACKLOG_EPS_S = 1e-9

#: The drain horizon is bounded: planning stops after this many times the
#: scenario's own window count even if modeled backlog remains (the node
#: simulations then finish draining under their final caps).
_MAX_DRAIN_FACTOR = 6


@dataclass(frozen=True)
class TickStats:
    """Coordinator bookkeeping for one tick (audit + property tests)."""

    tick: int
    t: float
    budget_w: float
    total_cap_w: float
    total_demand_w: float
    backlogged_nodes: int
    donated_slack_w: float

    def to_dict(self) -> dict:
        return {
            "tick": self.tick, "t": self.t, "budget_w": self.budget_w,
            "total_cap_w": self.total_cap_w,
            "total_demand_w": self.total_demand_w,
            "backlogged_nodes": self.backlogged_nodes,
            "donated_slack_w": self.donated_slack_w,
        }


@dataclass(frozen=True)
class CapPlan:
    """A complete fleet cap schedule: ``caps[tick][node_id]`` in watts.

    ``scheduled_windows`` ticks cover the scenario duration plus the
    drain horizon; every node simulation executes the full schedule.
    """

    allocator: str
    interval_s: float
    scenario_windows: int
    caps: tuple[tuple[float, ...], ...]
    stats: tuple[TickStats, ...] = field(repr=False)

    @property
    def n_ticks(self) -> int:
        return len(self.caps)

    @property
    def n_nodes(self) -> int:
        return len(self.caps[0]) if self.caps else 0

    def caps_for(self, node_id: int) -> list[float]:
        """One node's cap column across all scheduled ticks."""
        return [row[node_id] for row in self.caps]


class PowerCapCoordinator:
    """Plans a :class:`CapPlan` for one scenario + allocator (module docs)."""

    def __init__(self, scenario: FleetScenario,
                 allocator: Allocator | str) -> None:
        self.scenario = scenario
        self.allocator = (get_allocator(allocator)
                          if isinstance(allocator, str) else allocator)
        # One profile per hardware class; nodes share by catalog key.
        by_key = {
            key: NodePowerProfile.from_config(hardware_entry(key).make_config())
            for key, _ in scenario.hardware_mix
        }
        self.profiles: list[NodePowerProfile] = [
            by_key[scenario.node_hardware(node_id)]
            for node_id in range(scenario.n_nodes)
        ]
        self._total_floor_w = sum(p.floor_w for p in self.profiles)
        self._total_headroom_w = sum(p.peak_w - p.floor_w
                                     for p in self.profiles)
        self._burst_racks = frozenset(scenario.burst_racks())

    # -- the budget ------------------------------------------------------------

    def budget_at(self, t: float) -> float:
        """Global budget in watts at time ``t``: the fleet's floor draw
        plus the scheduled fraction of its total headroom."""
        frac = self.scenario.budget_frac_at(t)
        return self._total_floor_w + frac * self._total_headroom_w

    # -- the fluid demand model ------------------------------------------------

    def _in_burst(self, node_id: int, t: float) -> bool:
        if self.scenario.rack_of(node_id) not in self._burst_racks:
            return False
        return any(start <= t < start + duration
                   for start, duration
                   in self.scenario.fault_burst_windows)

    def _demand(self, node_id: int, backlog_s: float,
                t: float) -> NodeDemand:
        """One node's modeled demand: the cap that clears its backlog
        within one window, floor when idle or stalled by a burst."""
        profile = self.profiles[node_id]
        if backlog_s <= _BACKLOG_EPS_S or self._in_burst(node_id, t):
            # Idle (or pinned to floor clocks by a thermal burst): any
            # headroom would be wasted, so the node donates it all.
            demand_w = profile.floor_w
        else:
            wanted_speed = min(1.0, backlog_s
                               / self.scenario.coordination_interval_s)
            span = 1.0 - profile.floor_speed
            share = (0.0 if span <= 0.0
                     else (wanted_speed - profile.floor_speed) / span)
            share = min(1.0, max(0.0, share))
            demand_w = (profile.floor_w
                        + share * (profile.peak_w - profile.floor_w))
        return NodeDemand(node_id=node_id, floor_w=profile.floor_w,
                          peak_w=profile.peak_w, demand_w=demand_w,
                          efficiency=profile.efficiency)

    def plan(self) -> CapPlan:
        """Run the fluid model tick by tick and emit the full cap plan."""
        scenario = self.scenario
        interval = scenario.coordination_interval_s
        n_windows = scenario.n_windows
        max_ticks = max(n_windows, 1) * _MAX_DRAIN_FACTOR
        backlogs = [0.0] * scenario.n_nodes
        rows: list[tuple[float, ...]] = []
        stats: list[TickStats] = []

        tick = 0
        while tick < max_ticks:
            t = tick * interval
            if tick < n_windows:
                for node_id in range(scenario.n_nodes):
                    backlogs[node_id] += scenario.load(node_id, tick) * interval
            elif all(b <= _BACKLOG_EPS_S for b in backlogs):
                break  # scenario over and the modeled fleet is drained

            demands = [self._demand(node_id, backlogs[node_id], t)
                       for node_id in range(scenario.n_nodes)]
            budget_w = self.budget_at(t)
            caps = self.allocator.allocate(demands, budget_w)
            if len(caps) != len(demands):
                raise ConfigError(
                    f"allocator {self.allocator.name!r} returned "
                    f"{len(caps)} caps for {len(demands)} nodes"
                )
            rows.append(tuple(caps))

            donated = sum(d.peak_w - d.demand_w
                          for d in demands if d.want_w <= 0.0)
            stats.append(TickStats(
                tick=tick, t=t, budget_w=budget_w,
                total_cap_w=sum(caps),
                total_demand_w=sum(d.demand_w for d in demands),
                backlogged_nodes=sum(1 for b in backlogs
                                     if b > _BACKLOG_EPS_S),
                donated_slack_w=donated,
            ))

            for node_id, cap_w in enumerate(caps):
                profile = self.profiles[node_id]
                speed = (profile.floor_speed if self._in_burst(node_id, t)
                         else profile.speed_at(cap_w))
                backlogs[node_id] = max(
                    0.0, backlogs[node_id] - speed * interval
                )
            tick += 1

        return CapPlan(
            allocator=self.allocator.name,
            interval_s=interval,
            scenario_windows=n_windows,
            caps=tuple(rows),
            stats=tuple(stats),
        )
