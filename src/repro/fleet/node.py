"""One fleet node: a real simulated testbed under a power cap.

A :class:`FleetNode` is the full GreenGPU stack in miniature — a
:class:`~repro.sim.platform.HeteroSystem` built from a hardware-catalog
entry, driven by its own :class:`~repro.core.controller.GreenGpuController`
in frequency-scaling-only mode (tier 1 makes no sense for independent
nodes), optionally wrapped in the node's seeded fault injector.

The coordinator talks to nodes in **watts**; nodes enforce caps in
**ladder levels**.  :func:`ceiling_for_cap` is the translation: the
least-restrictive frequency-ladder pair whose *worst-case* wall draw
(:func:`~repro.extensions.hardware_table.wall_power_bound_w`) fits the
cap.  Because the bound is a true upper bound, a node honouring its
ceiling can never exceed its cap — violation ticks measure that
guarantee rather than hope for it.

:class:`NodePowerProfile` is the coordinator-facing summary of a node
class: floor/peak wall watts, marginal perf per watt of headroom (what
the efficiency-weighted allocator ranks by), and the modeled service
speed as a function of the granted cap (what the coordinator's fluid
demand model runs on).  It needs only the :class:`TestbedConfig`, so the
coordinator can plan a 1000-node fleet without instantiating a single
simulated device.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from repro.core.config import GreenGpuConfig
from repro.core.controller import GreenGpuController, TierMode
from repro.errors import ConfigError
from repro.extensions.hardware_table import (
    floor_wall_power_w,
    hardware_entry,
    peak_wall_power_w,
    wall_power_bound_w,
)
from repro.faults.injector import FaultInjector
from repro.sim.activity import KernelActivity, PhaseDemand
from repro.sim.platform import HeteroSystem, TestbedConfig

#: Slack when comparing measured window power against the cap: the
#: ceiling bound is conservative, so anything past this is a real breach.
_VIOLATION_EPS_W = 1e-6

#: Meter sample logs are bounded on fleet nodes — a thousand nodes each
#: keeping every 1 Hz window would dominate memory for data nobody reads.
_FLEET_SAMPLE_LOG_CAP = 8


def ceiling_for_cap(config: TestbedConfig,
                    cap_w: float) -> tuple[int, int]:
    """Least-restrictive ladder ceiling whose worst-case draw fits the cap.

    Walks the diagonal of the (core, mem) ladder grid from the peak pair
    down — the WMA scaler's own preference order under pressure — and
    returns the first pair whose :func:`wall_power_bound_w` is within
    ``cap_w``.  Falls back to the ladder floors if even they exceed the
    cap (the allocators never grant below the floor bound, so that case
    means the cap itself was infeasible).
    """
    n_core = len(config.gpu.core_ladder)
    n_mem = len(config.gpu.mem_ladder)
    for k in range(max(n_core, n_mem)):
        pair = (min(k, n_core - 1), min(k, n_mem - 1))
        if wall_power_bound_w(config, *pair) <= cap_w + _VIOLATION_EPS_W:
            return pair
    return (n_core - 1, n_mem - 1)


@dataclass(frozen=True)
class NodePowerProfile:
    """Coordinator-facing power summary of one node class (see module docs)."""

    floor_w: float
    peak_w: float
    #: Marginal throughput per watt of headroom (flop/s per W).
    efficiency: float
    #: GPU service speed at the ladder floors, as a fraction of peak.
    floor_speed: float

    @classmethod
    def from_config(cls, config: TestbedConfig) -> "NodePowerProfile":
        floor_w = floor_wall_power_w(config)
        peak_w = peak_wall_power_w(config)
        gpu = config.gpu
        floor_speed = gpu.core_ladder.floor / gpu.core_ladder.peak
        headroom = max(peak_w - floor_w, 1e-9)
        gained = gpu.peak_compute_rate * (1.0 - floor_speed)
        return cls(floor_w=floor_w, peak_w=peak_w,
                   efficiency=gained / headroom, floor_speed=floor_speed)

    def speed_at(self, cap_w: float) -> float:
        """Modeled service speed (fraction of peak) under a wall cap.

        Linear in granted headroom between the floor and peak bounds —
        the fluid analogue of clocks scaling with the power budget.
        """
        if self.peak_w <= self.floor_w:
            return 1.0
        share = (cap_w - self.floor_w) / (self.peak_w - self.floor_w)
        share = min(1.0, max(0.0, share))
        return self.floor_speed + (1.0 - self.floor_speed) * share


@dataclass(frozen=True)
class NodeResult:
    """One node's measured outcome, JSON-ready for shard payloads."""

    node_id: int
    rack: int
    hardware: str
    energy_j: float
    #: Simulated time at which the node's backlog fully drained.
    busy_end_s: float
    #: Wall power of the drained node at its resting clocks (idle-tail rate).
    idle_power_w: float
    violation_ticks: int
    windows: int
    submitted_work_s: float
    faults_injected: int
    degraded_entries: int

    def to_dict(self) -> dict:
        return asdict(self)


class FleetNode:
    """One simulated node executing its cap schedule (see module docs)."""

    def __init__(self, node_id: int, scenario) -> None:
        self.node_id = node_id
        self.scenario = scenario
        self.hardware = scenario.node_hardware(node_id)
        self.config = hardware_entry(self.hardware).make_config(
            sample_log_cap=_FLEET_SAMPLE_LOG_CAP
        )
        self.system = HeteroSystem(self.config)
        plan = scenario.fault_plan_for(node_id)
        self.injector = FaultInjector(plan) if plan is not None else None
        self.controller = GreenGpuController(
            mode=TierMode.SCALING_ONLY,
            config=GreenGpuConfig(scaling_interval_s=3.0,
                                  ondemand_interval_s=1.0),
            faults=self.injector,
        )
        self.controller.attach(self.system)
        self._compute_frac, self._mem_frac = scenario.node_mix(node_id)
        self._cap_w = float("inf")
        self._violation_ticks = 0
        self._windows_run = 0
        self._submitted_work_s = 0.0

    # -- cap enforcement -------------------------------------------------------

    @property
    def cap_w(self) -> float:
        return self._cap_w

    def apply_cap(self, cap_w: float) -> tuple[int, int]:
        """Translate a wall-power cap into the controller's ladder ceiling."""
        if cap_w <= 0.0:
            raise ConfigError(f"node {self.node_id}: cap must be positive")
        self._cap_w = cap_w
        ceiling = ceiling_for_cap(self.config, cap_w)
        self.controller.set_level_ceiling(*ceiling)
        return ceiling

    # -- workload --------------------------------------------------------------

    def submit_window(self, load: float, window_s: float) -> float:
        """Queue one coordination window's offered work on the GPU.

        ``load`` is the offered utilization in [0, 1]: the kernel is
        sized to keep the GPU's bound resource busy for ``load *
        window_s`` seconds *at peak clocks*.  Under a cap it takes
        longer, and the surplus persists naturally as FIFO backlog.
        """
        duration = load * window_s
        if duration <= 0.0:
            return 0.0
        gpu = self.config.gpu
        self.system.gpu.submit_kernel(KernelActivity(
            [PhaseDemand(
                flops=duration * self._compute_frac * gpu.peak_compute_rate,
                bytes=duration * self._mem_frac * gpu.peak_bandwidth,
            )],
            label=f"fleet-n{self.node_id}",
        ))
        self._submitted_work_s += duration
        return duration

    def run_window(self, window_s: float) -> float:
        """Advance one coordination window; tally a cap violation if the
        window's average wall power exceeded the cap in force."""
        e0 = self.system.total_energy_j
        self.system.run_for(window_s)
        avg_w = (self.system.total_energy_j - e0) / window_s
        if avg_w > self._cap_w + _VIOLATION_EPS_W:
            self._violation_ticks += 1
        self._windows_run += 1
        return avg_w

    def drain(self, timeout_s: float) -> None:
        """Run the backlog to empty (the node's race to idle)."""
        self.system.run_until_devices_idle(timeout_s=timeout_s)

    # -- the full schedule -----------------------------------------------------

    def run(self, caps_w: Sequence[float],
            drain_timeout_s: float | None = None) -> NodeResult:
        """Execute one cap per coordination window, then drain and settle.

        ``caps_w`` may extend past the scenario's own windows (the
        coordinator's drain horizon); arrivals stop at the scenario end
        but caps keep being enforced while the backlog drains.
        """
        scenario = self.scenario
        window_s = scenario.coordination_interval_s
        for window, cap_w in enumerate(caps_w):
            self.apply_cap(cap_w)
            if window < scenario.n_windows:
                self.submit_window(scenario.load(self.node_id, window),
                                   window_s)
            self.run_window(window_s)
        if drain_timeout_s is None:
            drain_timeout_s = 40.0 * scenario.duration_s + 120.0
        self.drain(drain_timeout_s)
        return self.finish()

    def finish(self) -> NodeResult:
        """Detach, flush the meters, and report the node's outcome."""
        self.system.finalize_meters()
        health = self.controller.health
        self.controller.detach()
        return NodeResult(
            node_id=self.node_id,
            rack=self.scenario.rack_of(self.node_id),
            hardware=self.hardware,
            energy_j=self.system.total_energy_j,
            busy_end_s=self.system.now,
            idle_power_w=self.system.idle_system_power(),
            violation_ticks=self._violation_ticks,
            windows=self._windows_run,
            submitted_work_s=self._submitted_work_s,
            faults_injected=(self.injector.total_injected
                             if self.injector is not None else 0),
            degraded_entries=health.degraded_entries,
        )
