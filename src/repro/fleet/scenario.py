"""Fleet scenarios: first-class workload generators for fleet runs.

A :class:`FleetScenario` is a frozen, JSON-round-trippable description
of everything time-varying in a fleet simulation:

- the **diurnal load wave** — each node's offered load follows a raised
  cosine over the scenario's day length, with per-rack "timezone"
  offsets and per-node phase jitter so racks peak at different times
  (that staggering is what gives the coordinator slack to reclaim);
- **rolling power-cap changes** — the datacenter budget fraction can
  step at scheduled times mid-run (a grid event, a demand-response
  window);
- **correlated rack-level fault bursts** — a deterministic subset of
  racks suffers thermal-throttle stall episodes in declared windows,
  injected through the existing :mod:`repro.faults` machinery.

Everything derives from ``seed`` through
:func:`repro.seeding.spawn_seed`, keyed by *stable identifiers* (node
id, rack id, window index) rather than iteration order — so a node's
hardware class, workload mix, load trace and fault stream are identical
no matter which shard simulates it, which is what makes sharded and
inline fleet runs bit-comparable and node results content-addressable.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, replace

from repro.errors import ConfigError
from repro.extensions.hardware_table import HARDWARE_TABLE
from repro.faults.injector import FAULT_PROFILES, FaultPlan
from repro.seeding import spawn_seed, spawn_uniform

# Derivation salts: one per per-node random quantity, so streams keyed
# by the same node id never collide across dimensions.
_SALT_HW = 1
_SALT_MIX = 2
_SALT_PHASE = 3
_SALT_JITTER = 4
_SALT_BURST = 5
_SALT_FAULT = 6

#: Default hardware mix for generated scenarios (entry key -> weight).
DEFAULT_HARDWARE_MIX: tuple[tuple[str, float], ...] = (
    ("paper-8800gtx", 0.40),
    ("paper-8800gtx-dvfs", 0.15),
    ("efficiency-node", 0.25),
    ("highperf-node", 0.20),
)


@dataclass(frozen=True)
class FleetScenario:
    """Deterministic description of one fleet run (see module docs)."""

    name: str
    n_nodes: int
    nodes_per_rack: int = 20
    duration_s: float = 240.0
    coordination_interval_s: float = 12.0
    day_length_s: float = 240.0
    load_floor: float = 0.08
    load_peak: float = 0.95
    budget_frac: float = 0.5
    #: Scheduled budget-fraction changes: (time_s, new_frac), ascending.
    budget_changes: tuple[tuple[float, float], ...] = ()
    hardware_mix: tuple[tuple[str, float], ...] = DEFAULT_HARDWARE_MIX
    fault_profile: str = "none"
    #: Correlated rack-level stall-burst windows: (start_s, duration_s).
    fault_burst_windows: tuple[tuple[float, float], ...] = ()
    #: Fraction of racks hit by each burst wave.
    fault_burst_rack_frac: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError("a fleet needs at least one node")
        if self.nodes_per_rack < 1:
            raise ConfigError("nodes_per_rack must be >= 1")
        if self.duration_s <= 0.0 or self.day_length_s <= 0.0:
            raise ConfigError("durations must be positive")
        if not 0.0 < self.coordination_interval_s <= self.duration_s:
            raise ConfigError(
                "coordination interval must be in (0, duration_s]"
            )
        if not 0.0 <= self.load_floor <= self.load_peak <= 1.0:
            raise ConfigError("need 0 <= load_floor <= load_peak <= 1")
        for frac in (self.budget_frac,
                     *(frac for _, frac in self.budget_changes)):
            if not 0.0 <= frac <= 1.0:
                raise ConfigError(f"budget fraction {frac:g} outside [0, 1]")
        times = [t for t, _ in self.budget_changes]
        if times != sorted(times):
            raise ConfigError("budget_changes must be in ascending time order")
        if not self.hardware_mix:
            raise ConfigError("hardware_mix must name at least one entry")
        for key, weight in self.hardware_mix:
            if key not in HARDWARE_TABLE:
                raise ConfigError(f"unknown hardware entry {key!r} in mix")
            if weight <= 0.0:
                raise ConfigError(f"hardware mix weight for {key!r} must be "
                                  "positive")
        if self.fault_profile not in ("none", *FAULT_PROFILES):
            raise ConfigError(
                f"unknown fault profile {self.fault_profile!r}; choose from "
                f"{['none', *sorted(FAULT_PROFILES)]}"
            )
        for start, duration in self.fault_burst_windows:
            if start < 0.0 or duration <= 0.0:
                raise ConfigError(
                    f"bad fault burst window ({start:g}, {duration:g})"
                )
        if not 0.0 <= self.fault_burst_rack_frac <= 1.0:
            raise ConfigError("fault_burst_rack_frac must be in [0, 1]")

    # -- topology -------------------------------------------------------------

    @property
    def n_racks(self) -> int:
        return -(-self.n_nodes // self.nodes_per_rack)  # ceil division

    def rack_of(self, node_id: int) -> int:
        return node_id // self.nodes_per_rack

    @property
    def n_windows(self) -> int:
        """Coordination windows inside the scenario duration."""
        return -(-int(round(self.duration_s * 1e9))
                 // int(round(self.coordination_interval_s * 1e9)))

    def window_start(self, window: int) -> float:
        return window * self.coordination_interval_s

    # -- budget schedule ------------------------------------------------------

    def budget_frac_at(self, t: float) -> float:
        """Budget fraction in force at time ``t`` (rolling cap changes)."""
        frac = self.budget_frac
        for change_t, change_frac in self.budget_changes:
            if t >= change_t:
                frac = change_frac
            else:
                break
        return frac

    # -- per-node deterministic draws ----------------------------------------

    def node_hardware(self, node_id: int) -> str:
        """Hardware-catalog key for one node (weighted, seeded draw)."""
        total = sum(weight for _, weight in self.hardware_mix)
        draw = spawn_uniform(self.seed, _SALT_HW, node_id) * total
        for key, weight in self.hardware_mix:
            draw -= weight
            if draw < 0.0:
                return key
        return self.hardware_mix[-1][0]

    def node_mix(self, node_id: int) -> tuple[float, float]:
        """(compute_frac, mem_frac) of the node's kernels, max pinned at 1.

        Half the fleet leans compute-bound, half memory-bound, with the
        bound side saturated so one second of offered work takes one
        second at peak clocks.
        """
        side = spawn_uniform(self.seed, _SALT_MIX, node_id)
        depth = spawn_uniform(self.seed, _SALT_MIX, node_id, 1)
        if side < 0.5:
            return 1.0, 0.30 + 0.60 * depth
        return 0.40 + 0.55 * depth, 1.0

    def node_phase(self, node_id: int) -> float:
        """Diurnal phase offset: rack timezone + per-node jitter, in days."""
        rack_share = self.rack_of(node_id) / max(1, self.n_racks)
        jitter = spawn_uniform(self.seed, _SALT_PHASE, node_id)
        return 0.35 * rack_share + 0.06 * jitter

    def load(self, node_id: int, window: int) -> float:
        """Offered load in [0, 1] for one node over one window."""
        t = self.window_start(window)
        phase = t / self.day_length_s + self.node_phase(node_id)
        wave = 0.5 * (1.0 - math.cos(2.0 * math.pi * phase))
        base = self.load_floor + (self.load_peak - self.load_floor) * wave
        jitter = 0.85 + 0.30 * spawn_uniform(self.seed, _SALT_JITTER,
                                             node_id, window)
        return min(1.0, max(0.0, base * jitter))

    # -- correlated fault bursts ----------------------------------------------

    def burst_racks(self) -> tuple[int, ...]:
        """Racks hit by the stall-burst waves (deterministic subset)."""
        if not self.fault_burst_windows:
            return ()
        return tuple(
            rack for rack in range(self.n_racks)
            if spawn_uniform(self.seed, _SALT_BURST, rack)
            < self.fault_burst_rack_frac
        )

    def node_in_burst(self, node_id: int) -> bool:
        return self.rack_of(node_id) in self.burst_racks()

    def fault_plan_for(self, node_id: int) -> FaultPlan | None:
        """The node's seeded fault plan, or None for a fault-free node.

        Rate-driven faults follow the named profile; nodes in burst
        racks additionally get every burst window as a trace-driven
        stall episode (thermal throttle: clocks pinned to the floors).
        Seeds spawn per node, so sibling nodes draw decorrelated
        streams regardless of sharding.
        """
        rates = (dict(FAULT_PROFILES[self.fault_profile])
                 if self.fault_profile != "none" else {})
        episodes = (self.fault_burst_windows
                    if self.node_in_burst(node_id) else ())
        if not rates and not episodes:
            return None
        return FaultPlan(seed=spawn_seed(self.seed, _SALT_FAULT, node_id),
                         stall_episodes=tuple(episodes), **rates)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form (shard kwargs, cache keys, run manifests)."""
        data = asdict(self)
        data["budget_changes"] = [list(c) for c in self.budget_changes]
        data["hardware_mix"] = [list(m) for m in self.hardware_mix]
        data["fault_burst_windows"] = [list(w)
                                       for w in self.fault_burst_windows]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FleetScenario":
        data = dict(data)
        data["budget_changes"] = tuple(
            (float(t), float(f)) for t, f in data.get("budget_changes", ())
        )
        data["hardware_mix"] = tuple(
            (str(k), float(w)) for k, w in data["hardware_mix"]
        )
        data["fault_burst_windows"] = tuple(
            (float(s), float(d))
            for s, d in data.get("fault_burst_windows", ())
        )
        return cls(**data)


# -- named scenario generators -------------------------------------------------


def diurnal(n_nodes: int = 1000, seed: int = 0, **overrides) -> FleetScenario:
    """The baseline diurnal wave: staggered racks, steady budget."""
    return FleetScenario(name="diurnal", n_nodes=n_nodes, seed=seed,
                         **overrides)


def rolling_caps(n_nodes: int = 1000, seed: int = 0,
                 **overrides) -> FleetScenario:
    """Diurnal wave plus two scheduled budget steps mid-run.

    The budget tightens sharply in the middle third (a demand-response
    window) and partially recovers — the coordinator must re-plan every
    node's cap on the fly.
    """
    base = FleetScenario(name="rolling-caps", n_nodes=n_nodes, seed=seed,
                         **overrides)
    third = base.duration_s / 3.0
    return replace(base, budget_changes=(
        (third, max(0.0, base.budget_frac * 0.5)),
        (2.0 * third, min(1.0, base.budget_frac * 0.9)),
    ))


def fault_bursts(n_nodes: int = 1000, seed: int = 0,
                 **overrides) -> FleetScenario:
    """Diurnal wave plus two correlated rack-level throttle bursts.

    A quarter of the racks stall (clocks pinned to the floors) in two
    windows; the affected nodes can't use their caps, so the coordinator
    reclaims that headroom for the healthy racks.
    """
    base = FleetScenario(name="fault-bursts", n_nodes=n_nodes, seed=seed,
                         **overrides)
    win = base.coordination_interval_s
    return replace(base, fault_burst_windows=(
        (base.duration_s * 0.25, 1.5 * win),
        (base.duration_s * 0.60, 1.5 * win),
    ))


#: Named scenario registry (CLI ``--scenario`` values).
SCENARIOS = {
    "diurnal": diurnal,
    "rolling-caps": rolling_caps,
    "fault-bursts": fault_bursts,
}


def make_scenario(name: str, n_nodes: int, seed: int = 0,
                  **overrides) -> FleetScenario:
    """Build a named scenario with overrides applied."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return factory(n_nodes=n_nodes, seed=seed, **overrides)
