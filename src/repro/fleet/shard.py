"""Spawn-safe fleet shard: simulate one contiguous slice of the fleet.

:func:`run_shard` is a harness job target (``repro.fleet.shard:run_shard``)
— plain JSON kwargs in, JSON payload out — so a fleet run can ride the
supervised harness's spawn-isolated workers, resume after a kill, and
serve unchanged shards from the content-addressed result cache.

Each shard rebuilds the scenario from its dict form and **re-plans the
cap schedule locally**: the coordinator's fluid model is deterministic
and cheap relative to the node simulations, so recomputing it per shard
keeps the job kwargs small (no thousand-node cap matrix in every spec)
while guaranteeing every shard enforces the identical plan.  Shard
results therefore depend only on ``(scenario, allocator, node range)``
— exactly what the cache key fingerprints.

With a ``telemetry_dir`` the shard exports rack-labelled ``fleet_*``
instruments under ``<dir>/workers/<shard>/`` — the per-worker half of
the :mod:`repro.telemetry.merge` contract.  Only ``fleet_*`` names are
exported (per-node controller telemetry stays off): a thousand nodes'
tick-level gauges would swamp the merge, and the fleet-level questions
(energy by rack, violations by rack, drain tail) need only aggregates.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigError
from repro.fleet.coordinator import CapPlan, PowerCapCoordinator
from repro.fleet.node import FleetNode
from repro.fleet.scenario import FleetScenario
from repro.runtime.batch_executor import FLEET_SCALAR_REASON


def shard_name(node_lo: int, node_hi: int) -> str:
    """Harness job name for one shard (stable, filesystem-safe)."""
    return f"nodes-{node_lo:05d}-{node_hi:05d}"


def simulate_nodes(scenario: FleetScenario, plan: CapPlan, node_lo: int,
                   node_hi: int) -> list[dict[str, Any]]:
    """Run nodes ``[node_lo, node_hi)`` against the plan; dict results.

    This is the single simulation path: the inline runner and the
    spawned shard worker both call it, so sharded and inline fleet runs
    are bit-identical by construction.
    """
    results = []
    for node_id in range(node_lo, node_hi):
        node = FleetNode(node_id, scenario)
        results.append(node.run(plan.caps_for(node_id)).to_dict())
    return results


def export_fleet_worker(nodes: list[dict[str, Any]], telemetry_dir: str,
                        name: str, allocator: str) -> None:
    """Export one worker's rack-labelled ``fleet_*`` instruments.

    Shared by the spawned shard workers and the inline runner so a
    merged telemetry directory looks the same either way: per-rack
    violation/fault counters plus node energy and drain-end histograms.
    """
    from repro.telemetry import Telemetry, export_worker

    # The Telemetry roots at the ambient trace context — propagated via
    # TRACEPARENT_ENV by the harness for spawned shards and set by the
    # inline runner around this call — so the shard's span stitches into
    # the fleet run's trace identically either way.
    telemetry = Telemetry(base_labels={"allocator": allocator})
    with telemetry.span("fleet_shard", shard=name):
        for record in nodes:
            rack = str(record["rack"])
            telemetry.counter("fleet_nodes_total", rack=rack).inc()
            telemetry.counter("fleet_cap_violation_ticks_total",
                              rack=rack).inc(record["violation_ticks"])
            telemetry.counter("fleet_faults_injected_total",
                              rack=rack).inc(record["faults_injected"])
            telemetry.histogram("fleet_node_energy_j",
                                rack=rack).observe(record["energy_j"])
            telemetry.histogram("fleet_node_busy_end_s",
                                rack=rack).observe(record["busy_end_s"])
    export_worker(telemetry, telemetry_dir, name)


def run_shard(scenario: dict[str, Any], allocator: str, node_lo: int,
              node_hi: int,
              telemetry_dir: str | None = None) -> dict[str, Any]:
    """Harness target: simulate one node range of the fleet (module docs)."""
    if not 0 <= node_lo < node_hi:
        raise ConfigError(f"bad shard range [{node_lo}, {node_hi})")
    scn = FleetScenario.from_dict(scenario)
    if node_hi > scn.n_nodes:
        raise ConfigError(
            f"shard range [{node_lo}, {node_hi}) exceeds fleet size "
            f"{scn.n_nodes}"
        )
    plan = PowerCapCoordinator(scn, allocator).plan()
    nodes = simulate_nodes(scn, plan, node_lo, node_hi)
    if telemetry_dir is not None:
        export_fleet_worker(nodes, telemetry_dir,
                            shard_name(node_lo, node_hi), allocator)
    # Fleet nodes build their own capped, fault-injected systems, which
    # the lockstep batch engine excludes by construction — record why so
    # payload consumers can tell this apart from a batched sweep shard.
    return {"allocator": allocator, "node_lo": node_lo, "node_hi": node_hi,
            "engine": FLEET_SCALAR_REASON, "nodes": nodes}
