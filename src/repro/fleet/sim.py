"""The fleet orchestrator: plan centrally, simulate in shards, merge.

:class:`FleetSim` glues the layers together for one (scenario,
allocator) pair:

1. validate the hardware catalog (one bad entry would be a silent
   fleet-wide error a thousand times over);
2. plan the full cap schedule with the
   :class:`~repro.fleet.coordinator.PowerCapCoordinator`;
3. simulate every node against its cap column — inline for small
   fleets, or as supervised harness shards (spawn isolation, resume,
   content-addressed caching) when a run directory is given;
4. merge the per-node results into one :class:`FleetResult`.

Fleet energy accounting (the number the benchmark gates)
--------------------------------------------------------

Nodes finish draining their backlog at different times, but a
datacenter's meters don't stop when one node goes idle: until the *last*
node finishes, every drained node keeps burning its idle wall power.
:func:`aggregate` therefore equalizes all nodes to the fleet makespan —
``energy + idle_power * (makespan - busy_end)`` per node — so a policy
that finishes the whole fleet sooner genuinely banks the idle-tail
energy it saved.  That is the fleet-scale version of racing to idle,
and it is exactly the margin by which the demand-aware allocators beat
the static uniform cap under a tight budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ConfigError
from repro.extensions.hardware_table import validate_all
from repro.fleet.allocators import Allocator, get_allocator
from repro.fleet.coordinator import CapPlan, PowerCapCoordinator
from repro.fleet.scenario import FleetScenario
from repro.fleet.shard import shard_name, simulate_nodes

#: Default wall-clock kill deadline per shard job (generous: a shard is
#: hundreds of sequential node sims).
_SHARD_TIMEOUT_S = 1800.0


@dataclass(frozen=True)
class FleetResult:
    """Merged outcome of one fleet run (one scenario, one allocator)."""

    allocator: str
    scenario: str
    n_nodes: int
    n_racks: int
    scenario_windows: int
    plan_ticks: int
    #: Simulated time at which the last node drained its backlog.
    makespan_s: float
    #: Sum of per-node metered energy, each to its own drain end.
    measured_energy_j: float
    #: Idle-tail equalization: drained nodes idling until the makespan.
    idle_tail_energy_j: float
    violation_ticks: int
    faults_injected: int
    submitted_work_s: float
    per_rack: tuple[dict[str, Any], ...]
    nodes: tuple[dict[str, Any], ...] = field(repr=False)
    plan_stats: tuple[dict[str, Any], ...] = field(repr=False)

    @property
    def energy_j(self) -> float:
        """Fleet wall energy to the makespan (the gated headline number)."""
        return self.measured_energy_j + self.idle_tail_energy_j

    def summary(self) -> dict[str, Any]:
        """JSON-ready summary (no per-node records)."""
        return {
            "allocator": self.allocator,
            "scenario": self.scenario,
            "n_nodes": self.n_nodes,
            "n_racks": self.n_racks,
            "scenario_windows": self.scenario_windows,
            "plan_ticks": self.plan_ticks,
            "makespan_s": self.makespan_s,
            "energy_j": self.energy_j,
            "measured_energy_j": self.measured_energy_j,
            "idle_tail_energy_j": self.idle_tail_energy_j,
            "violation_ticks": self.violation_ticks,
            "faults_injected": self.faults_injected,
            "submitted_work_s": self.submitted_work_s,
            "per_rack": list(self.per_rack),
        }

    def to_dict(self, include_nodes: bool = False) -> dict[str, Any]:
        data = self.summary()
        data["plan_stats"] = list(self.plan_stats)
        if include_nodes:
            data["nodes"] = list(self.nodes)
        return data


def aggregate(scenario: FleetScenario, plan: CapPlan,
              node_records: Sequence[dict[str, Any]]) -> FleetResult:
    """Fold per-node records into one :class:`FleetResult` (module docs)."""
    if len(node_records) != scenario.n_nodes:
        raise ConfigError(
            f"fleet merge got {len(node_records)} node results for "
            f"{scenario.n_nodes} nodes (missing or duplicated shard?)"
        )
    nodes = sorted(node_records, key=lambda r: r["node_id"])
    makespan = max(r["busy_end_s"] for r in nodes)
    measured = sum(r["energy_j"] for r in nodes)
    idle_tail = sum(r["idle_power_w"] * (makespan - r["busy_end_s"])
                    for r in nodes)

    racks: dict[int, dict[str, Any]] = {}
    for record in nodes:
        rack = racks.setdefault(record["rack"], {
            "rack": record["rack"], "nodes": 0, "energy_j": 0.0,
            "violation_ticks": 0, "faults_injected": 0,
            "busy_end_s": 0.0,
        })
        rack["nodes"] += 1
        rack["energy_j"] += (record["energy_j"] + record["idle_power_w"]
                             * (makespan - record["busy_end_s"]))
        rack["violation_ticks"] += record["violation_ticks"]
        rack["faults_injected"] += record["faults_injected"]
        rack["busy_end_s"] = max(rack["busy_end_s"], record["busy_end_s"])

    return FleetResult(
        allocator=plan.allocator,
        scenario=scenario.name,
        n_nodes=scenario.n_nodes,
        n_racks=scenario.n_racks,
        scenario_windows=plan.scenario_windows,
        plan_ticks=plan.n_ticks,
        makespan_s=makespan,
        measured_energy_j=measured,
        idle_tail_energy_j=idle_tail,
        violation_ticks=sum(r["violation_ticks"] for r in nodes),
        faults_injected=sum(r["faults_injected"] for r in nodes),
        submitted_work_s=sum(r["submitted_work_s"] for r in nodes),
        per_rack=tuple(racks[rack] for rack in sorted(racks)),
        nodes=tuple(nodes),
        plan_stats=tuple(s.to_dict() for s in plan.stats),
    )


class FleetSim:
    """One fleet run, inline or sharded (see module docstring)."""

    def __init__(
        self,
        scenario: FleetScenario,
        allocator: Allocator | str,
        *,
        shards: int = 1,
        parallel: int = 1,
        run_dir: str | None = None,
        resume: bool = False,
        telemetry_dir: str | None = None,
        cache=None,
        shard_timeout_s: float = _SHARD_TIMEOUT_S,
    ) -> None:
        if shards < 1:
            raise ConfigError("shards must be >= 1")
        if shards > scenario.n_nodes:
            shards = scenario.n_nodes
        if shards > 1 and run_dir is None:
            raise ConfigError("sharded execution needs a run directory")
        validate_all()
        self.scenario = scenario
        self.allocator = (get_allocator(allocator)
                          if isinstance(allocator, str) else allocator)
        self.shards = shards
        self.parallel = parallel
        self.run_dir = run_dir
        self.resume = resume
        self.telemetry_dir = telemetry_dir
        self.cache = cache
        self.shard_timeout_s = shard_timeout_s
        self._plan: CapPlan | None = None
        #: Harness report of the last sharded run (None for inline runs).
        self.last_report = None

    def plan(self) -> CapPlan:
        """The coordinator's full cap schedule (computed once)."""
        if self._plan is None:
            coordinator = PowerCapCoordinator(self.scenario, self.allocator)
            self._plan = coordinator.plan()
        return self._plan

    def shard_ranges(self) -> list[tuple[int, int]]:
        """Contiguous node ranges, one per shard, covering the fleet."""
        n = self.scenario.n_nodes
        base, remainder = divmod(n, self.shards)
        ranges = []
        lo = 0
        for index in range(self.shards):
            hi = lo + base + (1 if index < remainder else 0)
            ranges.append((lo, hi))
            lo = hi
        return ranges

    def shard_specs(self) -> list:
        """Harness :class:`JobSpec` list for a supervised sharded run."""
        from repro.cache import job_key
        from repro.harness.job import JobSpec

        target = "repro.fleet.shard:run_shard"
        common: dict[str, Any] = {
            "scenario": self.scenario.to_dict(),
            "allocator": self.allocator.name,
        }
        if self.telemetry_dir is not None:
            common["telemetry_dir"] = self.telemetry_dir
        specs = []
        for lo, hi in self.shard_ranges():
            kwargs = {**common, "node_lo": lo, "node_hi": hi}
            specs.append(JobSpec(
                name=shard_name(lo, hi),
                target=target,
                kwargs=kwargs,
                timeout_s=self.shard_timeout_s,
                # A telemetry-exporting shard has filesystem side effects
                # a cache hit would silently skip; only plain shards key.
                cache_key=None if self.telemetry_dir is not None
                else job_key(target, kwargs),
            ))
        return specs

    def run(self, progress=None) -> FleetResult | None:
        """Execute the fleet; None if a sharded run was interrupted.

        Inline runs (no run directory) call the same
        :func:`~repro.fleet.shard.simulate_nodes` path the spawned shard
        workers use, so the two modes are bit-identical.  After a
        sharded run, :attr:`last_report` holds the harness report
        (errors, resume/cache counts); an interrupted or incomplete run
        returns None rather than a partial fleet.
        """
        plan = self.plan()
        if self.run_dir is None:
            records = simulate_nodes(self.scenario, plan, 0,
                                     self.scenario.n_nodes)
            return aggregate(self.scenario, plan, records)

        from repro.harness.supervisor import run_jobs

        result = run_jobs(
            self.shard_specs(), self.run_dir,
            parallel=self.parallel, resume=self.resume,
            progress=progress, cache=self.cache,
        )
        self.last_report = result.report
        if result.report.interrupted or not result.report.ok:
            return None
        records: list[dict[str, Any]] = []
        for payload in result.payloads.values():
            records.extend(payload["nodes"])
        return aggregate(self.scenario, plan, records)


def run_fleet(scenario: FleetScenario, allocator: Allocator | str,
              **kwargs: Any) -> FleetResult:
    """Convenience wrapper: build a :class:`FleetSim`, run it, return the
    merged result (raises if a sharded run did not complete)."""
    sim = FleetSim(scenario, allocator, **kwargs)
    result = sim.run()
    if result is None:
        report = sim.last_report
        detail = report.summary_line() if report is not None else "no report"
        raise ConfigError(f"fleet run did not complete: {detail}")
    return result
