"""Supervised job-execution harness.

The inner control loop (``repro.core``) is hardened against device
faults; this package hardens the *outer* evaluation layer against the
harness' own failure modes — a hung experiment, a crashing worker, a
``kill -9`` mid-suite.  It runs a DAG of named jobs with:

- per-job wall-clock **timeouts** and **retry with backoff** (reusing
  :class:`repro.faults.retry.RetryPolicy`), plus a **circuit breaker**
  that quarantines a repeatedly-failing job instead of sinking the run;
- **process isolation** via spawn-context :mod:`multiprocessing`
  workers, with optional parallel fan-out across independent jobs;
- a **write-ahead journal** (``journal.jsonl``, one fsynced record per
  state transition) and **atomic artifact writes**, so any interrupt
  leaves a consistent on-disk state;
- **resume**: replay the journal, skip jobs whose completed artifacts
  verify by content hash, re-run only the rest.

See ``docs/architecture.md`` ("The supervised suite harness") for the
job lifecycle state machine and the journal format.
"""

from repro.harness.job import JobOutcome, JobSpec, JobState, validate_dag
from repro.harness.journal import Journal, read_journal
from repro.harness.supervisor import (
    HarnessReport,
    HarnessResult,
    ProgressEvent,
    run_jobs,
    stderr_progress,
)
from repro.harness.worker import read_artifact, resolve_target

__all__ = [
    "JobSpec",
    "JobState",
    "JobOutcome",
    "validate_dag",
    "Journal",
    "read_journal",
    "HarnessReport",
    "HarnessResult",
    "ProgressEvent",
    "run_jobs",
    "stderr_progress",
    "read_artifact",
    "resolve_target",
]
