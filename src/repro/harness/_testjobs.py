"""Deterministic job targets for exercising the harness in tests.

These live in the package (not under ``tests/``) because spawned
workers import targets by dotted name, and ``tests`` is not guaranteed
to be importable from a fresh interpreter.  Cross-attempt state (for
"fail twice then succeed" shapes) goes through a caller-provided counter
file, since each isolated attempt starts in a fresh process.
"""

from __future__ import annotations

import os
import time
from typing import Any


def _bump_counter(state_path: str) -> int:
    """Increment (and return) a per-job attempt counter on disk."""
    count = 0
    if os.path.exists(state_path):
        with open(state_path, encoding="utf-8") as handle:
            count = int(handle.read().strip() or 0)
    count += 1
    # Attempts are strictly sequential per job, so a plain write is safe.
    with open(state_path, "w", encoding="utf-8") as handle:
        handle.write(str(count))
    return count


def ok(value: int = 1) -> dict[str, Any]:
    return {"value": value}


def boom(message: str = "boom") -> dict[str, Any]:
    raise RuntimeError(message)


def sleep_then_ok(seconds: float = 60.0, value: int = 2) -> dict[str, Any]:
    time.sleep(seconds)
    return {"value": value}


def flaky(state_path: str, fail_times: int = 1, value: int = 7) -> dict[str, Any]:
    """Raise on the first ``fail_times`` attempts, then succeed."""
    attempt = _bump_counter(state_path)
    if attempt <= fail_times:
        raise RuntimeError(f"flaky failure on attempt {attempt}")
    return {"value": value, "attempt": attempt}


def hang_then_ok(state_path: str, seconds: float = 60.0,
                 value: int = 3) -> dict[str, Any]:
    """Hang (to trip the timeout) on the first attempt, then succeed."""
    attempt = _bump_counter(state_path)
    if attempt <= 1:
        time.sleep(seconds)
    return {"value": value, "attempt": attempt}
