"""Job model for the supervised harness.

A :class:`JobSpec` names a unit of work by a *dotted target* —
``"package.module:function"`` plus JSON-serializable keyword arguments —
rather than by a closure, so the spawned worker process (and a resumed
run in a fresh interpreter) can reconstruct exactly the same call.  The
spec carries the job's robustness envelope: wall-clock timeout, retry
schedule, and DAG edges.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Any

from repro.errors import HarnessError
from repro.faults.retry import RetryPolicy

# Job names become artifact filenames; keep them filesystem-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._=-]*$")


def default_retry() -> RetryPolicy:
    """Harness default: three attempts, small capped backoff."""
    return RetryPolicy(max_attempts=3, base_backoff_s=0.05,
                       backoff_factor=2.0, max_backoff_s=1.0)


class JobState(enum.Enum):
    """Lifecycle states (see docs/architecture.md for the transitions)."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    QUARANTINED = "quarantined"          # circuit breaker: attempts exhausted
    SKIPPED_RESUMED = "skipped_resumed"  # verified artifact from a prior run
    SKIPPED_DEPENDENCY = "skipped_dependency"  # an upstream job did not succeed
    SKIPPED_CACHED = "skipped_cached"    # payload served by the result cache


#: States a job can end the run in.
TERMINAL_STATES = frozenset({
    JobState.SUCCEEDED,
    JobState.QUARANTINED,
    JobState.SKIPPED_RESUMED,
    JobState.SKIPPED_DEPENDENCY,
    JobState.SKIPPED_CACHED,
})

#: Terminal states that satisfy a dependency edge.
SATISFIED_STATES = frozenset({
    JobState.SUCCEEDED,
    JobState.SKIPPED_RESUMED,
    JobState.SKIPPED_CACHED,
})


@dataclass(frozen=True)
class JobSpec:
    """One named, isolated unit of work in the DAG."""

    name: str
    target: str                       # "package.module:function"
    kwargs: dict[str, Any] = field(default_factory=dict)
    timeout_s: float | None = 600.0   # wall-clock kill deadline per attempt
    retry: RetryPolicy = field(default_factory=default_retry)
    depends_on: tuple[str, ...] = ()
    # Content address of this job's payload (repro.cache.job_key); None
    # means the job is uncacheable (side effects, unfingerprintable args).
    cache_key: str | None = None
    # Explicit trace position for this job (a serialized traceparent,
    # see repro.telemetry.tracecontext).  None — the overwhelmingly
    # common case — lets the supervisor derive a deterministic child of
    # its own context, so serial and parallel runs agree; set it only to
    # graft the job under an externally-owned trace (the service does
    # this for served jobs).
    traceparent: str | None = None

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise HarnessError(
                f"job name {self.name!r} is not filesystem-safe "
                "(use letters, digits, '.', '_', '=', '-')"
            )
        module, sep, func = self.target.partition(":")
        if not sep or not module or not func:
            raise HarnessError(
                f"job {self.name!r}: target must be 'module:function', "
                f"got {self.target!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise HarnessError(f"job {self.name!r}: timeout_s must be positive")
        if self.traceparent is not None:
            from repro.telemetry.tracecontext import TraceContext
            if TraceContext.parse(self.traceparent) is None:
                raise HarnessError(
                    f"job {self.name!r}: invalid traceparent "
                    f"{self.traceparent!r}"
                )


@dataclass
class JobOutcome:
    """What happened to one job over the whole run."""

    name: str
    state: JobState = JobState.PENDING
    attempts: int = 0
    payload: Any = None
    error: str | None = None
    elapsed_s: float = 0.0
    artifact_path: str | None = None
    artifact_sha256: str | None = None


def validate_dag(specs: list[JobSpec]) -> list[JobSpec]:
    """Check names unique, edges known, graph acyclic; return topo order.

    The returned order is stable: among ready jobs, spec order wins, so
    a DAG of independent jobs runs in exactly the order it was declared
    (which keeps resumed and fresh runs byte-identical).
    """
    by_name: dict[str, JobSpec] = {}
    for spec in specs:
        if spec.name in by_name:
            raise HarnessError(f"duplicate job name {spec.name!r}")
        by_name[spec.name] = spec
    for spec in specs:
        for dep in spec.depends_on:
            if dep not in by_name:
                raise HarnessError(
                    f"job {spec.name!r} depends on unknown job {dep!r}"
                )

    ordered: list[JobSpec] = []
    placed: set[str] = set()
    remaining = list(specs)
    while remaining:
        ready = [s for s in remaining
                 if all(d in placed for d in s.depends_on)]
        if not ready:
            cycle = ", ".join(sorted(s.name for s in remaining))
            raise HarnessError(f"dependency cycle among jobs: {cycle}")
        for spec in ready:
            ordered.append(spec)
            placed.add(spec.name)
        remaining = [s for s in remaining if s.name not in placed]
    return ordered
