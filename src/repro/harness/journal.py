"""Write-ahead journal: one fsynced JSONL record per state transition.

The journal is the harness' source of truth for what happened to a run.
Every record is a single JSON line, flushed *and fsynced* before the
supervisor acts on the transition it describes — so after any crash,
including ``kill -9``, the journal is at worst missing its final
partial line.  :func:`read_journal` tolerates exactly that: a truncated
*last* line is dropped silently (the crash signature), while garbage
anywhere else raises :class:`~repro.errors.SerializationError`.

Record vocabulary (all records carry ``event``; fields vary):

- ``run_start``    — ``jobs`` (names in spec order), ``parallel``, ``resume``
- ``job_start``    — ``job``, ``attempt`` (1-based)
- ``job_retry``    — ``job``, ``attempt``, ``backoff_s``, ``error``
- ``job_success``  — ``job``, ``attempt``, ``elapsed_s``, ``artifact``,
  ``sha256`` (content hash used by resume verification)
- ``job_quarantined`` — ``job``, ``attempts``, ``error``
- ``job_skipped``  — ``job``, ``reason`` (``resumed`` | ``dependency``)
- ``run_interrupted`` — ``signal`` (SIGINT/SIGTERM finalization)
- ``run_end``      — final counters
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.errors import SerializationError

JOURNAL_NAME = "journal.jsonl"


class Journal:
    """Append-only, fsync-per-record JSONL writer."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def record(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append one record and force it to disk before returning."""
        rec: dict[str, Any] = {"event": event, **fields}
        self._handle.write(json.dumps(rec, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        return rec

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_journal(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Replay a journal file into its list of records.

    A partial *final* line (writer killed mid-append) is dropped; an
    undecodable line anywhere earlier means the file was corrupted by
    something other than a crash-during-append and raises
    :class:`SerializationError` naming the path.
    """
    path = os.fspath(path)
    # Read bytes and decode per line: a crash mid-append can truncate the
    # tail inside a multi-byte UTF-8 sequence, which a whole-file decode
    # would turn into a spurious UnicodeDecodeError for the entire
    # journal instead of a droppable partial last line.
    with open(path, "rb") as handle:
        lines = handle.read().splitlines()
    records: list[dict[str, Any]] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            if index == len(lines) - 1:
                break  # the crash signature: half-written tail record
            raise SerializationError(
                f"{path}: corrupt journal line {index + 1} ({exc})"
            ) from exc
        records.append(record)
    return records
