"""Job targets for the paper suite, sweeps, reproduction, and chaos runs.

Each target is a plain function ``kwargs -> JSON payload``, importable
by dotted name from a spawned worker or a resumed run.  The per-artifact
iteration counts and time-scale clamps here are *the* canonical values —
:func:`repro.experiments.suite.run` calls the same targets in-process,
so the supervised and inline paths produce bit-identical payloads.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigError
from repro.faults.retry import RetryPolicy
from repro.harness.job import JobSpec

# -- paper-suite artifact targets --------------------------------------


def run_fig1(time_scale: float = 0.15) -> dict[str, Any]:
    from repro.experiments import fig1

    panels = fig1.run_all(n_iterations=1, time_scale=min(time_scale, 0.2))
    return {
        "fig1_nbody_mem_best_energy": min(
            p.relative_energy for p in panels[("nbody", "mem")]
        ),
        "fig1_sc_core_best_energy": min(
            p.relative_energy for p in panels[("streamcluster", "core")]
        ),
    }


def run_fig2(time_scale: float = 0.15) -> dict[str, Any]:
    from repro.experiments import fig2

    result = fig2.run(n_iterations=2, time_scale=min(time_scale, 0.1))
    return {"fig2_optimal_r": result.optimal_r}


def run_table2(time_scale: float = 0.15) -> dict[str, Any]:
    from repro.experiments import table2

    rows = table2.run(n_iterations=1, time_scale=time_scale)
    matches = 0
    notes: list[str] = []
    for row in rows:
        paper_fluct = "fluctuate" in row.paper_description.lower()
        if row.fluctuating == paper_fluct:
            matches += 1
        else:
            notes.append(f"table2 mismatch: {row.name}")
    return {"table2_matches": matches, "table2_total": len(rows),
            "notes": notes}


def run_fig5(time_scale: float = 0.15) -> dict[str, Any]:
    from repro.experiments import fig5

    result = fig5.run(n_iterations=3, time_scale=max(time_scale, 0.2))
    return {"fig5_converged_mem_mhz": result.converged_mem_mhz}


def run_fig6(time_scale: float = 0.15) -> dict[str, Any]:
    from repro.experiments import fig6

    result = fig6.run(n_iterations=3, time_scale=time_scale)
    return {
        "fig6_avg_gpu_saving": result.average_gpu_saving,
        "fig6_avg_dynamic_saving": result.average_dynamic_saving,
        "fig6_avg_cpu_gpu_saving": result.average_cpu_gpu_saving,
    }


def run_fig7(time_scale: float = 0.15) -> dict[str, Any]:
    from repro.experiments import fig7

    results = fig7.run(n_iterations=10, time_scale=min(time_scale, 0.1))
    return {
        "fig7_kmeans_converged_r": results["kmeans"].converged_r,
        "fig7_hotspot_converged_r": results["hotspot"].converged_r,
    }


def run_fig8(time_scale: float = 0.15) -> dict[str, Any]:
    from repro.experiments import fig8

    results = fig8.run(n_iterations=10, time_scale=min(time_scale, 0.1))
    return {
        "fig8_ordering_holds": all(r.ordering_holds for r in results.values())
    }


def run_headline(time_scale: float = 0.15) -> dict[str, Any]:
    from repro.experiments import headline

    result = headline.run(n_iterations=10, time_scale=min(time_scale, 0.1))
    return {"headline_average_saving": result.average_saving}


#: Canonical artifact order — payload merging, scheduling, and the
#: markdown ledger all follow this order, never completion order.
SUITE_ARTIFACTS = ("fig1", "fig2", "table2", "fig5", "fig6", "fig7",
                   "fig8", "headline")

SUITE_TARGETS: dict[str, Callable[..., dict[str, Any]]] = {
    "fig1": run_fig1, "fig2": run_fig2, "table2": run_table2,
    "fig5": run_fig5, "fig6": run_fig6, "fig7": run_fig7,
    "fig8": run_fig8, "headline": run_headline,
}


def suite_specs(
    time_scale: float = 0.15,
    only: tuple[str, ...] | list[str] | None = None,
    timeout_s: float | None = 600.0,
    retry: RetryPolicy | None = None,
) -> list[JobSpec]:
    """JobSpecs for the paper suite (all artifacts, or a subset)."""
    names = SUITE_ARTIFACTS if only is None else tuple(only)
    unknown = sorted(set(names) - set(SUITE_ARTIFACTS))
    if unknown:
        raise ConfigError(
            f"unknown suite artifacts {unknown}; choose from {list(SUITE_ARTIFACTS)}"
        )
    # Subset selections keep canonical order for deterministic ledgers.
    ordered = [n for n in SUITE_ARTIFACTS if n in names]
    retry = retry or RetryPolicy(max_attempts=2, base_backoff_s=0.05,
                                 max_backoff_s=0.5)
    from repro.cache import job_key

    specs = []
    for name in ordered:
        target = f"repro.harness.suite_jobs:run_{name}"
        kwargs = {"time_scale": time_scale}
        specs.append(JobSpec(
            name=name,
            target=target,
            kwargs=kwargs,
            timeout_s=timeout_s,
            retry=retry,
            cache_key=job_key(target, kwargs),
        ))
    return specs


# -- sweep targets (cli.py cmd_sweep) ----------------------------------


def run_sweep_point(workload: str, r: float, n_iterations: int,
                    time_scale: float,
                    telemetry_dir: str | None = None) -> dict[str, Any]:
    """One static-division sweep point: energy and time at ratio ``r``.

    With ``telemetry_dir`` the point records full telemetry and writes
    it under ``<telemetry_dir>/workers/r=<r>/`` — the per-worker half of
    the cross-process aggregation contract.  The job's sweep point gives
    it a label domain of its own (the ``static-division-<r>`` policy
    name), so the supervisor-side merge is exact.
    """
    from repro.baselines.static_division import sweep_divisions
    from repro.experiments.common import scaled_options, scaled_workload

    telemetry = None
    audit = None
    if telemetry_dir is not None:
        from repro.telemetry import AuditTrail, Telemetry

        telemetry = Telemetry()
        audit = AuditTrail()
    points = sweep_divisions(
        scaled_workload(workload, time_scale), [r],
        n_iterations=n_iterations, options=scaled_options(time_scale),
        telemetry=telemetry, audit=audit,
    )
    point = points[0]
    if telemetry is not None:
        from repro.telemetry import export_worker
        from repro.telemetry.merge import worker_dir

        export_worker(telemetry, telemetry_dir, f"r={r:.4f}")
        audit.write(worker_dir(telemetry_dir, f"r={r:.4f}"))
    return {"r": point.r, "energy_j": point.energy_j, "time_s": point.time_s}


def sweep_specs(workload: str, ratios: list[float], n_iterations: int,
                time_scale: float, timeout_s: float | None = 600.0,
                telemetry_dir: str | None = None,
                ) -> list[JobSpec]:
    from repro.cache import job_key

    common = {"workload": workload, "n_iterations": n_iterations,
              "time_scale": time_scale}
    if telemetry_dir is not None:
        common["telemetry_dir"] = telemetry_dir
    target = "repro.harness.suite_jobs:run_sweep_point"
    specs = []
    for ratio in ratios:
        kwargs = {**common, "r": ratio}
        specs.append(JobSpec(
            name=f"r={ratio:.4f}",
            target=target,
            kwargs=kwargs,
            timeout_s=timeout_s,
            # A telemetry-exporting point has filesystem side effects a
            # cache hit would silently skip; only plain points are keyed.
            cache_key=None if telemetry_dir is not None
            else job_key(target, kwargs),
        ))
    return specs


#: The only job target :func:`sweep_prefetch` will serve.
_SWEEP_TARGET = "repro.harness.suite_jobs:run_sweep_point"


def sweep_prefetch(workload: str, n_iterations: int, time_scale: float):
    """Supervisor ``prefetch`` hook: batch all pending sweep points.

    Returns a callable mapping pending :class:`JobSpec`\\ s to payloads.
    Uninstrumented ``run_sweep_point`` jobs are packed into one lockstep
    :func:`~repro.baselines.static_division.sweep_divisions` batch (lane
    *i* is bit-identical to the scalar run the job target would have
    performed); anything else — telemetry-exporting points included —
    is left unserved and runs its target normally.  The supervisor still
    journals, caches, and writes artifacts per job, so batching stays
    invisible to the run directory, resume, and the report.
    """
    def _prefetch(specs: list[JobSpec]) -> dict[str, Any]:
        from repro.baselines.static_division import sweep_divisions
        from repro.experiments.common import scaled_options, scaled_workload

        todo = [
            spec for spec in specs
            if spec.target == _SWEEP_TARGET
            and "telemetry_dir" not in spec.kwargs
        ]
        if not todo:
            return {}
        points = sweep_divisions(
            scaled_workload(workload, time_scale),
            [spec.kwargs["r"] for spec in todo],
            n_iterations=n_iterations,
            options=scaled_options(time_scale),
        )
        return {
            spec.name: {"r": point.r, "energy_j": point.energy_j,
                        "time_s": point.time_s}
            for spec, point in zip(todo, points)
        }

    return _prefetch


# -- reproduce targets (cli.py cmd_reproduce) --------------------------


def run_artifact_module(name: str) -> dict[str, Any]:
    """Run one paper artifact's ``main()`` (prints its own report)."""
    from repro.experiments import fig1, fig2, fig5, fig6, fig7, fig8, headline, table2

    mains = {
        "fig1": fig1.main, "fig2": fig2.main, "table2": table2.main,
        "fig5": fig5.main, "fig6": fig6.main, "fig7": fig7.main,
        "fig8": fig8.main, "headline": headline.main,
    }
    if name not in mains:
        raise ConfigError(
            f"unknown artifact {name!r}; choose from {sorted(mains)}"
        )
    print(f"\n=== {name} ===")
    mains[name]()
    return {"artifact": name}


# -- chaos targets (benchmarks/test_chaos_robustness.py) ---------------


def run_chaos_pair(workload: str, time_scale: float, n_iterations: int,
                   seed: int, stall_s: float) -> dict[str, Any]:
    """GreenGPU under the moderate fault profile vs best-performance."""
    from dataclasses import replace

    from repro.core.policies import BestPerformancePolicy, GreenGpuPolicy
    from repro.experiments.common import (
        scaled_config,
        scaled_options,
        scaled_workload,
    )
    from repro.faults.injector import fault_profile
    from repro.runtime.executor import run_workload

    plan = replace(fault_profile("moderate", seed=seed),
                   device_stall_duration_s=stall_s)
    wl = scaled_workload(workload, time_scale)
    options = scaled_options(time_scale)
    green = run_workload(
        wl, GreenGpuPolicy(config=scaled_config(time_scale)).with_faults(plan),
        n_iterations=n_iterations, options=options,
    )
    baseline = run_workload(
        wl, BestPerformancePolicy(), n_iterations=n_iterations, options=options
    )
    return {
        "workload": workload,
        "saving": green.energy_saving_vs(baseline),
        "green_iterations": green.n_iterations,
        "health": green.health.as_dict(),
    }
