"""The supervisor: timeouts, retries, quarantine, journal, resume.

One :class:`Supervisor` drives one *run directory*::

    <run-dir>/
      journal.jsonl        write-ahead journal (fsynced per transition)
      artifacts/<job>.json atomically-written job results
      artifacts/<job>.error last traceback of a failed attempt

Jobs run in spawn-context :mod:`multiprocessing` workers (a hung or
crashing experiment is killed on its deadline without taking down the
supervisor) or, with ``isolate=False``, inline in this process — zero
process overhead for cheap jobs, at the price of timeout enforcement.

Every state transition is journaled *before* the supervisor acts on it,
and artifacts are written atomically by the worker, so a crash at any
instant — including ``SIGKILL``, which no handler can see — leaves a
run directory that ``resume=True`` can pick up: completed jobs whose
artifact bytes still hash to the journaled SHA-256 are skipped, and
only the rest re-run.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SerializationError
from repro.harness.job import (
    SATISFIED_STATES,
    TERMINAL_STATES,
    JobOutcome,
    JobSpec,
    JobState,
    validate_dag,
)
from repro.harness.journal import JOURNAL_NAME, Journal, read_journal
from repro.harness.worker import (
    read_artifact,
    run_job_inline,
    worker_main,
    write_artifact,
)
from repro.ioutil import sha256_file
from repro.telemetry.tracecontext import TraceContext, default_context

POLL_INTERVAL_S = 0.02

#: Sentinel distinguishing "no prefetched payload" from a falsy payload.
_NO_PREFETCH = object()


@dataclass(frozen=True)
class ProgressEvent:
    """Emitted after every job reaches a terminal state."""

    completed: int
    total: int
    job: str
    state: str
    elapsed_s: float
    eta_s: float | None


def stderr_progress(event: ProgressEvent) -> None:
    """Default progress sink: one line per completed job, to stderr."""
    eta = f", ~{event.eta_s:.1f}s left" if event.eta_s is not None else ""
    print(
        f"[{event.completed}/{event.total}] {event.job} {event.state} "
        f"({event.elapsed_s:.1f}s elapsed{eta})",
        file=sys.stderr, flush=True,
    )


@dataclass
class HarnessReport:
    """Per-run health counters, in the :class:`ControlHealth` spirit."""

    jobs_total: int = 0
    succeeded: int = 0
    resumed: int = 0
    cached: int = 0           # served from the content-addressed result cache
    retries: int = 0          # extra attempts beyond each job's first
    timeouts: int = 0         # attempts killed on their deadline
    quarantined: int = 0      # circuit breaker tripped: attempts exhausted
    dep_skipped: int = 0      # skipped because an upstream job failed
    interrupted: bool = False  # finalized early on SIGINT/SIGTERM
    elapsed_s: float = 0.0
    states: dict[str, str] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Every job produced (or resumed) its artifact."""
        return (not self.interrupted
                and self.quarantined == 0 and self.dep_skipped == 0)

    def summary_line(self) -> str:
        return (
            f"harness: {self.succeeded} ok, {self.resumed} resumed, "
            f"{self.cached} cached, "
            f"{self.retries} retried, {self.timeouts} timed out, "
            f"{self.quarantined} quarantined, {self.dep_skipped} dep-skipped "
            f"({self.elapsed_s:.1f}s)"
        )

    def as_lines(self) -> list[str]:
        lines = [
            f"jobs        : {self.jobs_total}",
            f"succeeded   : {self.succeeded}",
            f"resumed     : {self.resumed}",
            f"cached      : {self.cached}",
            f"retries     : {self.retries}",
            f"timeouts    : {self.timeouts}",
            f"quarantined : {self.quarantined}",
            f"dep-skipped : {self.dep_skipped}",
            f"interrupted : {self.interrupted}",
        ]
        for name, error in self.errors.items():
            first = error.strip().splitlines()[-1] if error.strip() else error
            lines.append(f"  {name}: {first}")
        return lines

    def to_markdown(self) -> str:
        lines = ["# Run health (auto-generated)", ""]
        lines += [f"    {line}" for line in self.as_lines()]
        return "\n".join(lines) + "\n"


@dataclass
class HarnessResult:
    """Everything a caller needs after :func:`run_jobs` returns."""

    report: HarnessReport
    outcomes: dict[str, JobOutcome]

    @property
    def payloads(self) -> dict[str, Any]:
        """Payloads of every job that produced (or resumed) an artifact."""
        return {
            name: outcome.payload
            for name, outcome in self.outcomes.items()
            if outcome.state in SATISFIED_STATES
        }


class _Running:
    """Bookkeeping for one in-flight worker process."""

    def __init__(self, proc: multiprocessing.process.BaseProcess,
                 started: float, deadline: float | None) -> None:
        self.proc = proc
        self.started = started
        self.deadline = deadline


class Supervisor:
    def __init__(
        self,
        specs: list[JobSpec],
        run_dir: str | os.PathLike[str],
        *,
        parallel: int = 1,
        resume: bool = False,
        isolate: bool = True,
        progress: Callable[[ProgressEvent], None] | None = None,
        telemetry=None,
        cache=None,
        prefetch: Callable[[list[JobSpec]], dict[str, Any]] | None = None,
    ) -> None:
        self.specs = validate_dag(list(specs))
        self.spec_order = [s.name for s in specs]  # declaration order
        self.by_name = {s.name: s for s in self.specs}
        self.run_dir = os.fspath(run_dir)
        self.artifact_dir = os.path.join(self.run_dir, "artifacts")
        self.parallel = max(1, int(parallel))
        self.resume = resume
        self.isolate = isolate
        self.progress = progress
        self.telemetry = telemetry
        self.cache = cache
        self.prefetch = prefetch
        self._prefetched: dict[str, Any] = {}
        self._ctx = multiprocessing.get_context("spawn")
        # Trace root for this run: the telemetry's context when enabled,
        # else the ambient (env-propagated or fixed) one.  Per-job child
        # contexts derive from it by name alone, so serial and parallel
        # executions of the same specs stitch into identical trace trees.
        if telemetry is not None and telemetry.enabled:
            self._trace = telemetry.current_context()
        else:
            self._trace = default_context()
        self._stop_signal: int | None = None
        # Per-job backoff sequences, salted by job name so seeded
        # decorrelated-jitter policies desynchronize across jobs.
        self._backoffs: dict[str, Any] = {}

    # -- paths ---------------------------------------------------------

    def artifact_path(self, name: str) -> str:
        return os.path.join(self.artifact_dir, f"{name}.json")

    def error_path(self, name: str) -> str:
        return os.path.join(self.artifact_dir, f"{name}.error")

    # -- tracing -------------------------------------------------------

    def job_context(self, spec: JobSpec) -> TraceContext:
        """The trace position a job's worker roots its spans under."""
        if spec.traceparent is not None:
            parsed = TraceContext.parse(spec.traceparent)
            if parsed is not None:
                return parsed
        return self._trace.child("job", spec.name)

    # -- the run -------------------------------------------------------

    def run(self) -> HarnessResult:
        os.makedirs(self.artifact_dir, exist_ok=True)
        journal_path = os.path.join(self.run_dir, JOURNAL_NAME)
        prior = (read_journal(journal_path)
                 if self.resume and os.path.exists(journal_path) else [])

        outcomes = {s.name: JobOutcome(name=s.name) for s in self.specs}
        started = time.perf_counter()
        report = HarnessReport(jobs_total=len(self.specs))

        old_handlers = self._install_signal_handlers()
        try:
            with Journal(journal_path) as journal:
                journal.record(
                    "run_start",
                    jobs=[s.name for s in self.specs],
                    parallel=self.parallel,
                    resume=self.resume,
                    isolate=self.isolate,
                )
                self._resume_pass(prior, outcomes, report, journal, started)
                self._cache_pass(outcomes, report, journal, started)
                self._prefetch_pass(outcomes)
                self._schedule(outcomes, report, journal, started)
                report.elapsed_s = time.perf_counter() - started
                if self._stop_signal is not None:
                    report.interrupted = True
                    journal.record("run_interrupted", signal=self._stop_signal)
                journal.record(
                    "run_end",
                    succeeded=report.succeeded,
                    resumed=report.resumed,
                    retries=report.retries,
                    timeouts=report.timeouts,
                    quarantined=report.quarantined,
                    dep_skipped=report.dep_skipped,
                    interrupted=report.interrupted,
                )
        finally:
            self._restore_signal_handlers(old_handlers)

        report.states = {
            name: outcomes[name].state.value for name in self.spec_order
        }
        report.errors = {
            name: outcomes[name].error
            for name in self.spec_order
            if outcomes[name].error
        }
        ordered = {name: outcomes[name] for name in self.spec_order}
        self._record_telemetry(report, ordered)
        return HarnessResult(report=report, outcomes=ordered)

    def _record_telemetry(self, report: HarnessReport,
                          outcomes: dict[str, JobOutcome]) -> None:
        """Mirror the run's :class:`HarnessReport` into telemetry counters.

        Job durations go into a ``wall_s``-suffixed histogram — they are
        wall-clock measurements and therefore excluded from the
        parallel-vs-serial parity contract by name.
        """
        tel = self.telemetry
        if tel is None or not tel.enabled:
            return
        for name, count in (
            ("harness_jobs_total", report.jobs_total),
            ("harness_succeeded_total", report.succeeded),
            ("harness_resumed_total", report.resumed),
            ("harness_cached_total", report.cached),
            ("harness_retries_total", report.retries),
            ("harness_timeouts_total", report.timeouts),
            ("harness_quarantined_total", report.quarantined),
            ("harness_dep_skipped_total", report.dep_skipped),
        ):
            if count:
                tel.counter(name).inc(count)
        for name, outcome in outcomes.items():
            tel.counter("harness_job_state_total",
                        state=outcome.state.value).inc()
            if outcome.elapsed_s > 0.0:
                tel.histogram("harness_job_wall_s").observe(outcome.elapsed_s)
            tel.event("harness_job", job=name, state=outcome.state.value,
                      attempts=outcome.attempts)
            # Record the job's span at its propagated trace position, so
            # spans the worker exported (rooted under this context via
            # the traceparent hand-off) stitch as this span's children.
            tel.record_span(
                self.job_context(self.by_name[name]), "harness_job",
                wall_s=outcome.elapsed_s,
                ok=outcome.state in SATISFIED_STATES,
                labels={"state": outcome.state.value},
                event_extra={"job": name},
            )

    # -- signal finalization -------------------------------------------

    def _install_signal_handlers(self) -> dict[int, Any]:
        def _note(signum: int, frame: object) -> None:
            self._stop_signal = signum

        old: dict[int, Any] = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                old[sig] = signal.signal(sig, _note)
            except ValueError:
                pass  # not the main thread; rely on SIGKILL-grade safety
        return old

    def _restore_signal_handlers(self, old: dict[int, Any]) -> None:
        for sig, handler in old.items():
            signal.signal(sig, handler)

    # -- resume --------------------------------------------------------

    def _resume_pass(self, prior: list[dict[str, Any]],
                     outcomes: dict[str, JobOutcome], report: HarnessReport,
                     journal: Journal, run_started: float) -> None:
        """Skip jobs whose journaled success still verifies on disk."""
        last_success: dict[str, dict[str, Any]] = {}
        for rec in prior:
            if rec.get("event") == "job_success" and rec.get("job") in self.by_name:
                last_success[rec["job"]] = rec
        for name, rec in last_success.items():
            path = self.artifact_path(name)
            if not os.path.exists(path):
                continue
            if sha256_file(path) != rec.get("sha256"):
                continue  # artifact changed since journaled: re-run it
            try:
                payload = read_artifact(path)
            except SerializationError:
                continue
            outcome = outcomes[name]
            outcome.state = JobState.SKIPPED_RESUMED
            outcome.payload = payload
            outcome.artifact_path = path
            outcome.artifact_sha256 = rec["sha256"]
            report.resumed += 1
            journal.record("job_skipped", job=name, reason="resumed")
            self._emit_progress(outcomes, name, run_started)

    # -- result cache --------------------------------------------------

    def _cache_pass(self, outcomes: dict[str, JobOutcome],
                    report: HarnessReport, journal: Journal,
                    run_started: float) -> None:
        """Serve still-pending keyed jobs from the result cache.

        Runs after the resume pass (a verified on-disk artifact wins —
        it belongs to *this* run directory) and before scheduling.  Each
        hit is journaled as ``job_skipped reason=cache`` with its key,
        so ``--resume`` of an interrupted run and any later audit can
        see exactly which points were never simulated.
        """
        if self.cache is None:
            return
        for spec in self.specs:
            outcome = outcomes[spec.name]
            if spec.cache_key is None or outcome.state is not JobState.PENDING:
                continue
            entry = self.cache.get(spec.cache_key)
            if entry is None or "payload" not in entry:
                continue
            outcome.state = JobState.SKIPPED_CACHED
            outcome.payload = entry["payload"]
            report.cached += 1
            journal.record("job_skipped", job=spec.name, reason="cache",
                           cache_key=spec.cache_key)
            self._emit_progress(outcomes, spec.name, run_started)

    # -- prefetch ------------------------------------------------------

    def _prefetch_pass(self, outcomes: dict[str, JobOutcome]) -> None:
        """Precompute pending inline jobs' payloads in one batched call.

        Runs after resume and cache passes, so the hook only sees jobs
        that will actually execute.  It may serve any subset of them
        (unserved jobs run their target normally); each served job still
        flows through the ordinary inline attempt — ``job_start`` /
        ``job_success`` journaling, artifact write, cache put, progress —
        so the batch computation is invisible to the run directory.
        Isolated runs never prefetch: the caller asked for per-job
        subprocess boundaries (crash containment, timeouts, signals).
        """
        if self.prefetch is None or self.isolate:
            return
        pending = [s for s in self.specs
                   if outcomes[s.name].state is JobState.PENDING]
        if not pending:
            return
        try:
            self._prefetched = dict(self.prefetch(pending) or {})
        except Exception:  # noqa: BLE001 — fall back to per-job execution
            self._prefetched = {}

    # -- scheduling ----------------------------------------------------

    def _schedule(self, outcomes: dict[str, JobOutcome], report: HarnessReport,
                  journal: Journal, run_started: float) -> None:
        attempts: dict[str, int] = {s.name: 0 for s in self.specs}
        ready_at: dict[str, float] = {s.name: 0.0 for s in self.specs}
        running: dict[str, _Running] = {}

        def unfinished() -> list[JobSpec]:
            return [s for s in self.specs
                    if outcomes[s.name].state not in TERMINAL_STATES]

        while unfinished() and self._stop_signal is None:
            self._skip_broken_dependents(outcomes, report, journal, run_started)
            self._launch_ready(outcomes, attempts, ready_at, running,
                               journal, report, run_started)
            if not running and not unfinished():
                break
            if running:
                time.sleep(POLL_INTERVAL_S)
                self._poll_running(outcomes, attempts, ready_at, running,
                                   journal, report, run_started)
            elif unfinished():
                # Everything launchable is backing off; sleep to the
                # earliest retry slot instead of spinning.
                pending = [ready_at[s.name] for s in unfinished()
                           if outcomes[s.name].state is JobState.PENDING]
                if pending:
                    time.sleep(
                        max(POLL_INTERVAL_S,
                            min(pending) - time.monotonic())
                    )

        if self._stop_signal is not None:
            for name, slot in running.items():
                slot.proc.kill()
                slot.proc.join()
                outcomes[name].error = f"interrupted by signal {self._stop_signal}"

    def _skip_broken_dependents(self, outcomes: dict[str, JobOutcome],
                                report: HarnessReport, journal: Journal,
                                run_started: float) -> None:
        for spec in self.specs:
            outcome = outcomes[spec.name]
            if outcome.state is not JobState.PENDING:
                continue
            broken = [
                dep for dep in spec.depends_on
                if outcomes[dep].state in TERMINAL_STATES
                and outcomes[dep].state not in SATISFIED_STATES
            ]
            if broken:
                outcome.state = JobState.SKIPPED_DEPENDENCY
                outcome.error = f"upstream failed: {', '.join(broken)}"
                report.dep_skipped += 1
                journal.record("job_skipped", job=spec.name,
                               reason="dependency", upstream=broken)
                self._emit_progress(outcomes, spec.name, run_started)

    def _launch_ready(self, outcomes: dict[str, JobOutcome],
                      attempts: dict[str, int], ready_at: dict[str, float],
                      running: dict[str, _Running], journal: Journal,
                      report: HarnessReport, run_started: float) -> None:
        for spec in self.specs:
            if self._stop_signal is not None:
                return
            if len(running) >= self.parallel and self.isolate:
                return
            outcome = outcomes[spec.name]
            if outcome.state is not JobState.PENDING or spec.name in running:
                continue
            if not all(outcomes[d].state in SATISFIED_STATES
                       for d in spec.depends_on):
                continue
            if time.monotonic() < ready_at[spec.name]:
                continue
            attempts[spec.name] += 1
            outcome.attempts = attempts[spec.name]
            journal.record("job_start", job=spec.name,
                           attempt=attempts[spec.name])
            self._clear_error_file(spec.name)
            if self.isolate:
                self._spawn(spec, running)
            else:
                self._run_inline(spec, outcomes, attempts, ready_at,
                                 journal, report, run_started)

    def _clear_error_file(self, name: str) -> None:
        try:
            os.unlink(self.error_path(name))
        except OSError:
            pass

    def _spawn(self, spec: JobSpec, running: dict[str, _Running]) -> None:
        proc = self._ctx.Process(
            target=worker_main,
            args=(spec.name, spec.target, spec.kwargs,
                  self.artifact_path(spec.name), self.error_path(spec.name),
                  self.job_context(spec).to_traceparent()),
            name=f"harness-{spec.name}",
        )
        # When the parent was launched as ``python -m repro.experiments.
        # suite``, the spawn bootstrap re-runs that module as the child's
        # main and runpy warns that it is already imported (the package
        # __init__ imports it).  Benign, but one line of stderr per
        # worker; silence exactly that warning in the child.
        prev = os.environ.get("PYTHONWARNINGS")
        squelch = "ignore::RuntimeWarning:runpy"
        os.environ["PYTHONWARNINGS"] = f"{prev},{squelch}" if prev else squelch
        try:
            proc.start()
        finally:
            if prev is None:
                del os.environ["PYTHONWARNINGS"]
            else:
                os.environ["PYTHONWARNINGS"] = prev
        now = time.monotonic()
        deadline = None if spec.timeout_s is None else now + spec.timeout_s
        running[spec.name] = _Running(proc, now, deadline)

    def _run_inline(self, spec: JobSpec, outcomes: dict[str, JobOutcome],
                    attempts: dict[str, int], ready_at: dict[str, float],
                    journal: Journal, report: HarnessReport,
                    run_started: float) -> None:
        started = time.monotonic()
        try:
            payload = self._prefetched.pop(spec.name, _NO_PREFETCH)
            if payload is not _NO_PREFETCH:
                write_artifact(self.artifact_path(spec.name), spec.name,
                               spec.target, payload)
            else:
                payload = run_job_inline(
                    spec.name, spec.target, spec.kwargs,
                    self.artifact_path(spec.name),
                    self.job_context(spec).to_traceparent())
        except Exception as exc:  # noqa: BLE001 — quarantine, don't crash
            self._attempt_failed(
                spec, f"{type(exc).__name__}: {exc}", outcomes, attempts,
                ready_at, journal, report, run_started,
                elapsed=time.monotonic() - started,
            )
            return
        self._attempt_succeeded(spec, payload, outcomes, attempts, journal,
                                report, run_started,
                                elapsed=time.monotonic() - started)

    def _poll_running(self, outcomes: dict[str, JobOutcome],
                      attempts: dict[str, int], ready_at: dict[str, float],
                      running: dict[str, _Running], journal: Journal,
                      report: HarnessReport, run_started: float) -> None:
        now = time.monotonic()
        for name in list(running):
            slot = running[name]
            spec = self.by_name[name]
            if slot.proc.exitcode is None:
                if slot.deadline is not None and now > slot.deadline:
                    slot.proc.kill()
                    slot.proc.join()
                    del running[name]
                    report.timeouts += 1
                    self._attempt_failed(
                        spec,
                        f"timeout: killed after {spec.timeout_s:.1f}s",
                        outcomes, attempts, ready_at, journal, report,
                        run_started, elapsed=now - slot.started,
                    )
                continue
            slot.proc.join()
            exitcode = slot.proc.exitcode
            del running[name]
            elapsed = time.monotonic() - slot.started
            if exitcode == 0:
                try:
                    payload = read_artifact(self.artifact_path(name))
                except (OSError, SerializationError) as exc:
                    self._attempt_failed(spec, f"unreadable artifact: {exc}",
                                         outcomes, attempts, ready_at,
                                         journal, report, run_started,
                                         elapsed=elapsed)
                    continue
                self._attempt_succeeded(spec, payload, outcomes, attempts,
                                        journal, report, run_started,
                                        elapsed=elapsed)
            else:
                error = self._read_error_file(name)
                if error is None:
                    error = (f"killed by signal {-exitcode}"
                             if exitcode is not None and exitcode < 0
                             else f"worker exited with code {exitcode}")
                self._attempt_failed(spec, error, outcomes, attempts,
                                     ready_at, journal, report, run_started,
                                     elapsed=elapsed)

    def _read_error_file(self, name: str) -> str | None:
        try:
            with open(self.error_path(name), encoding="utf-8") as handle:
                return handle.read().strip() or None
        except OSError:
            return None

    # -- attempt outcomes ----------------------------------------------

    def _attempt_succeeded(self, spec: JobSpec, payload: Any,
                           outcomes: dict[str, JobOutcome],
                           attempts: dict[str, int], journal: Journal,
                           report: HarnessReport, run_started: float,
                           elapsed: float) -> None:
        outcome = outcomes[spec.name]
        path = self.artifact_path(spec.name)
        sha = sha256_file(path)
        outcome.state = JobState.SUCCEEDED
        outcome.payload = payload
        outcome.elapsed_s = elapsed
        outcome.artifact_path = path
        outcome.artifact_sha256 = sha
        report.succeeded += 1
        journal.record("job_success", job=spec.name,
                       attempt=attempts[spec.name],
                       elapsed_s=round(elapsed, 3),
                       artifact=os.path.relpath(path, self.run_dir),
                       sha256=sha)
        if self.cache is not None and spec.cache_key is not None:
            self.cache.put(spec.cache_key, {"payload": payload})
        self._emit_progress(outcomes, spec.name, run_started)

    def _attempt_failed(self, spec: JobSpec, error: str,
                        outcomes: dict[str, JobOutcome],
                        attempts: dict[str, int], ready_at: dict[str, float],
                        journal: Journal, report: HarnessReport,
                        run_started: float, elapsed: float) -> None:
        outcome = outcomes[spec.name]
        outcome.error = error
        outcome.elapsed_s += elapsed
        used = attempts[spec.name]
        if used < spec.retry.max_attempts:
            if spec.name not in self._backoffs:
                self._backoffs[spec.name] = spec.retry.backoff_state(
                    salt=spec.name
                )
            backoff = self._backoffs[spec.name].next_backoff()
            report.retries += 1
            ready_at[spec.name] = time.monotonic() + backoff
            journal.record("job_retry", job=spec.name, attempt=used,
                           backoff_s=round(backoff, 3), error=error)
            if not self.isolate and backoff > 0.0:
                time.sleep(backoff)
        else:
            outcome.state = JobState.QUARANTINED
            report.quarantined += 1
            journal.record("job_quarantined", job=spec.name,
                           attempts=used, error=error)
            self._emit_progress(outcomes, spec.name, run_started)

    # -- progress ------------------------------------------------------

    def _emit_progress(self, outcomes: dict[str, JobOutcome], name: str,
                       run_started: float) -> None:
        if self.progress is None:
            return
        completed = sum(1 for o in outcomes.values()
                        if o.state in TERMINAL_STATES)
        total = len(outcomes)
        elapsed = time.perf_counter() - run_started
        eta = (elapsed / completed * (total - completed)
               if completed else None)
        self.progress(ProgressEvent(
            completed=completed, total=total, job=name,
            state=outcomes[name].state.value,
            elapsed_s=elapsed, eta_s=eta,
        ))


def run_jobs(
    specs: list[JobSpec],
    run_dir: str | os.PathLike[str],
    *,
    parallel: int = 1,
    resume: bool = False,
    isolate: bool = True,
    progress: Callable[[ProgressEvent], None] | None = None,
    telemetry=None,
    cache=None,
    prefetch: Callable[[list[JobSpec]], dict[str, Any]] | None = None,
) -> HarnessResult:
    """Run a job DAG under supervision; see :class:`Supervisor`."""
    supervisor = Supervisor(specs, run_dir, parallel=parallel, resume=resume,
                            isolate=isolate, progress=progress,
                            telemetry=telemetry, cache=cache,
                            prefetch=prefetch)
    return supervisor.run()
