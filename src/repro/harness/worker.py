"""Job execution: the spawned worker's entry point and the inline path.

The supervisor never pickles closures across the process boundary; a job
is a dotted ``module:function`` target plus JSON kwargs, resolved here.
Success is communicated through the filesystem: the worker atomically
writes the artifact JSON and exits 0.  Failure writes the traceback to a
sidecar ``<artifact>.error`` file and exits 1 — the supervisor reads it
back for the journal, so a crashing job never scrambles the parent.

Trace propagation: the supervisor derives a deterministic child
:class:`~repro.telemetry.tracecontext.TraceContext` per job and ships
its ``traceparent`` string through the worker argument list.  It is
installed in :data:`~repro.telemetry.tracecontext.TRACEPARENT_ENV`
around the job target — in the *worker* for spawned jobs, briefly in
the supervisor's process for inline ones — so any ``Telemetry()`` the
target constructs roots its spans under the harness job's span and the
merged streams stitch into one tree.
"""

from __future__ import annotations

import importlib
import sys
import traceback
from typing import Any, Callable

from repro.errors import HarnessError, SerializationError
from repro.ioutil import atomic_write_json, atomic_write_text
from repro.telemetry.tracecontext import TraceContext, propagation_env

ARTIFACT_SCHEMA = 1


def resolve_target(target: str) -> Callable[..., Any]:
    """``"package.module:function"`` -> the callable."""
    module_name, _, func_name = target.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise HarnessError(f"cannot import job target module {module_name!r}: {exc}")
    fn = getattr(module, func_name, None)
    if not callable(fn):
        raise HarnessError(
            f"job target {target!r} does not name a callable"
        )
    return fn


def write_artifact(path: str, name: str, target: str, payload: Any) -> None:
    """Atomically persist a job's result (sorted keys: stable bytes)."""
    atomic_write_json(path, {
        "schema": ARTIFACT_SCHEMA,
        "job": name,
        "target": target,
        "payload": payload,
    })


def read_artifact(path: str) -> Any:
    """Load a job artifact and return its payload."""
    import json

    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"{path}: corrupt or truncated artifact JSON ({exc})"
        ) from exc
    if data.get("schema") != ARTIFACT_SCHEMA:
        raise SerializationError(
            f"{path}: unsupported artifact schema {data.get('schema')!r}"
        )
    return data["payload"]


def run_job_inline(name: str, target: str, kwargs: dict[str, Any],
                   artifact_path: str, traceparent: str | None = None) -> Any:
    """Execute a job in this process and persist its artifact."""
    fn = resolve_target(target)
    with propagation_env(TraceContext.parse(traceparent)):
        payload = fn(**kwargs)
    write_artifact(artifact_path, name, target, payload)
    return payload


def worker_main(name: str, target: str, kwargs: dict[str, Any],
                artifact_path: str, error_path: str,
                traceparent: str | None = None) -> None:
    """Spawned-process entry point (must stay a picklable top-level fn)."""
    try:
        run_job_inline(name, target, kwargs, artifact_path, traceparent)
    except BaseException:
        try:
            atomic_write_text(error_path, traceback.format_exc())
        finally:
            sys.exit(1)
    sys.exit(0)
