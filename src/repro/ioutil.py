"""Crash-safe file writes.

A plain ``open(path, "w")`` truncates the destination before the new
content is flushed: an interrupt (Ctrl-C, OOM kill, power loss) in that
window leaves a truncated half-file where a good artifact used to be.
Every writer of results, journals, and ledgers in this package goes
through the helpers here instead: write to a temporary file in the same
directory, fsync it, then :func:`os.replace` it over the destination —
the rename is atomic on POSIX, so readers only ever observe the old
bytes or the new bytes, never a mixture.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any


def atomic_write_text(path: str | os.PathLike[str], text: str,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        # Includes KeyboardInterrupt: never leave *.tmp droppings behind.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str | os.PathLike[str], data: Any,
                      indent: int | None = 2, sort_keys: bool = True) -> None:
    """Serialize ``data`` and write it atomically.

    ``sort_keys`` defaults on so identical payloads produce identical
    bytes regardless of construction order — the harness' resume
    verification hashes these files.
    """
    atomic_write_text(path, json.dumps(data, indent=indent, sort_keys=sort_keys) + "\n")


def sha256_file(path: str | os.PathLike[str]) -> str:
    """Hex SHA-256 of a file's bytes (artifact identity for resume)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()
