"""Utilization monitors: the ``nvidia-smi`` and ``/proc/stat`` analogues.

The paper's GreenGPU daemon reads GPU core/memory utilizations with
``nvidia-smi`` and CPU utilization from the kernel's accounting.  Both
report *windowed averages*: the fraction of the sampling window each
resource was busy.  Our monitors reproduce that by differentiating the
devices' monotonically increasing busy-time counters between reads —
exactly how the real tools work on top of hardware counters.
"""

from repro.monitors.nvsmi import GpuUtilizationSample, NvidiaSmi
from repro.monitors.cpustat import CpuStat, CpuUtilizationSample

__all__ = [
    "NvidiaSmi",
    "GpuUtilizationSample",
    "CpuStat",
    "CpuUtilizationSample",
]
