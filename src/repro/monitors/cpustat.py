"""``/proc/stat`` facade over the simulated CPU.

The Linux `ondemand` governor computes utilization as
(busy jiffies / total jiffies) over its sampling window.  On the paper's
testbed this includes busy-wait spinning — which is why stock `ondemand`
cannot throttle the CPU while it synchronously waits for the GPU
(§VII-A).  Our :class:`CpuDevice` counts spin time as busy for the same
reason, and this monitor differentiates the counter just like the kernel's
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MonitorError
from repro.sim.cpu import CpuDevice


@dataclass(frozen=True, slots=True)
class CpuUtilizationSample:
    """One windowed CPU utilization reading plus the P-state it ran at."""

    t: float
    window_s: float
    u: float
    f: float


class CpuStat:
    """Windowed CPU utilization reader (jiffies-delta style)."""

    def __init__(self, cpu: CpuDevice):
        self._cpu = cpu
        self._last_t = cpu.elapsed_seconds
        self._last_busy = cpu.busy_seconds

    def query(self) -> CpuUtilizationSample:
        """Average utilization since the previous :meth:`query` call."""
        now = self._cpu.elapsed_seconds
        window = now - self._last_t
        if window <= 0.0:
            raise MonitorError("cpustat queried with an empty window")
        u = (self._cpu.busy_seconds - self._last_busy) / window
        self._last_t = now
        self._last_busy = self._cpu.busy_seconds
        return CpuUtilizationSample(
            t=now, window_s=window, u=min(1.0, u), f=self._cpu.f
        )
