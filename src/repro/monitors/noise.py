"""Measurement-noise injection for the utilization monitors.

The paper chooses beta = 0.2 "to filter out limited system noise with
quick workload change response" (§V-A) — a claim about robustness it
never evaluates.  :class:`NoisyNvidiaSmi` makes it testable: it wraps the
clean monitor and perturbs each windowed reading with seeded, bounded
noise (clamped to [0, 1]), emulating the jitter of real counter sampling.

Determinism: the noise stream is a seeded PCG64 sequence consumed one
draw per query, so runs remain bit-reproducible for a given seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.monitors.nvsmi import GpuUtilizationSample, NvidiaSmi
from repro.sim.gpu import GpuDevice


class NoisyNvidiaSmi:
    """``nvidia-smi`` facade with additive uniform measurement noise.

    ``amplitude`` is the half-width of the uniform perturbation: each
    reading moves by up to +/- amplitude before clamping.
    """

    def __init__(self, gpu: GpuDevice, amplitude: float, seed: int = 0):
        if not 0.0 <= amplitude <= 1.0:
            raise ConfigError("noise amplitude must be in [0, 1]")
        self._inner = NvidiaSmi(gpu)
        self.amplitude = float(amplitude)
        self._rng = np.random.default_rng(seed)
        self.queries = 0

    def query(self) -> GpuUtilizationSample:
        sample = self._inner.query()
        self.queries += 1
        if self.amplitude == 0.0:
            return sample
        noise = self._rng.uniform(-self.amplitude, self.amplitude, size=2)
        return GpuUtilizationSample(
            t=sample.t,
            window_s=sample.window_s,
            u_core=float(np.clip(sample.u_core + noise[0], 0.0, 1.0)),
            u_mem=float(np.clip(sample.u_mem + noise[1], 0.0, 1.0)),
            f_core=sample.f_core,
            f_mem=sample.f_mem,
        )

    def peek_clocks(self) -> tuple[float, float]:
        return self._inner.peek_clocks()
