"""``nvidia-smi`` facade over the simulated GPU.

Nvidia defines (paper §III-A, [19]):

- core (GPU) utilization  = GPU busy cycles / total cycles,
- memory utilization      = actual bandwidth / rated peak bandwidth.

The simulated :class:`~repro.sim.gpu.GpuDevice` maintains busy-time
integrals with exactly these semantics; :class:`NvidiaSmi` differentiates
them over its sampling window, like the real tool's counter-delta readout.

Note the memory-utilization subtlety: the device's ``busy_mem_seconds``
integral advances by ``u_mem * dt`` where ``u_mem`` is bandwidth achieved
relative to the *current* (possibly throttled) memory frequency.  Real
``nvidia-smi`` reports relative to the current clock as well, so the
controller sees utilization rise as it throttles — which is precisely the
feedback the WMA loss function relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MonitorError
from repro.sim.gpu import GpuDevice


@dataclass(frozen=True, slots=True)
class GpuUtilizationSample:
    """One windowed utilization reading plus the clocks it was taken at."""

    t: float
    window_s: float
    u_core: float
    u_mem: float
    f_core: float
    f_mem: float


class NvidiaSmi:
    """Windowed GPU utilization reader (counter-delta style)."""

    def __init__(self, gpu: GpuDevice):
        self._gpu = gpu
        self._last_t = gpu.elapsed_seconds
        self._last_core = gpu.busy_core_seconds
        self._last_mem = gpu.busy_mem_seconds

    def query(self) -> GpuUtilizationSample:
        """Average utilizations since the previous :meth:`query` call.

        The first call averages since monitor construction.  Querying twice
        at the same instant (zero window) raises — real tools rate-limit
        for the same reason.
        """
        now = self._gpu.elapsed_seconds
        window = now - self._last_t
        if window <= 0.0:
            raise MonitorError("nvidia-smi queried with an empty window")
        u_core = (self._gpu.busy_core_seconds - self._last_core) / window
        u_mem = (self._gpu.busy_mem_seconds - self._last_mem) / window
        self._last_t = now
        self._last_core = self._gpu.busy_core_seconds
        self._last_mem = self._gpu.busy_mem_seconds
        return GpuUtilizationSample(
            t=now,
            window_s=window,
            u_core=min(1.0, u_core),
            u_mem=min(1.0, u_mem),
            f_core=self._gpu.f_core,
            f_mem=self._gpu.f_mem,
        )

    def peek_clocks(self) -> tuple[float, float]:
        """Current (core, memory) clocks in Hz without consuming the window."""
        return self._gpu.f_core, self._gpu.f_mem
