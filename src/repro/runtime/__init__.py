"""Heterogeneous execution runtime.

The paper's implementation launches pthreads — one driving CUDA kernels,
the rest running the OpenMP share — and re-invokes kernels with per-side
data sizes every iteration (§VI).  Our runtime mirrors that structure on
the simulated testbed:

- :mod:`repro.runtime.partition` splits work units (and, for the real
  numpy kernels, actual arrays) by the division ratio;
- :mod:`repro.runtime.executor` co-runs the CPU and GPU shares of each
  iteration in simulated time, with DMA transfers and synchronized
  (spin-wait) host semantics;
- :mod:`repro.runtime.metrics` collects per-iteration and whole-run
  timing/energy results.
"""

from repro.runtime.partition import partition_array, partition_slices, split_units
from repro.runtime.metrics import IterationMetrics, RunResult
from repro.runtime.executor import ExecutorOptions, HeteroExecutor, run_workload

__all__ = [
    "split_units",
    "partition_array",
    "partition_slices",
    "IterationMetrics",
    "RunResult",
    "HeteroExecutor",
    "ExecutorOptions",
    "run_workload",
]
