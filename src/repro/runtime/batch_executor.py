"""Dispatch layer that packs compatible runs into the batched engine.

``BatchExecutor.run_many`` takes a list of ``run_workload``-shaped
requests and executes them with the cheapest path that preserves
observable behavior:

- **cache**: per-lane content-addressed ``run_key`` hits are served first
  (``engine == "cache"``), exactly like the scalar fast path would.
- **batch**: two or more cache-miss requests that the lockstep engine can
  represent bit-exactly (see :func:`classify`) run as lanes of one
  :func:`repro.sim.batch.run_batch` call (``engine == "batch"``).
- **scalar**: everything else — faulted policies, instrumented runs,
  caller-supplied systems or recorders, warmups, non-demand-model
  workloads, or a lone eligible request not worth the numpy overhead —
  falls back to ``run_workload`` with the reason recorded in
  ``engine == "scalar:<reason>"``.

Cache keys are computed per lane, so batch execution is invisible to the
cache, the job journal, and resume: a warm sweep served from cache cannot
tell which engine produced the entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.executor import ExecutorOptions, run_workload
from repro.runtime.metrics import RunResult
from repro.sim.batch import BatchRunRequest, batch_eligible, run_batch

#: Reason recorded by fleet shard payloads: fleet nodes run caller-built
#: systems (power-cap ceilings, per-node fault injectors) that the batch
#: engine's fresh-default-testbed contract excludes by construction.
FLEET_SCALAR_REASON = "scalar:fleet-custom-system"


@dataclass(slots=True)
class RunRequest:
    """One logical ``run_workload`` invocation, dispatchable as a lane."""

    workload: object
    policy: object
    n_iterations: int | None = None
    options: ExecutorOptions | None = None
    system: object | None = None
    recorder: object | None = None
    warmup_s: float = 0.0
    telemetry: object | None = None
    audit: object | None = None
    extra: dict = field(default_factory=dict)


def classify(request: RunRequest) -> str | None:
    """Why this request cannot ride the batched engine, or None if it can.

    The batch engine models exactly the scalar fast path on a fresh
    default testbed with an unobserved controller; anything that injects
    faults, instruments the run, or supplies external state must take the
    scalar path so those side effects come from a live scalar run.
    """
    if not batch_eligible(request.workload):
        return "workload"
    if request.policy.fault_plan is not None:
        return "faults"
    if request.system is not None:
        return "system"
    if request.recorder is not None:
        return "recorder"
    if request.telemetry is not None and getattr(
        request.telemetry, "enabled", False
    ):
        return "telemetry"
    if request.audit is not None:
        return "audit"
    if request.warmup_s != 0.0:
        return "warmup"
    return None


class BatchExecutor:
    """Routes request lists through cache, batch, or scalar execution."""

    def __init__(self, cache=None, min_batch: int = 2):
        self.cache = cache
        self.min_batch = min_batch

    def _cache_key(self, request: RunRequest) -> str | None:
        if self.cache is None or request.system is not None:
            return None
        from repro.cache import run_key

        return run_key(
            request.workload,
            request.policy,
            request.n_iterations,
            request.options,
            request.warmup_s,
        )

    def run_many(self, requests: list[RunRequest]) -> list[RunResult]:
        """Execute every request; results come back in request order."""
        results: list[RunResult | None] = [None] * len(requests)
        keys: list[str | None] = [None] * len(requests)
        batchable: list[int] = []
        for i, request in enumerate(requests):
            reason = classify(request)
            if reason is not None:
                results[i] = self._run_scalar(request, reason)
                continue
            key = self._cache_key(request)
            keys[i] = key
            if key is not None:
                payload = self.cache.get(key)
                if payload is not None:
                    from repro.analysis.serialize import result_from_dict

                    try:
                        result = result_from_dict(payload["result"])
                        result.engine = "cache"
                        results[i] = result
                        continue
                    except Exception:
                        pass  # stale schema: recompute and overwrite below
            batchable.append(i)
        if len(batchable) < self.min_batch:
            # A lone lane pays numpy dispatch overhead per tick for no
            # amortization; the scalar fast path is strictly faster.
            for i in batchable:
                # run_workload handles the cache get/put itself here.
                results[i] = self._run_scalar(requests[i], "singleton")
            return results  # type: ignore[return-value]
        lane_requests = [
            BatchRunRequest(
                workload=requests[i].workload,
                policy=requests[i].policy,
                n_iterations=requests[i].n_iterations,
                options=requests[i].options,
            )
            for i in batchable
        ]
        for i, result in zip(batchable, run_batch(lane_requests)):
            results[i] = result
            self._store(keys[i], result)
        return results  # type: ignore[return-value]

    def _run_scalar(self, request: RunRequest, reason: str) -> RunResult:
        result = run_workload(
            request.workload,
            request.policy,
            request.n_iterations,
            system=request.system,
            options=request.options,
            recorder=request.recorder,
            warmup_s=request.warmup_s,
            telemetry=request.telemetry,
            audit=request.audit,
            cache=self.cache,
        )
        # run_workload already tags cache hits; keep that tag, otherwise
        # record why this request couldn't ride the batch.
        if result.engine != "cache":
            result.engine = f"scalar:{reason}"
        return result

    def _store(self, key: str | None, result: RunResult) -> None:
        if key is None or result.engine == "cache":
            return
        from repro.analysis.serialize import result_to_dict

        self.cache.put(key, {"result": result_to_dict(result)})
