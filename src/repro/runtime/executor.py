"""Co-execution of divided iterations on the simulated testbed.

Mirrors the paper's pthread/CUDA runtime (§VI): every iteration, the GPU
share is dispatched as H2D transfer -> kernel -> D2H transfer while the
CPU share runs concurrently; the host synchronizes both sides at the
iteration barrier.  Under the paper's *synchronized* communication model
the CPU busy-waits whenever it has no work of its own and the GPU is
running — the behaviour that pins CPU utilization at 100 % and defeats the
`ondemand` governor (§VII-A).  ``ExecutorOptions.sync_spin=False`` selects
the asynchronous variant for the ablation benches.

Division changes between iterations cost ``repartition_overhead_s`` of
host time (data re-chunking and kernel re-invocation), which is what the
oscillation safeguard exists to amortize (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.controller import GreenGpuController
from repro.core.policies import Policy
from repro.errors import SimulationError
from repro.runtime.metrics import IterationMetrics, RunResult
from repro.runtime.partition import split_units
from repro.sim.activity import KernelActivity
from repro.sim.platform import HeteroSystem, make_testbed
from repro.sim.trace import TraceRecorder
from repro.telemetry import NOOP, NullTelemetry, Telemetry
from repro.workloads.base import Workload

_MAX_STEPS_PER_ITERATION = 10_000_000


@dataclass(frozen=True, slots=True)
class ExecutorOptions:
    """Knobs of the heterogeneous runtime."""

    sync_spin: bool = True
    repartition_overhead_s: float = 0.5
    iteration_timeout_s: float = 1.0e5

    def __post_init__(self) -> None:
        if self.repartition_overhead_s < 0.0:
            raise SimulationError("repartition overhead must be non-negative")
        if self.iteration_timeout_s <= 0.0:
            raise SimulationError("iteration timeout must be positive")


class HeteroExecutor:
    """Runs a workload's iterations under a live controller."""

    def __init__(
        self,
        system: HeteroSystem,
        workload: Workload,
        controller: GreenGpuController,
        options: ExecutorOptions | None = None,
        telemetry: Telemetry | NullTelemetry | None = None,
    ):
        self.system = system
        self.workload = workload
        self.controller = controller
        self.options = options or ExecutorOptions()
        self.telemetry = telemetry if telemetry is not None else NOOP
        self._last_ratio: float | None = None

    def run_iteration(self, index: int) -> IterationMetrics:
        """Execute one divided iteration and feed tier 1 at the barrier."""
        with self.telemetry.span("iteration"):
            metrics = self._run_iteration_body(index)
        if self.telemetry.enabled:
            self.telemetry.event(
                "iteration", index=metrics.index, r=metrics.r, tc=metrics.tc,
                tg=metrics.tg, sim_s=metrics.wall_s,
                energy_j=metrics.energy_j,
            )
            self.telemetry.histogram("iteration_sim_s").observe(metrics.wall_s)
            self.telemetry.histogram("iteration_energy_j").observe(
                metrics.energy_j
            )
        return metrics

    def _run_iteration_body(self, index: int) -> IterationMetrics:
        system = self.system
        workload = self.workload
        r = self.controller.ratio

        # Repartitioning cost when the division changed since last iteration.
        if (
            self._last_ratio is not None
            and r != self._last_ratio
            and self.options.repartition_overhead_s > 0.0
        ):
            self.telemetry.counter("repartitions_total").inc()
            system.cpu.spin()
            system.run_for(self.options.repartition_overhead_s)
            system.cpu.stop_spin()
        self._last_ratio = r

        cpu_units, gpu_units = split_units(1.0, r)
        t0 = system.now
        e0 = system.total_energy_j
        e0_gpu = system.meter_gpu.energy_j
        e0_cpu = system.meter_cpu.energy_j

        if gpu_units > 0.0:
            system.gpu.submit_transfer(
                system.bus.make_transfer(workload.h2d_bytes(gpu_units), label="h2d")
            )
            system.gpu.submit_kernel(
                KernelActivity(workload.gpu_phases(gpu_units, index), label=workload.name)
            )
            system.gpu.submit_transfer(
                system.bus.make_transfer(workload.d2h_bytes(gpu_units), label="d2h")
            )
        if cpu_units > 0.0:
            system.cpu.submit_kernel(
                KernelActivity(workload.cpu_phases(cpu_units, index), label=workload.name)
            )

        gpu_done: float | None = None if gpu_units > 0.0 else t0
        cpu_done: float | None = None if cpu_units > 0.0 else t0
        deadline = t0 + self.options.iteration_timeout_s
        steps = 0

        if self.options.sync_spin and not system.cpu.has_work and system.gpu.busy:
            system.cpu.spin()

        while system.gpu.busy or system.cpu.has_work:
            if system.now >= deadline:
                raise SimulationError(
                    f"iteration {index} of {workload.name!r} exceeded "
                    f"{self.options.iteration_timeout_s}s"
                )
            system.step(horizon=deadline - system.now)
            steps += 1
            if steps > _MAX_STEPS_PER_ITERATION:
                raise SimulationError("step explosion inside an iteration")
            if gpu_done is None and not system.gpu.busy:
                gpu_done = system.now
            if cpu_done is None and not system.cpu.has_work:
                cpu_done = system.now
                if self.options.sync_spin and system.gpu.busy:
                    system.cpu.spin()
        system.cpu.stop_spin()

        assert gpu_done is not None and cpu_done is not None
        tc = cpu_done - t0 if cpu_units > 0.0 else 0.0
        tg = gpu_done - t0 if gpu_units > 0.0 else 0.0
        self.controller.on_iteration_end(tc, tg)

        return IterationMetrics(
            index=index,
            r=r,
            tc=tc,
            tg=tg,
            wall_s=system.now - t0,
            energy_j=system.total_energy_j - e0,
            gpu_energy_j=system.meter_gpu.energy_j - e0_gpu,
            cpu_energy_j=system.meter_cpu.energy_j - e0_cpu,
        )

    def run(self, n_iterations: int) -> list[IterationMetrics]:
        """Execute ``n_iterations`` back to back."""
        if n_iterations < 1:
            raise SimulationError("need at least one iteration")
        return [self.run_iteration(i) for i in range(n_iterations)]


def run_workload(
    workload: Workload,
    policy: Policy,
    n_iterations: int | None = None,
    system: HeteroSystem | None = None,
    options: ExecutorOptions | None = None,
    recorder: TraceRecorder | None = None,
    warmup_s: float = 0.0,
    telemetry: Telemetry | NullTelemetry | None = None,
    audit=None,
    cache=None,
) -> RunResult:
    """Run a full measured experiment: one workload under one policy.

    Builds a fresh default testbed unless one is supplied, applies the
    policy's initial state, attaches its controller, runs the iterations,
    and returns a :class:`RunResult` with wall energies from both meters.

    ``warmup_s`` inserts an idle lead-in (controller attached, no work
    submitted) before the first iteration — the paper's Fig. 5 trace
    starts this way, with the scaler observing an idle GPU.

    With an enabled ``telemetry`` backend, every metric/span the run
    emits is labeled ``workload=<name>, policy=<name>``, spans carry the
    testbed's simulated clock, and run-level energy/time gauges are set
    at the end (see ``docs/observability.md``).

    ``audit`` optionally attaches a decision
    :class:`~repro.telemetry.audit.AuditTrail`; the caller serializes it
    (``audit.write(dir)``) next to the telemetry exports.

    ``cache`` optionally consults a
    :class:`~repro.cache.ResultCache` before simulating.  Caching only
    engages when no ``system`` is supplied (the key describes the
    default testbed) and the workload is fingerprintable; a hit is only
    *served* when the run is otherwise unobserved — no caller recorder,
    no enabled telemetry, no audit trail — because those side-effect
    artifacts must come from a live run.  Instrumented runs still
    *store* their result so later plain invocations can skip the work.
    """
    if n_iterations is None:
        n_iterations = workload.default_iterations
    if warmup_s < 0.0:
        raise SimulationError("warmup must be non-negative")
    tel = telemetry if telemetry is not None else NOOP
    cache_key = None
    if cache is not None and system is None:
        from repro.cache import run_key

        cache_key = run_key(workload, policy, n_iterations, options, warmup_s)
        if (
            cache_key is not None
            and recorder is None
            and audit is None
            and not tel.enabled
        ):
            payload = cache.get(cache_key)
            if payload is not None:
                from repro.analysis.serialize import result_from_dict

                try:
                    result = result_from_dict(payload["result"])
                    result.engine = "cache"
                    return result
                except Exception:
                    # Entry parsed but does not round-trip (e.g. written
                    # by an incompatible revision): recompute, and the
                    # put below overwrites it.
                    pass
    if system is None:
        system = make_testbed()
    recorder = recorder if recorder is not None else TraceRecorder()
    if tel.enabled:
        # Labels and the sim-clock binding must be in place before the
        # controller caches its health counters at construction time.
        tel.set_base_labels(workload=workload.name, policy=policy.name)
        tel.bind_clock(system.clock)
        system.clock.set_telemetry(tel)

    policy.apply_initial_state(system)
    controller = policy.make_controller(recorder, telemetry=telemetry, audit=audit)
    controller.attach(system)
    system.reset_meters()
    t0 = system.now
    spin0 = system.cpu.spin_seconds
    spin_e0 = system.cpu.spin_energy_j
    if warmup_s > 0.0:
        system.run_for(warmup_s)

    executor = HeteroExecutor(system, workload, controller, options, telemetry=tel)
    try:
        with tel.span("run", n_iterations=n_iterations):
            iterations = executor.run(n_iterations)
        # detach() drops all learned state, so read the ratio first.
        final_ratio = controller.ratio
    finally:
        controller.detach()
        system.clock.set_telemetry(None)
        # The 1 Hz logs must cover the full measurement, including the
        # trailing partial sampling window — even when an iteration dies
        # mid-horizon (timeout, step explosion): a caller-owned system's
        # meter logs must never be left with an unflushed partial window.
        system.finalize_meters()

    result = RunResult(
        workload=workload.name,
        policy=policy.name,
        iterations=iterations,
        total_s=system.now - t0,
        total_energy_j=system.total_energy_j,
        gpu_energy_j=system.meter_gpu.energy_j,
        cpu_energy_j=system.meter_cpu.energy_j,
        cpu_spin_s=system.cpu.spin_seconds - spin0,
        cpu_spin_energy_j=system.cpu.spin_energy_j - spin_e0,
        cpu_energy_emulated_idle_spin_j=0.0,
        final_ratio=final_ratio,
        traces=recorder.as_dict(),
        health=controller.health,
    )
    # Fig. 6c emulation input: Meter1 energy with spin periods replaced by
    # lowest-P-state idle (see CpuDevice.emulated_energy_with_idle_spin).
    floor_ratio = system.cpu.spec.ladder.floor / system.cpu.spec.ladder.peak
    idle_floor_w = system.cpu.spec.power.idle_power(floor_ratio)
    saved_device_j = result.cpu_spin_energy_j - result.cpu_spin_s * idle_floor_w
    result.cpu_energy_emulated_idle_spin_j = (
        result.cpu_energy_j - saved_device_j / system.config.meter1_efficiency
    )
    if tel.enabled:
        t_end = system.now
        tel.gauge("run_total_energy_j").set(result.total_energy_j, t=t_end)
        tel.gauge("run_gpu_energy_j").set(result.gpu_energy_j, t=t_end)
        tel.gauge("run_cpu_energy_j").set(result.cpu_energy_j, t=t_end)
        tel.gauge("run_time_s").set(result.total_s, t=t_end)
        if result.total_s > 0.0:
            tel.gauge("run_avg_power_w").set(
                result.total_energy_j / result.total_s, t=t_end
            )
        tel.gauge("run_final_ratio").set(result.final_ratio, t=t_end)
    if cache_key is not None:
        from repro.analysis.serialize import result_to_dict

        payload = {"result": result_to_dict(result)}
        if tel.enabled:
            payload["telemetry"] = tel.registry.snapshot()
        cache.put(cache_key, payload)
    return result
