"""Per-iteration and whole-run measurement records.

Energy accounting follows the paper's meter boundaries: per-iteration and
whole-run energies are *wall* energies (Meter1 + Meter2), with the GPU
card's share (Meter2) also recorded separately, since Fig. 6a/6b report
GPU-only savings while Figs. 2 and 8 report whole-system energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.faults.health import ControlHealth

__all__ = ["ControlHealth", "IterationMetrics", "RunResult"]


@dataclass(frozen=True, slots=True)
class IterationMetrics:
    """Measurements for one tier-1 iteration."""

    index: int
    r: float                 # CPU work share used this iteration
    tc: float                # CPU-side completion time (0 if no CPU share)
    tg: float                # GPU-side completion time
    wall_s: float            # iteration wall time (incl. division overhead)
    energy_j: float          # whole-system wall energy over the iteration
    gpu_energy_j: float      # Meter2 share
    cpu_energy_j: float      # Meter1 share

    def __post_init__(self) -> None:
        if self.wall_s < 0.0 or self.energy_j < 0.0:
            raise SimulationError("iteration metrics must be non-negative")


@dataclass
class RunResult:
    """Results of one workload run under one policy."""

    workload: str
    policy: str
    iterations: list[IterationMetrics] = field(default_factory=list)
    total_s: float = 0.0
    total_energy_j: float = 0.0
    gpu_energy_j: float = 0.0
    cpu_energy_j: float = 0.0
    cpu_spin_s: float = 0.0
    cpu_spin_energy_j: float = 0.0
    cpu_energy_emulated_idle_spin_j: float = 0.0
    final_ratio: float = 0.0
    traces: dict = field(default_factory=dict)
    health: ControlHealth = field(default_factory=ControlHealth)
    # Which executor path produced this result: "scalar", "batch", "cache",
    # or "scalar:<reason>" when the batch executor fell back.  Execution
    # provenance only — deliberately excluded from result_to_dict so batch
    # and scalar runs serialize (and cache) identically.
    engine: str = "scalar"

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def average_power_w(self) -> float:
        if self.total_s <= 0.0:
            raise SimulationError("run has no elapsed time")
        return self.total_energy_j / self.total_s

    def ratios(self) -> np.ndarray:
        """Division ratio per iteration."""
        return np.array([m.r for m in self.iterations])

    def iteration_energies(self) -> np.ndarray:
        """Whole-system energy per iteration (paper Fig. 8 y-axis)."""
        return np.array([m.energy_j for m in self.iterations])

    def iteration_times(self) -> tuple[np.ndarray, np.ndarray]:
        """(tc, tg) arrays per iteration (paper Fig. 7 y-axis)."""
        return (
            np.array([m.tc for m in self.iterations]),
            np.array([m.tg for m in self.iterations]),
        )

    def energy_saving_vs(self, baseline: "RunResult") -> float:
        """Fractional whole-system energy saving relative to ``baseline``."""
        if baseline.total_energy_j <= 0.0:
            raise SimulationError("baseline has no energy measurement")
        return 1.0 - self.total_energy_j / baseline.total_energy_j

    def gpu_energy_saving_vs(self, baseline: "RunResult") -> float:
        """Fractional GPU-card (Meter2) energy saving vs ``baseline``."""
        if baseline.gpu_energy_j <= 0.0:
            raise SimulationError("baseline has no GPU energy measurement")
        return 1.0 - self.gpu_energy_j / baseline.gpu_energy_j

    def slowdown_vs(self, baseline: "RunResult") -> float:
        """Fractional execution-time increase relative to ``baseline``."""
        if baseline.total_s <= 0.0:
            raise SimulationError("baseline has no elapsed time")
        return self.total_s / baseline.total_s - 1.0
