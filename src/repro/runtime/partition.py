"""Work partitioning between the CPU and GPU shares.

Two layers of partitioning exist in the reproduction, mirroring the
paper's implementation (§VI: "we repeatedly call kernel functions with
different data sizes to implement the workload division"):

- **Unit split** (:func:`split_units`) — the simulator's view: an
  iteration's normalized work divides into a CPU fraction ``r`` and a GPU
  fraction ``1 - r``.
- **Array partition** (:func:`partition_array`, :func:`partition_slices`)
  — the functional view used by the real numpy kernels: the actual data
  rows split at ``round(r * n)``, the CPU computes its slice, the "GPU"
  computes the rest, and the merged result must equal the unpartitioned
  reference (tested per workload).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError


def split_units(total_units: float, r: float) -> tuple[float, float]:
    """Split ``total_units`` into (cpu_units, gpu_units) by CPU share ``r``."""
    if total_units < 0.0:
        raise PartitionError("total units must be non-negative")
    if not 0.0 <= r <= 1.0:
        raise PartitionError(f"ratio must be in [0, 1], got {r}")
    cpu_units = r * total_units
    return cpu_units, total_units - cpu_units


def partition_slices(n: int, r: float) -> tuple[slice, slice]:
    """(cpu_slice, gpu_slice) over ``n`` rows for CPU share ``r``.

    The boundary rounds to the nearest row, so tiny nonzero shares of a
    small array may produce an empty CPU slice — exactly what happens with
    real chunked dispatch.
    """
    if n < 0:
        raise PartitionError("n must be non-negative")
    if not 0.0 <= r <= 1.0:
        raise PartitionError(f"ratio must be in [0, 1], got {r}")
    boundary = int(round(r * n))
    return slice(0, boundary), slice(boundary, n)


def partition_array(arr: np.ndarray, r: float) -> tuple[np.ndarray, np.ndarray]:
    """Split ``arr`` along axis 0 into (cpu_part, gpu_part) views.

    Views, not copies: the kernels may write results in place, as the
    pthread/OpenMP implementation does with shared host memory.
    """
    cpu_slice, gpu_slice = partition_slices(arr.shape[0], r)
    return arr[cpu_slice], arr[gpu_slice]
