"""Deterministic seed derivation for hierarchical simulations.

Fleet runs instantiate thousands of nodes, each carrying its own seeded
random state (fault draw streams, workload mixes, load-phase jitter).
Deriving those seeds as ``seed + i`` makes adjacent nodes' streams
trivially correlated (PCG64 and friends only guarantee independence for
well-separated seeds) and collides across dimensions (node 3's faults
vs. window 3's jitter).  This module provides one shared, well-mixed
derivation used everywhere a child seed is spawned:

- :func:`spawn_seed` hashes a root seed and a path of child indices
  through the SplitMix64 finalizer — the mixer Vigna designed exactly
  for turning counter-like inputs into decorrelated seed material;
- :func:`spawn_uniform` maps a spawned seed onto ``[0, 1)`` for
  stateless deterministic jitter (no RNG object to thread or pickle,
  so a node's draw is identical no matter which shard simulates it).

All arithmetic is mod 2**64; results are non-negative Python ints that
fit ``np.random.default_rng`` and JSON alike.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: 2**64 / golden ratio — SplitMix64's stream increment.
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a 64-bit avalanche permutation."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def spawn_seed(root_seed: int, *path: int) -> int:
    """Derive a child seed from ``root_seed`` and a path of indices.

    ``spawn_seed(s, a, b)`` is the seed of child ``b`` of child ``a`` of
    the root — each level applies one SplitMix64 step, so siblings,
    cousins and the root all get decorrelated streams.  With an empty
    path the root seed itself is mixed once (still deterministic).

    Path components may be negative (they are folded mod 2**64); the
    result is always in ``[0, 2**63)`` so it is valid anywhere a
    non-negative seed is expected.
    """
    state = _mix64(root_seed)
    for component in path:
        state = _mix64(state + _GOLDEN * ((component & _MASK64) + 1))
    return state >> 1  # 63 bits: non-negative everywhere


def spawn_uniform(root_seed: int, *path: int) -> float:
    """A deterministic uniform draw in ``[0, 1)`` for the given path.

    Stateless: the value depends only on the seed and the path, never on
    call order — which is what makes scenario jitter identical across
    shardings of the same fleet.
    """
    return spawn_seed(root_seed, *path) / float(1 << 63)
