"""Simulation-as-a-service: the daemon serving layer.

See ``docs/service.md`` for the operational story.  The package splits
along failure-domain lines:

- :mod:`~repro.service.config` — one frozen, validated config object.
- :mod:`~repro.service.models` — request parsing, job records, phases.
- :mod:`~repro.service.admission` — token buckets, bounded tenant
  queues, weighted-fair dequeue, Retry-After math.
- :mod:`~repro.service.breaker` — the cache-only/open degradation ladder.
- :mod:`~repro.service.daemon` — orchestration: workers, deadlines,
  journal, recovery, drain.
- :mod:`~repro.service.http` — the asyncio HTTP/1.1 front-end.
- :mod:`~repro.service.client` — blocking stdlib client.
- :mod:`~repro.service.testing` — in-process runner for tests/benchmarks.
"""

from repro.service.admission import AdmissionRefused, FairTenantQueues, TokenBucket
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.config import DEFAULT_TENANT, ServiceConfig
from repro.service.daemon import SimulationService, Unavailable
from repro.service.http import HttpFrontend
from repro.service.models import (
    JOB_TARGET,
    JobPhase,
    JobRecord,
    JobRequest,
    TERMINAL_PHASES,
    parse_request,
)

__all__ = [
    "AdmissionRefused",
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_TENANT",
    "FairTenantQueues",
    "HttpFrontend",
    "JOB_TARGET",
    "JobPhase",
    "JobRecord",
    "JobRequest",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "SimulationService",
    "TERMINAL_PHASES",
    "TokenBucket",
    "Unavailable",
]
