"""Admission control: token buckets, bounded tenant queues, fair dequeue.

The backpressure design mirrors the controller's holistic philosophy —
keep the system inside its envelope by shaping load at the edge rather
than letting overload propagate:

- Each tenant owns a **token bucket** (rate + burst).  An empty bucket
  is a per-tenant 429 with a ``Retry-After`` telling the client exactly
  when a token lands.
- Each tenant owns a **bounded queue**.  A full queue is that tenant's
  problem alone; other tenants keep flowing.
- A **global high-water mark** across all queues triggers load-shedding
  for everyone, with ``Retry-After`` derived from queue depth and the
  observed service rate (how long until the backlog drains below the
  mark).
- Workers pull via **smooth weighted round-robin** across tenants, so a
  tenant with weight 3 gets three dequeues for every one of a weight-1
  tenant regardless of how deep either queue is — no tenant can starve
  another by flooding.

Everything takes an injectable ``clock`` (``time.monotonic`` shaped) so
the unit tests are deterministic.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from typing import Any, Callable

from repro.errors import ServiceError
from repro.service.config import ServiceConfig


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0.0 or burst <= 0.0:
            raise ServiceError("token bucket rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def try_take(self, amount: float = 1.0) -> tuple[bool, float]:
        """Take ``amount`` tokens; returns ``(ok, retry_after_s)``.

        On refusal ``retry_after_s`` is the exact wait until the bucket
        holds ``amount`` again — the 429's ``Retry-After``.
        """
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True, 0.0
        return False, (amount - self._tokens) / self.rate


class FairTenantQueues:
    """Bounded per-tenant FIFO queues with smooth weighted round-robin.

    ``put`` enforces the per-tenant bound and the global high-water mark
    (both raise typed refusals carrying a retry hint); ``take`` returns
    the next item under smooth WRR — each active tenant's ``current``
    weight grows by its configured weight every round and the largest
    ``current`` wins and pays the total back, which interleaves heavy
    and light tenants instead of bursting.
    """

    def __init__(self, config: ServiceConfig,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self.clock = clock
        self._queues: "OrderedDict[str, deque[Any]]" = OrderedDict()
        self._current: dict[str, float] = {}
        self._buckets: dict[str, TokenBucket] = {}
        #: EWMA of observed job service seconds; seeds the drain estimate
        #: behind Retry-After before any job has completed.
        self.service_rate_ewma_s = 0.5

    # -- admission ------------------------------------------------------

    def depth(self, tenant: str | None = None) -> int:
        if tenant is not None:
            queue = self._queues.get(tenant)
            return len(queue) if queue is not None else 0
        return sum(len(q) for q in self._queues.values())

    def bucket(self, tenant: str) -> TokenBucket:
        if tenant not in self._buckets:
            self._buckets[tenant] = TokenBucket(
                self.config.rate_per_tenant, self.config.burst_per_tenant,
                clock=self.clock,
            )
        return self._buckets[tenant]

    def observe_service_time(self, seconds: float) -> None:
        """Feed one completed job's wall seconds into the drain estimate."""
        self.service_rate_ewma_s = (
            0.8 * self.service_rate_ewma_s + 0.2 * max(seconds, 1e-3)
        )

    def shed_retry_after_s(self) -> float:
        """How long until the backlog drains below the high-water mark."""
        overflow = self.depth() - self.config.global_high_water + 1
        per_slot = self.service_rate_ewma_s / max(self.config.workers, 1)
        return max(overflow, 1) * per_slot

    def admit(self, tenant: str, item: Any) -> None:
        """Enqueue ``item`` for ``tenant`` or raise a typed refusal.

        Raises :class:`AdmissionRefused` with ``reason`` in
        ``{"rate_limited", "queue_full", "high_water"}`` and a
        ``retry_after_s`` hint.
        """
        ok, retry_after = self.bucket(tenant).try_take()
        if not ok:
            raise AdmissionRefused("rate_limited", retry_after, tenant)
        if self.depth() >= self.config.global_high_water:
            raise AdmissionRefused("high_water", self.shed_retry_after_s(),
                                   tenant)
        queue = self._queues.get(tenant)
        if queue is not None and len(queue) >= self.config.tenant_queue_limit:
            per_slot = self.service_rate_ewma_s / max(self.config.workers, 1)
            raise AdmissionRefused("queue_full", max(per_slot, 0.05), tenant)
        if queue is None:
            queue = self._queues.setdefault(tenant, deque())
        queue.append(item)

    def requeue(self, tenant: str, item: Any) -> None:
        """Re-enqueue an item that was already admitted once (crash
        recovery): bypasses the token bucket and the high-water mark —
        rejecting previously-accepted work would turn a restart into
        data loss — but still lands in the tenant's own queue for fair
        dequeue."""
        self._queues.setdefault(tenant, deque()).append(item)

    # -- dequeue --------------------------------------------------------

    def take(self) -> Any | None:
        """Next item under smooth weighted round-robin, or None if empty."""
        active = [t for t, q in self._queues.items() if q]
        if not active:
            return None
        total = 0.0
        best: str | None = None
        for tenant in active:
            weight = self.config.weight(tenant)
            total += weight
            self._current[tenant] = self._current.get(tenant, 0.0) + weight
            if best is None or self._current[tenant] > self._current[best]:
                best = tenant
        assert best is not None
        self._current[best] -= total
        queue = self._queues[best]
        item = queue.popleft()
        if not queue:
            # Drop empty queues (and their WRR credit) so an idle tenant
            # doesn't bank unfair priority for later.
            del self._queues[best]
            self._current.pop(best, None)
        return item

    def drain_expired(self, is_expired: Callable[[Any], bool]) -> list[Any]:
        """Remove and return every queued item ``is_expired`` flags."""
        removed: list[Any] = []
        for tenant in list(self._queues):
            queue = self._queues[tenant]
            keep = deque(item for item in queue if not is_expired(item))
            if len(keep) != len(queue):
                removed.extend(item for item in queue if is_expired(item))
                if keep:
                    self._queues[tenant] = keep
                else:
                    del self._queues[tenant]
                    self._current.pop(tenant, None)
        return removed

    def drain_all(self) -> list[Any]:
        """Remove and return everything (shutdown abandonment path)."""
        removed: list[Any] = []
        for queue in self._queues.values():
            removed.extend(queue)
        self._queues.clear()
        self._current.clear()
        return removed


class AdmissionRefused(ServiceError):
    """A submission was refused at the door (the HTTP 429 family)."""

    def __init__(self, reason: str, retry_after_s: float, tenant: str) -> None:
        super().__init__(f"{reason} (tenant {tenant!r}, "
                         f"retry after {retry_after_s:.2f}s)")
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.tenant = tenant
