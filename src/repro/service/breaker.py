"""Circuit breaker with a graceful-degradation ladder, not a binary trip.

Mirrors the hardened controller's fallback -> skip -> safe-state ladder
(docs/architecture.md) at the serving layer:

- ``CLOSED`` — normal: simulate misses, serve hits.
- ``CACHE_ONLY`` — after ``cache_only_after`` *consecutive* worker
  failures: stop dispatching simulations (workers pause, the queue
  holds), keep serving content-addressed cache hits.  Identical
  resubmissions of anything ever computed still succeed while the
  backend is sick.
- ``OPEN`` — failures kept coming (``hard_open_after``): hard-reject
  everything until the cooldown elapses.

Recovery is probe-based: after ``cooldown_s`` in a degraded state the
breaker *half-opens* — exactly one queued job is allowed through as a
canary.  Success closes the breaker and resets the failure count; a
failed canary re-arms the cooldown and keeps the consecutive-failure
count climbing toward ``OPEN`` (degradation is sticky, the way the
controller's watchdog escalates rather than oscillates).

Only *worker* failures count: process deaths, timeouts, unreadable
artifacts.  A simulation that raises a clean application error is the
submission's problem, not the backend's, and must not trip the breaker.

The breaker takes an injectable monotonic ``clock`` for deterministic
tests.
"""

from __future__ import annotations

import enum
import time
from typing import Callable


class BreakerState(enum.Enum):
    CLOSED = "closed"
    CACHE_ONLY = "cache_only"
    OPEN = "open"


class CircuitBreaker:
    def __init__(self, cache_only_after: int = 3, hard_open_after: int = 6,
                 cooldown_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.cache_only_after = cache_only_after
        self.hard_open_after = hard_open_after
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._consecutive_failures = 0
        self._state = BreakerState.CLOSED
        self._opened_at: float | None = None
        self._probe_out = False
        self.transitions: list[tuple[str, str]] = []  # (from, to) audit

    # -- observations ---------------------------------------------------

    def record_success(self) -> None:
        """A worker attempt completed; close and forgive everything."""
        self._consecutive_failures = 0
        self._probe_out = False
        self._set_state(BreakerState.CLOSED)
        self._opened_at = None

    def record_failure(self) -> None:
        """A worker-level failure (death/timeout/unreadable artifact)."""
        self._consecutive_failures += 1
        self._probe_out = False
        if self._consecutive_failures >= self.hard_open_after:
            self._trip(BreakerState.OPEN)
        elif self._consecutive_failures >= self.cache_only_after:
            self._trip(BreakerState.CACHE_ONLY)

    def release_probe(self) -> None:
        """Retire an outstanding canary that reached no verdict (the job
        was cancelled or its deadline expired).  Without this a degraded
        breaker would wait forever for a probe result that never comes."""
        self._probe_out = False

    def _trip(self, state: BreakerState) -> None:
        self._set_state(state)
        self._opened_at = self._clock()

    def _set_state(self, state: BreakerState) -> None:
        if state is not self._state:
            self.transitions.append((self._state.value, state.value))
            self._state = state

    # -- queries --------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def cooldown_remaining_s(self) -> float:
        """Seconds until a half-open probe (0 when closed or due)."""
        if self._state is BreakerState.CLOSED or self._opened_at is None:
            return 0.0
        return max(0.0, self._opened_at + self.cooldown_s - self._clock())

    def allow_execution(self) -> bool:
        """May a worker dispatch the next queued job right now?

        In a degraded state, only the single half-open canary passes
        (and only after the cooldown); its success/failure is reported
        back via ``record_success``/``record_failure``, which also
        retires the probe flag.
        """
        if self._state is BreakerState.CLOSED:
            return True
        if self._probe_out or self.cooldown_remaining_s() > 0.0:
            return False
        self._probe_out = True
        return True

    def allow_cache_serve(self) -> bool:
        """Cache hits flow in every state except hard-open."""
        return self._state is not BreakerState.OPEN

    def allow_enqueue(self) -> bool:
        """New work may queue unless the breaker is hard-open."""
        return self._state is not BreakerState.OPEN
