"""Blocking stdlib client for the simulation service.

Used by the benchmark, the chaos suite, and the CI smoke job; also a
reasonable programmatic API for anything else that wants to talk to the
daemon without pulling in an HTTP library.

Every call returns ``(status_code, decoded_json, headers)`` —
the client never raises on HTTP error statuses (429/503 are *expected*
answers under load; callers decide how to react).  Connection-level
failures raise :class:`ServiceClientError`.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from repro.errors import ServiceError


class ServiceClientError(ServiceError):
    """The daemon was unreachable or the response was not HTTP."""


class ServiceClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 8100,
                 timeout_s: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: http.client.HTTPConnection | None = None
        # Client-side trace root: every submission sends a distinct child
        # as a ``traceparent`` header so the daemon grafts the job under
        # this client rather than minting a per-request root.  Seeded by
        # endpoint, not wall clock, so replayed runs stitch identically.
        from repro.telemetry.tracecontext import TraceContext

        self.trace = TraceContext.root("client", f"{host}:{port}")
        self._submit_seq = 0

    # -- plumbing -------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str, body: Any = None,
                extra_headers: dict[str, str] | None = None,
                ) -> tuple[int, Any, dict[str, str]]:
        payload = None
        headers = dict(extra_headers or {})
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):  # one transparent reconnect on a dead keep-alive
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, OSError) as exc:
                self.close()
                if attempt:
                    raise ServiceClientError(
                        f"{method} {path}: {type(exc).__name__}: {exc}"
                    ) from exc
        out_headers = {k.lower(): v for k, v in response.getheaders()}
        if not raw:
            return response.status, None, out_headers
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError:
            decoded = raw.decode("utf-8", "replace")
        return response.status, decoded, out_headers

    # -- the API --------------------------------------------------------

    def submit(self, **job: Any) -> tuple[int, Any, dict[str, str]]:
        """POST /jobs.  Kwargs form the submission body verbatim."""
        self._submit_seq += 1
        child = self.trace.child("submit", self._submit_seq)
        return self.request("POST", "/jobs", job,
                            extra_headers={"traceparent":
                                           child.to_traceparent()})

    def status(self, job_id: str) -> tuple[int, Any, dict[str, str]]:
        return self.request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> tuple[int, Any, dict[str, str]]:
        return self.request("DELETE", f"/jobs/{job_id}")

    def healthz(self) -> tuple[int, Any, dict[str, str]]:
        return self.request("GET", "/healthz")

    def readyz(self) -> tuple[int, Any, dict[str, str]]:
        return self.request("GET", "/readyz")

    def metrics_text(self) -> str:
        status, body, _ = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceClientError(f"/metrics returned {status}")
        return body if isinstance(body, str) else json.dumps(body)

    def wait(self, job_id: str, timeout_s: float = 60.0,
             poll_s: float = 0.05) -> dict[str, Any]:
        """Poll GET /jobs/<id> until the job reaches a terminal phase."""
        deadline = time.monotonic() + timeout_s
        while True:
            status, body, _ = self.status(job_id)
            if status == 200 and body.get("phase") in (
                    "done", "failed", "expired", "cancelled"):
                return body
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"job {job_id} not terminal after {timeout_s:.1f}s "
                    f"(last: {status} {body})"
                )
            time.sleep(poll_s)
