"""Configuration for the simulation-as-a-service daemon.

Every robustness knob of the serving layer lives here so a deployment
(or a chaos test) can shape the whole degradation ladder from one
object: queue bounds and the global high-water mark (admission control),
token-bucket rates (per-tenant throttling), deadline and timeout
ceilings, circuit-breaker thresholds, and drain behavior.

The defaults are sized for the CI smoke environment — small queues that
overflow quickly under the chaos suite — not for production; a real
deployment raises them via ``serve`` CLI flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Tenant identifier for requests that do not name one.
DEFAULT_TENANT = "public"


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving layer (see module docstring)."""

    host: str = "127.0.0.1"
    port: int = 8100                  # 0 = pick an ephemeral port
    workers: int = 2                  # concurrent simulation executions

    # -- admission control / backpressure ------------------------------
    tenant_queue_limit: int = 64      # bounded per-tenant queue depth
    global_high_water: int = 256      # total queued jobs before load-shed
    rate_per_tenant: float = 50.0     # token-bucket refill, jobs/second
    burst_per_tenant: float = 100.0   # token-bucket capacity
    tenant_weights: dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0       # weighted-fair share of unlisted tenants

    # -- deadlines and timeouts ----------------------------------------
    job_timeout_s: float = 120.0      # per-attempt wall-clock kill deadline
    max_deadline_s: float = 3600.0    # largest client deadline accepted
    retry_max_attempts: int = 3
    retry_base_backoff_s: float = 0.05
    retry_max_backoff_s: float = 1.0
    retry_jitter_seed: int | None = None  # None = entropy; set for tests

    # -- circuit breaker / degradation ladder --------------------------
    breaker_cache_only_after: int = 3   # consecutive worker failures
    breaker_hard_open_after: int = 6    # ... before hard-rejecting
    breaker_cooldown_s: float = 5.0     # dwell before a half-open probe

    # -- validation guards on submissions ------------------------------
    max_iterations: int = 64
    max_time_scale: float = 1.0

    # -- lifecycle ------------------------------------------------------
    drain_timeout_s: float = 30.0     # SIGTERM: finish in-flight work
    slow_client_timeout_s: float = 5.0   # per-read header/body deadline
    keepalive_timeout_s: float = 10.0    # idle persistent connections
    isolate: bool = True              # spawn-isolated workers (False: threads)

    # -- observability ---------------------------------------------------
    # When set, served jobs export per-worker telemetry under this
    # directory (workers/<job-id>/) and shutdown merges them, plus the
    # daemon's own stream, into run-level exports — one stitched trace.
    telemetry_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError("need at least one worker")
        if self.tenant_queue_limit < 1 or self.global_high_water < 1:
            raise ConfigError("queue bounds must be positive")
        if self.rate_per_tenant <= 0.0 or self.burst_per_tenant <= 0.0:
            raise ConfigError("token-bucket rate and burst must be positive")
        if self.default_weight <= 0.0 or any(
            w <= 0.0 for w in self.tenant_weights.values()
        ):
            raise ConfigError("tenant weights must be positive")
        if self.job_timeout_s <= 0.0 or self.max_deadline_s <= 0.0:
            raise ConfigError("timeouts must be positive")
        if not 0 < self.breaker_cache_only_after <= self.breaker_hard_open_after:
            raise ConfigError(
                "breaker thresholds must satisfy 0 < cache_only <= hard_open"
            )
        if self.breaker_cooldown_s <= 0.0:
            raise ConfigError("breaker cooldown must be positive")
        if self.max_iterations < 1 or self.max_time_scale <= 0.0:
            raise ConfigError("submission guards must be positive")
        if self.drain_timeout_s < 0.0:
            raise ConfigError("drain timeout must be non-negative")

    def weight(self, tenant: str) -> float:
        return self.tenant_weights.get(tenant, self.default_weight)
