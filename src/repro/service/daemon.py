"""The simulation-as-a-service daemon: orchestration and lifecycle.

:class:`SimulationService` owns the whole serving pipeline::

    HTTP -> admission (breaker, cache, token bucket, bounded queues)
         -> weighted-fair dequeue -> spawn-isolated execution
         -> journal + content-addressed cache -> status/result endpoints

Robustness properties, and where they live:

- **No lost or duplicated results.**  Every submission is journaled
  (write-ahead, fsynced — :class:`repro.harness.journal.Journal`) before
  it is queued, every completion is journaled with the artifact's
  SHA-256, and recovery re-enqueues exactly the submitted-but-unfinished
  jobs; finished jobs whose artifact bytes still hash correctly are
  served from disk, never re-simulated.
- **Backpressure, not collapse.**  Admission refusals are typed
  (:class:`~repro.service.admission.AdmissionRefused`) and carry a
  ``Retry-After`` derived from queue depth and the observed service
  rate; the HTTP layer turns them into 429s.
- **Deadlines end-to-end.**  A reaper expires queued jobs; the worker
  loop kills in-flight processes at their deadline; both paths journal
  ``job_expired``.
- **Degradation ladder.**  Consecutive worker failures walk the
  :class:`~repro.service.breaker.CircuitBreaker` through
  cache-only -> hard-reject; recovery is canary-probed.
- **Drain-then-exit.**  ``shutdown()`` stops admission, lets workers
  finish (bounded by ``drain_timeout_s``), kills and journals the rest,
  and flushes the journal; a restart with the same run directory
  resumes them.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any

from repro.errors import ServiceError
from repro.faults.retry import RetryPolicy
from repro.harness.journal import JOURNAL_NAME, Journal, read_journal
from repro.harness.worker import read_artifact, run_job_inline, worker_main
from repro.ioutil import sha256_file
from repro.service.admission import AdmissionRefused, FairTenantQueues
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.config import ServiceConfig
from repro.service.models import (
    JOB_TARGET,
    JobPhase,
    JobRecord,
    JobRequest,
    parse_request,
    request_from_dict,
)
from repro.telemetry.slo import DEFAULT_SLOS, DEFAULT_WINDOWS, evaluate_slos
from repro.telemetry.tracecontext import TraceContext

_POLL_S = 0.01

#: Numeric breaker-state gauge (Prometheus-friendly).
_BREAKER_LEVEL = {
    BreakerState.CLOSED: 0, BreakerState.CACHE_ONLY: 1, BreakerState.OPEN: 2,
}


class Unavailable(ServiceError):
    """The service cannot take this submission right now (HTTP 503)."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(f"unavailable: {reason}")
        self.reason = reason
        self.retry_after_s = retry_after_s


class SimulationService:
    """One daemon instance bound to one run directory."""

    def __init__(self, config: ServiceConfig,
                 run_dir: str | os.PathLike[str],
                 cache=None, telemetry=None) -> None:
        from repro.telemetry import Telemetry

        self.config = config
        self.run_dir = os.fspath(run_dir)
        self.artifact_dir = os.path.join(self.run_dir, "artifacts")
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.records: dict[str, JobRecord] = {}
        self.queues = FairTenantQueues(config)
        self.breaker = CircuitBreaker(
            cache_only_after=config.breaker_cache_only_after,
            hard_open_after=config.breaker_hard_open_after,
            cooldown_s=config.breaker_cooldown_s,
        )
        self.retry = RetryPolicy(
            max_attempts=config.retry_max_attempts,
            base_backoff_s=config.retry_base_backoff_s,
            max_backoff_s=config.retry_max_backoff_s,
            jitter="decorrelated",
            jitter_seed=config.retry_jitter_seed,
        )
        self._seq = 0
        self._req_seq = 0               # trace roots for headerless requests
        self.draining = False           # admission gate (503 when True)
        self._shutdown_started = False  # shutdown() re-entrancy guard
        self.started = False
        self._journal: Journal | None = None
        self._tasks: list[asyncio.Task] = []
        self._stopped = asyncio.Event()
        #: In-flight worker processes by job id (chaos tests reach in).
        self.running_procs: dict[str, Any] = {}
        import multiprocessing

        self._ctx = multiprocessing.get_context("spawn")

    # -- metrics shorthand ---------------------------------------------

    def _count(self, name: str, **labels: Any) -> None:
        self.telemetry.counter(name, **labels).inc()

    def _set_gauges(self) -> None:
        tel = self.telemetry
        tel.gauge("service_queue_depth").set(float(self.queues.depth()))
        tel.gauge("service_running_jobs").set(float(len(self.running_procs)))
        tel.gauge("service_breaker_level").set(
            float(_BREAKER_LEVEL[self.breaker.state])
        )

    def refresh_slo_gauges(self) -> None:
        """Re-evaluate the declared SLOs into ``slo_*`` gauges.

        Called before every ``/metrics`` render: compliance and burn
        rates come from the same registry + event stream a scraper sees,
        so the gauges are always consistent with the raw series.
        """
        if not self.telemetry.enabled:
            return
        results = evaluate_slos(self.telemetry.registry, self.telemetry.events,
                                specs=DEFAULT_SLOS, windows=DEFAULT_WINDOWS,
                                now=time.time())
        tel = self.telemetry
        for result in results:
            name = result.spec.name
            tel.gauge("slo_target", slo=name).set(result.spec.target)
            if result.compliance is not None:
                tel.gauge("slo_compliance", slo=name).set(result.compliance)
            if result.burn is not None:
                tel.gauge("slo_burn_rate", slo=name,
                          window="run").set(result.burn)
            for window, burn in result.window_burns.items():
                if burn is not None:
                    tel.gauge("slo_burn_rate", slo=name,
                              window=window).set(burn)
            tel.gauge("slo_violated", slo=name).set(
                1.0 if result.violated else 0.0)

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Open the journal, recover prior state, launch workers+reaper."""
        os.makedirs(self.artifact_dir, exist_ok=True)
        journal_path = os.path.join(self.run_dir, JOURNAL_NAME)
        prior = read_journal(journal_path) if os.path.exists(journal_path) else []
        self._journal = Journal(journal_path)
        self._journal.record("service_start",
                             workers=self.config.workers,
                             resume=bool(prior))
        if prior:
            self._recover(prior)
        for index in range(self.config.workers):
            self._tasks.append(
                asyncio.create_task(self._worker_loop(index),
                                    name=f"service-worker-{index}")
            )
        self._tasks.append(
            asyncio.create_task(self._reaper_loop(), name="service-reaper")
        )
        self.started = True
        self._set_gauges()

    def _recover(self, prior: list[dict[str, Any]]) -> None:
        """Rebuild state from a previous incarnation's journal.

        Submitted-but-unfinished jobs re-enter their tenant queues (in
        submission order, bypassing rate limits — they were already
        admitted once); finished jobs whose artifact still verifies are
        served from disk.  Nothing runs twice, nothing vanishes.
        """
        now = time.monotonic()
        now_unix = time.time()
        submitted: dict[str, JobRecord] = {}
        finished: set[str] = set()
        for rec in prior:
            event = rec.get("event")
            job_id = rec.get("job")
            if event == "job_submitted" and job_id:
                request = request_from_dict(rec["request"])
                record = JobRecord(job_id=job_id, request=request)
                record.trace = TraceContext.parse(rec.get("traceparent"))
                record.submitted_unix = rec.get("submitted_unix", now_unix)
                deadline_unix = rec.get("deadline_unix")
                if deadline_unix is not None:
                    record.deadline_monotonic = now + (deadline_unix - now_unix)
                submitted[job_id] = record
                number = int(job_id.rsplit("-", 1)[-1])
                self._seq = max(self._seq, number)
            elif event == "job_cached" and job_id in submitted:
                record = submitted[job_id]
                record.phase = JobPhase.DONE
                record.served_from_cache = True
                if self.cache is not None and record.request.cache_key:
                    entry = self.cache.get(record.request.cache_key)
                    if entry is not None:
                        record.result = entry.get("payload")
                finished.add(job_id)
            elif event == "job_success" and job_id in submitted:
                record = submitted[job_id]
                path = self._artifact_path(job_id)
                sha = rec.get("sha256")
                if os.path.exists(path) and sha256_file(path) == sha:
                    try:
                        record.result = read_artifact(path)
                    except Exception:
                        continue  # unreadable: stays queued, re-runs
                    record.phase = JobPhase.DONE
                    record.artifact_sha256 = sha
                    finished.add(job_id)
            elif event in ("job_failed", "job_expired", "job_cancelled") \
                    and job_id in submitted:
                phase = {"job_failed": JobPhase.FAILED,
                         "job_expired": JobPhase.EXPIRED,
                         "job_cancelled": JobPhase.CANCELLED}[event]
                submitted[job_id].phase = phase
                finished.add(job_id)
        resumed = 0
        for job_id, record in submitted.items():
            self.records[job_id] = record
            if job_id in finished:
                continue
            if record.result is not None:
                continue
            if record.expired(now):
                self._finish_expired(record, where="recovery")
                continue
            record.phase = JobPhase.QUEUED
            self.queues.requeue(record.request.tenant, job_id)
            resumed += 1
        if resumed:
            self._journal.record("service_resumed", jobs=resumed)
            self.telemetry.counter("service_resumed_jobs_total").inc(resumed)

    async def shutdown(self, *, reason: str = "shutdown") -> None:
        """Drain-then-exit: stop admission, finish work, flush, stop."""
        if self._shutdown_started:
            await self._stopped.wait()
            return
        self._shutdown_started = True
        self.draining = True
        if self._journal is not None:
            self._journal.record("service_drain", reason=reason)
        deadline = time.monotonic() + self.config.drain_timeout_s

        def outstanding() -> int:
            return self.queues.depth() + len(self.running_procs)

        while outstanding() and time.monotonic() < deadline \
                and self.breaker.state is BreakerState.CLOSED:
            await asyncio.sleep(_POLL_S)
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        # Whatever survived the drain window stays journaled as
        # submitted-without-terminal-event: the resume contract.
        for job_id, proc in list(self.running_procs.items()):
            try:
                proc.kill()
                proc.join()
            except Exception:
                pass
            record = self.records.get(job_id)
            if record is not None and record.phase is JobPhase.RUNNING:
                record.phase = JobPhase.QUEUED  # will re-run on resume
        self.running_procs.clear()
        abandoned = self.queues.drain_all()
        if self._journal is not None:
            self._journal.record(
                "service_stop",
                outstanding=len(abandoned),
                done=sum(1 for r in self.records.values()
                         if r.phase is JobPhase.DONE),
            )
            self._journal.close()
            self._journal = None
        if self.config.telemetry_dir and self.telemetry.enabled:
            # Fold the per-job worker exports and the daemon's own
            # stream into run-level files: the single stitched trace.
            from repro.telemetry.merge import merge_directory

            self.refresh_slo_gauges()
            merge_directory(self.config.telemetry_dir,
                            extra=[self.telemetry])
        self.started = False
        self._stopped.set()

    # -- admission ------------------------------------------------------

    def admit(self, body: Any,
              trace: TraceContext | None = None) -> tuple[JobRecord, bool]:
        """Admit one decoded submission; returns ``(record, was_cached)``.

        Raises :class:`ServiceError` (400), :class:`AdmissionRefused`
        (429) or :class:`Unavailable` (503); the HTTP layer maps them.

        ``trace`` is the client-propagated context (the ``traceparent``
        header); without one each request roots its own trace.  Admission
        runs synchronously on the event loop, so the ``http_request``
        span safely brackets it, and the job's own trace position is
        derived under that span (see ``_admit_inner``).
        """
        t0 = time.perf_counter()
        self._req_seq += 1
        context = trace if trace is not None \
            else TraceContext.root("service-request", self._req_seq)
        try:
            with self.telemetry.span("http_request", trace=context):
                return self._admit_inner(body)
        finally:
            latency = time.perf_counter() - t0
            self.telemetry.histogram("service_admission_latency_s").observe(
                latency
            )
            self.telemetry.event("service_admission", t_unix=time.time(),
                                 latency_s=latency)
            self._set_gauges()

    def _admit_inner(self, body: Any) -> tuple[JobRecord, bool]:
        if self.draining or not self.started:
            self._count("service_rejected_total", reason="draining")
            raise Unavailable("draining", self.config.drain_timeout_s)
        request = parse_request(body, self.config)
        self._count("service_submissions_total", tenant=request.tenant)

        cached = self._try_cache(request)
        if cached is not None:
            return cached, True

        state = self.breaker.state
        if state is BreakerState.OPEN:
            self._count("service_rejected_total", reason="breaker_open")
            raise Unavailable("breaker_open",
                              max(self.breaker.cooldown_remaining_s(), 0.5))
        if state is BreakerState.CACHE_ONLY \
                and self.breaker.cooldown_remaining_s() > 0.0:
            self._count("service_rejected_total", reason="cache_only_miss")
            raise Unavailable("cache_only_miss",
                              self.breaker.cooldown_remaining_s())

        job_id = self._next_job_id()
        try:
            self.queues.admit(request.tenant, job_id)
        except AdmissionRefused as exc:
            self._count("service_shed_total", reason=exc.reason)
            raise
        record = JobRecord(job_id=job_id, request=request)
        # Child of the open http_request span: the job's trace position.
        record.trace = self.telemetry.child_context("job", job_id)
        if request.deadline_s is not None:
            record.deadline_monotonic = time.monotonic() + request.deadline_s
        self.records[job_id] = record
        self._journal_submit(record)
        self._count("service_accepted_total", tenant=request.tenant)
        return record, False

    def _try_cache(self, request: JobRequest) -> JobRecord | None:
        """Serve an identical prior submission from the result store."""
        if self.cache is None or request.cache_key is None \
                or not self.breaker.allow_cache_serve():
            return None
        entry = self.cache.get(request.cache_key)
        if entry is None or "payload" not in entry:
            return None
        job_id = self._next_job_id()
        record = JobRecord(job_id=job_id, request=request,
                           phase=JobPhase.DONE, served_from_cache=True)
        record.trace = self.telemetry.child_context("job", job_id)
        record.result = entry["payload"]
        record.finished_unix = time.time()
        self.records[job_id] = record
        self._journal_submit(record)
        assert self._journal is not None
        self._journal.record("job_cached", job=job_id,
                             cache_key=request.cache_key)
        self._count("service_cache_hits_total", tenant=request.tenant)
        self._record_job_trace(record)
        return record

    def _journal_submit(self, record: JobRecord) -> None:
        assert self._journal is not None
        deadline_unix = None
        if record.request.deadline_s is not None:
            deadline_unix = record.submitted_unix + record.request.deadline_s
        self._journal.record(
            "job_submitted", job=record.job_id,
            tenant=record.request.tenant,
            request=record.request.as_dict(),
            submitted_unix=record.submitted_unix,
            deadline_unix=deadline_unix,
            traceparent=(record.trace.to_traceparent()
                         if record.trace is not None else None),
        )

    def _next_job_id(self) -> str:
        self._seq += 1
        return f"job-{self._seq:06d}"

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job (running/finished jobs are left alone)."""
        record = self.records.get(job_id)
        if record is None:
            raise KeyError(job_id)
        if record.phase is JobPhase.QUEUED:
            self.queues.drain_expired(lambda item: item == job_id)
            record.phase = JobPhase.CANCELLED
            record.finished_unix = time.time()
            if self._journal is not None:
                self._journal.record("job_cancelled", job=job_id)
            self._count("service_cancelled_total")
            self._set_gauges()
        return record

    # -- health surfaces ------------------------------------------------

    def health(self) -> dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "breaker": self.breaker.state.value,
            "breaker_consecutive_failures": self.breaker.consecutive_failures,
            "queue_depth": self.queues.depth(),
            "running": len(self.running_procs),
            "jobs_tracked": len(self.records),
            "workers": self.config.workers,
        }

    def ready(self) -> bool:
        """Readiness: accepting new submissions at full service."""
        return (self.started and not self.draining
                and self.breaker.state is BreakerState.CLOSED)

    # -- the worker loop ------------------------------------------------

    async def _worker_loop(self, index: int) -> None:
        while True:
            if self.queues.depth() == 0:
                await asyncio.sleep(_POLL_S)
                continue
            if not self.breaker.allow_execution():
                await asyncio.sleep(_POLL_S)
                continue
            job_id = self.queues.take()
            if job_id is None:
                self.breaker.release_probe()
                continue
            record = self.records[job_id]
            if record.phase is not JobPhase.QUEUED:
                self.breaker.release_probe()
                continue  # cancelled/expired while queued
            if record.expired(time.monotonic()):
                self._finish_expired(record, where="queued")
                self.breaker.release_probe()
                continue
            record.phase = JobPhase.RUNNING
            if record.started_unix is None:
                record.started_unix = time.time()
            self._set_gauges()
            try:
                await self._execute(record)
            finally:
                self._set_gauges()

    async def _execute(self, record: JobRecord) -> None:
        """Run one job to a terminal phase, honoring retry + deadline."""
        backoff = self.retry.backoff_state(salt=record.job_id)
        started = time.perf_counter()
        while True:
            record.attempts += 1
            assert self._journal is not None
            self._journal.record("job_start", job=record.job_id,
                                 attempt=record.attempts)
            outcome, error = await self._run_attempt(record)
            if outcome == "success":
                elapsed = time.perf_counter() - started
                self._finish_success(record, elapsed)
                return
            if outcome == "expired":
                self._finish_expired(record, where="running")
                self.breaker.release_probe()
                return
            if outcome == "worker_failure":
                self.breaker.record_failure()
                self._count("service_worker_failures_total")
            else:  # clean application error: backend is healthy
                self.breaker.record_success()
            if record.attempts >= self.retry.max_attempts or self.draining \
                    or self.breaker.state is not BreakerState.CLOSED:
                self._finish_failed(record, error)
                return
            self._count("service_retries_total")
            await asyncio.sleep(backoff.next_backoff())

    def _job_kwargs(self, record: JobRecord) -> dict[str, Any]:
        """Worker kwargs for one attempt.

        Extends the *request* kwargs — never mutating them, so the
        content-addressed cache key stays a pure function of the request
        — with telemetry export and trace propagation when the service
        runs with a telemetry directory.  The traceparent travels as an
        explicit kwarg (not the env var): spawn inherits the parent's
        environment at fork time, and inline attempts run on executor
        threads where a process-global env var would race.
        """
        kwargs = dict(record.request.kwargs())
        if self.config.telemetry_dir:
            kwargs["telemetry_dir"] = self.config.telemetry_dir
            kwargs["job_name"] = record.job_id
            if record.trace is not None:
                kwargs["traceparent"] = record.trace.to_traceparent()
        return kwargs

    async def _run_attempt(self, record: JobRecord) -> tuple[str, str | None]:
        """One attempt; returns ``(outcome, error)`` with outcome in
        ``{"success", "expired", "worker_failure", "job_error"}``."""
        if not self.config.isolate:
            return await self._run_attempt_inline(record)
        artifact = self._artifact_path(record.job_id)
        error_path = artifact + ".error"
        try:
            os.unlink(error_path)
        except OSError:
            pass
        proc = self._ctx.Process(
            target=worker_main,
            args=(record.job_id, JOB_TARGET, self._job_kwargs(record),
                  artifact, error_path),
            name=f"service-{record.job_id}",
        )
        proc.start()
        self.running_procs[record.job_id] = proc
        self._set_gauges()
        timeout_at = time.monotonic() + self.config.job_timeout_s
        try:
            while proc.exitcode is None:
                now = time.monotonic()
                if record.expired(now):
                    proc.kill()
                    proc.join()
                    return "expired", None
                if now >= timeout_at:
                    proc.kill()
                    proc.join()
                    return ("worker_failure",
                            f"timeout: killed after {self.config.job_timeout_s:.1f}s")
                await asyncio.sleep(_POLL_S)
            proc.join()
        except asyncio.CancelledError:
            # Worker task cancelled (shutdown): never leak a live child.
            proc.kill()
            proc.join()
            raise
        finally:
            self.running_procs.pop(record.job_id, None)
        exitcode = proc.exitcode
        if exitcode == 0:
            try:
                record.result = read_artifact(artifact)
            except Exception as exc:
                return "worker_failure", f"unreadable artifact: {exc}"
            record.artifact_sha256 = sha256_file(artifact)
            return "success", None
        error = self._read_error_file(error_path)
        if error is not None:
            return "job_error", error
        if exitcode is not None and exitcode < 0:
            return "worker_failure", f"killed by signal {-exitcode}"
        return "worker_failure", f"worker exited with code {exitcode}"

    async def _run_attempt_inline(self, record: JobRecord) -> tuple[str, str | None]:
        """Threaded attempt for ``isolate=False`` (no kill capability)."""
        loop = asyncio.get_running_loop()
        artifact = self._artifact_path(record.job_id)
        try:
            payload = await loop.run_in_executor(
                None, lambda: run_job_inline(
                    record.job_id, JOB_TARGET, self._job_kwargs(record),
                    artifact
                )
            )
        except Exception as exc:  # noqa: BLE001 — job error, not ours
            return "job_error", f"{type(exc).__name__}: {exc}"
        record.result = payload
        record.artifact_sha256 = sha256_file(artifact)
        return "success", None

    @staticmethod
    def _read_error_file(path: str) -> str | None:
        try:
            with open(path, encoding="utf-8") as handle:
                return handle.read().strip() or None
        except OSError:
            return None

    # -- terminal transitions ------------------------------------------

    def _record_job_trace(self, record: JobRecord) -> None:
        """Record the job's lifecycle spans at its terminal transition.

        The span lives across ``await`` points, so it cannot be a
        ``with`` block on the tracer's LIFO stack; instead the terminal
        transition records it (and its queue-wait/execute children) at
        the job's propagated trace position via ``record_at``.  Worker
        spans parent to ``record.trace`` directly, making ``service_job``
        the stitch point between the daemon's stream and the worker's.
        Also emits the ``service_job`` event the SLO burn-rate windows
        sample.
        """
        tel = self.telemetry
        trace = record.trace
        done = record.phase is JobPhase.DONE
        t0 = record.submitted_unix
        t_run = record.started_unix
        t_end = record.finished_unix if record.finished_unix is not None \
            else (t_run if t_run is not None else t0)
        if trace is not None and tel.enabled:
            tel.record_span(
                trace, "service_job",
                wall_s=max(0.0, t_end - t0), t_unix0=t0, ok=done,
                labels={"phase": record.phase.value},
                event_extra={"job": record.job_id},
            )
            tel.record_span(
                trace.child("queue_wait"), "service_queue_wait",
                wall_s=max(0.0, (t_run if t_run is not None else t_end) - t0),
                t_unix0=t0, ok=True,
                event_extra={"job": record.job_id},
            )
            if t_run is not None:
                tel.record_span(
                    trace.child("execute"), "service_execute",
                    wall_s=max(0.0, t_end - t_run), t_unix0=t_run, ok=done,
                    event_extra={"job": record.job_id},
                )
        tel.event("service_job", job=record.job_id,
                  phase=record.phase.value, tenant=record.request.tenant,
                  cached=record.served_from_cache,
                  t_unix=t_end if record.finished_unix is not None
                  else time.time())

    def _finish_success(self, record: JobRecord, elapsed: float) -> None:
        record.phase = JobPhase.DONE
        record.finished_unix = time.time()
        assert self._journal is not None
        self._journal.record(
            "job_success", job=record.job_id, attempt=record.attempts,
            elapsed_s=round(elapsed, 3),
            artifact=os.path.relpath(self._artifact_path(record.job_id),
                                     self.run_dir),
            sha256=record.artifact_sha256,
        )
        self.breaker.record_success()
        self.queues.observe_service_time(elapsed)
        if self.cache is not None and record.request.cache_key is not None:
            # read_artifact returned the payload; store it under the
            # same envelope shape the harness uses.
            self.cache.put(record.request.cache_key,
                           {"payload": record.result})
        self._count("service_jobs_done_total", tenant=record.request.tenant)
        self.telemetry.histogram("service_job_wall_s").observe(elapsed)
        self._record_job_trace(record)

    def _finish_failed(self, record: JobRecord, error: str | None) -> None:
        record.phase = JobPhase.FAILED
        record.error = error or "unknown failure"
        record.finished_unix = time.time()
        assert self._journal is not None
        self._journal.record("job_failed", job=record.job_id,
                             attempts=record.attempts,
                             error=record.error)
        self._count("service_jobs_failed_total", tenant=record.request.tenant)
        self._record_job_trace(record)

    def _finish_expired(self, record: JobRecord, where: str) -> None:
        record.phase = JobPhase.EXPIRED
        record.error = f"deadline expired ({where})"
        record.finished_unix = time.time()
        if self._journal is not None:
            self._journal.record("job_expired", job=record.job_id, where=where)
        self._count("service_jobs_expired_total", where=where)
        self._record_job_trace(record)

    # -- the reaper -----------------------------------------------------

    async def _reaper_loop(self) -> None:
        """Expire queued jobs whose deadline passed (in-flight expiry is
        enforced by the attempt poll loop)."""
        while True:
            now = time.monotonic()

            def queued_and_expired(job_id: str) -> bool:
                record = self.records.get(job_id)
                return record is not None and record.expired(now)

            for job_id in self.queues.drain_expired(queued_and_expired):
                record = self.records[job_id]
                if record.phase is JobPhase.QUEUED:
                    self._finish_expired(record, where="queued")
            self._set_gauges()
            await asyncio.sleep(5 * _POLL_S)

    # -- paths ----------------------------------------------------------

    def _artifact_path(self, job_id: str) -> str:
        return os.path.join(self.artifact_dir, f"{job_id}.json")
