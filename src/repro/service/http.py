"""Minimal asyncio HTTP/1.1 front-end for the simulation service.

Stdlib-only by design (the container bakes no web framework), and small
enough to reason about under fault injection.  The server is defensive
against the clients the chaos suite throws at it:

- **Slow clients** cannot hold a connection open mid-request: the
  request line, each header, and the body all read under
  ``slow_client_timeout_s``; a stall gets a 408 and a closed socket,
  and never blocks admission for anyone else.
- **Oversized requests** (body over 64 KiB, too many/long headers) are
  cut off with 4xx before any allocation grows with attacker input.
- **Keep-alive** is honored with an idle timeout so load generators can
  reuse connections (that's what makes the ≥1000 jobs/min benchmark
  cheap), but an idle socket is dropped after ``keepalive_timeout_s``.

Routes::

    POST   /jobs        submit  -> 200 (cached) | 202 (queued) |
                                   400 | 429 + Retry-After | 503 + Retry-After
    GET    /jobs/<id>   status/result -> 200 | 404
    DELETE /jobs/<id>   cancel a queued job -> 200 | 404 | 409
    GET    /healthz     liveness + breaker/queue snapshot (always 200)
    GET    /readyz      200 only when accepting work at full service
    GET    /metrics     Prometheus text exposition
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ServiceError
from repro.service.admission import AdmissionRefused
from repro.service.daemon import SimulationService, Unavailable
from repro.service.models import JobPhase, TERMINAL_PHASES

MAX_BODY_BYTES = 64 * 1024
MAX_HEADER_LINES = 64
MAX_LINE_BYTES = 8 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _response(status: int, body: bytes, content_type: str,
              extra: dict[str, str] | None = None,
              keep_alive: bool = True) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for key, value in (extra or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def json_response(status: int, payload: Any,
                  extra: dict[str, str] | None = None,
                  keep_alive: bool = True) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _response(status, body, "application/json", extra, keep_alive)


class HttpFrontend:
    """Binds a :class:`SimulationService` to a TCP port."""

    def __init__(self, service: SimulationService) -> None:
        self.service = service
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self.port: int | None = None

    async def start(self) -> None:
        config = self.service.config
        self._server = await asyncio.start_server(
            self._handle_connection, config.host, config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        config = self.service.config
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            first = True
            while True:
                idle = config.keepalive_timeout_s if not first \
                    else config.slow_client_timeout_s
                try:
                    request_line = await asyncio.wait_for(
                        reader.readline(), timeout=idle
                    )
                except asyncio.TimeoutError:
                    if not first:
                        break  # idle keep-alive expiry: just close
                    writer.write(json_response(
                        408, {"error": "timed out reading request"},
                        keep_alive=False))
                    await writer.drain()
                    break
                first = False
                if not request_line:
                    break
                keep_alive = await self._handle_request(
                    request_line, reader, writer
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError,
                asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(self, request_line: bytes,
                              reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> bool:
        """Parse and dispatch one request; returns keep-alive decision."""
        config = self.service.config
        try:
            method, path, _version = (
                request_line.decode("ascii", "replace").split(None, 2)
            )
        except ValueError:
            writer.write(json_response(400, {"error": "malformed request line"},
                                       keep_alive=False))
            await writer.drain()
            return False

        headers: dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            try:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=config.slow_client_timeout_s
                )
            except asyncio.TimeoutError:
                writer.write(json_response(
                    408, {"error": "timed out reading headers"},
                    keep_alive=False))
                await writer.drain()
                return False
            if len(line) > MAX_LINE_BYTES:
                writer.write(json_response(400, {"error": "header too long"},
                                           keep_alive=False))
                await writer.drain()
                return False
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            writer.write(json_response(400, {"error": "too many headers"},
                                       keep_alive=False))
            await writer.drain()
            return False

        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                n = -1
            if n < 0 or n > MAX_BODY_BYTES:
                writer.write(json_response(
                    413, {"error": f"body must be <= {MAX_BODY_BYTES} bytes"},
                    keep_alive=False))
                await writer.drain()
                return False
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(n),
                    timeout=config.slow_client_timeout_s,
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                writer.write(json_response(
                    408, {"error": "timed out reading body"},
                    keep_alive=False))
                await writer.drain()
                return False

        wants_close = headers.get("connection", "").lower() == "close"
        response = self._route(method.upper(), path, body, headers)
        if wants_close:
            # Re-render with Connection: close (cheap; bodies are small).
            response = response.replace(
                b"Connection: keep-alive", b"Connection: close", 1
            )
        writer.write(response)
        await writer.drain()
        return not wants_close

    # -- routing --------------------------------------------------------

    def _route(self, method: str, path: str, body: bytes,
               headers: dict[str, str] | None = None) -> bytes:
        self.service.telemetry.counter(
            "service_http_requests_total", method=method
        ).inc()
        try:
            if path == "/jobs" and method == "POST":
                return self._submit(body, (headers or {}).get("traceparent"))
            if path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                if method == "GET":
                    return self._job_status(job_id)
                if method == "DELETE":
                    return self._job_cancel(job_id)
                return json_response(405, {"error": "method not allowed"})
            if path == "/healthz" and method == "GET":
                return json_response(200, self.service.health())
            if path == "/readyz" and method == "GET":
                if self.service.ready():
                    return json_response(200, {"ready": True})
                return json_response(503, {
                    "ready": False,
                    "breaker": self.service.breaker.state.value,
                    "draining": self.service.draining,
                })
            if path == "/metrics" and method == "GET":
                from repro.telemetry.exporters import render_prometheus

                self.service.refresh_slo_gauges()
                text = render_prometheus(self.service.telemetry.registry)
                return _response(200, text.encode("utf-8"),
                                 "text/plain; version=0.0.4")
            return json_response(404, {"error": f"no route {method} {path}"})
        except Exception as exc:  # noqa: BLE001 — never kill the connection loop
            return json_response(500, {"error": f"internal error: {exc}"})

    def _submit(self, body: bytes, traceparent: str | None = None) -> bytes:
        try:
            decoded = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            return json_response(400, {"error": "body is not valid JSON"})
        from repro.telemetry.tracecontext import TraceContext

        try:
            record, was_cached = self.service.admit(
                decoded, trace=TraceContext.parse(traceparent)
            )
        except AdmissionRefused as exc:
            return json_response(
                429,
                {"error": exc.reason, "tenant": exc.tenant,
                 "retry_after_s": round(exc.retry_after_s, 3)},
                extra={"Retry-After": str(max(1, round(exc.retry_after_s)))},
            )
        except Unavailable as exc:
            return json_response(
                503,
                {"error": exc.reason,
                 "retry_after_s": round(exc.retry_after_s, 3)},
                extra={"Retry-After": str(max(1, round(exc.retry_after_s)))},
            )
        except ServiceError as exc:
            return json_response(400, {"error": str(exc)})
        status = 200 if was_cached else 202
        extra = None
        if record.trace is not None:
            # Echo the job's trace position so callers can stitch their
            # own spans (or follow up with `greengpu trace`) by id.
            extra = {"traceparent": record.trace.to_traceparent()}
        return json_response(status, record.status_dict(), extra=extra)

    def _job_status(self, job_id: str) -> bytes:
        record = self.service.records.get(job_id)
        if record is None:
            return json_response(404, {"error": f"unknown job {job_id!r}"})
        return json_response(200, record.status_dict())

    def _job_cancel(self, job_id: str) -> bytes:
        try:
            record = self.service.cancel(job_id)
        except KeyError:
            return json_response(404, {"error": f"unknown job {job_id!r}"})
        if record.phase is JobPhase.CANCELLED:
            return json_response(200, record.status_dict())
        if record.phase in TERMINAL_PHASES or record.phase is JobPhase.RUNNING:
            return json_response(
                409, {"error": f"job is {record.phase.value}, not cancellable",
                      **record.status_dict()})
        return json_response(200, record.status_dict())
