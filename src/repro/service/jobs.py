"""Worker-side job targets for the service daemon.

Service jobs execute through the same mechanism as harness jobs: a
dotted ``module:function`` target plus JSON kwargs, run by
:func:`repro.harness.worker.worker_main` in a spawn-isolated process
that atomically writes an artifact and exits.  Keeping the target here
(in the package, importable from a fresh interpreter) is what lets a
drained-and-restarted daemon re-run journaled in-flight jobs
byte-identically.

The payload is intentionally a *summary* (energies, time, health), not
the full trace blob — it is what gets journaled, cached, and returned
over HTTP to thousands of clients.
"""

from __future__ import annotations

from typing import Any


def run_simulation(workload: str, policy: str, n_iterations: int,
                   time_scale: float,
                   telemetry_dir: str | None = None,
                   job_name: str | None = None,
                   traceparent: str | None = None) -> dict[str, Any]:
    """One service submission: run ``workload`` under ``policy``.

    Deterministic in all simulation arguments (the simulator is seeded
    and event-ordered), which is what makes the content-addressed cache
    key over those kwargs a sound dedup address.  The three telemetry
    kwargs are *not* part of the cache key — the daemon appends them
    after admission — so observability never perturbs dedup.  With a
    ``telemetry_dir``, the run's spans export under
    ``<dir>/workers/<job_name>/`` rooted at ``traceparent``, which is
    how a served job's worker spans stitch under the admitting HTTP
    request in the merged trace.
    """
    from repro.cli import _make_policy
    from repro.experiments.common import scaled_options, scaled_workload
    from repro.runtime.executor import run_workload

    telemetry = None
    if telemetry_dir is not None:
        from repro.telemetry import Telemetry
        from repro.telemetry.tracecontext import TraceContext

        telemetry = Telemetry(base_labels={"workload": workload,
                                           "policy": policy},
                              trace=TraceContext.parse(traceparent))

    result = run_workload(
        scaled_workload(workload, time_scale),
        _make_policy(policy, time_scale),
        n_iterations=n_iterations,
        options=scaled_options(time_scale),
        telemetry=telemetry,
    )
    if telemetry is not None and telemetry_dir is not None:
        from repro.telemetry import export_worker

        export_worker(telemetry, telemetry_dir, job_name or "job")
    return {
        "workload": result.workload,
        "policy": result.policy,
        "iterations": result.n_iterations,
        "total_s": result.total_s,
        "total_energy_j": result.total_energy_j,
        "gpu_energy_j": result.gpu_energy_j,
        "cpu_energy_j": result.cpu_energy_j,
        "final_ratio": result.final_ratio,
    }
