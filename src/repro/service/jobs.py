"""Worker-side job targets for the service daemon.

Service jobs execute through the same mechanism as harness jobs: a
dotted ``module:function`` target plus JSON kwargs, run by
:func:`repro.harness.worker.worker_main` in a spawn-isolated process
that atomically writes an artifact and exits.  Keeping the target here
(in the package, importable from a fresh interpreter) is what lets a
drained-and-restarted daemon re-run journaled in-flight jobs
byte-identically.

The payload is intentionally a *summary* (energies, time, health), not
the full trace blob — it is what gets journaled, cached, and returned
over HTTP to thousands of clients.
"""

from __future__ import annotations

from typing import Any


def run_simulation(workload: str, policy: str, n_iterations: int,
                   time_scale: float) -> dict[str, Any]:
    """One service submission: run ``workload`` under ``policy``.

    Deterministic in all arguments (the simulator is seeded and
    event-ordered), which is what makes the content-addressed cache key
    over these kwargs a sound dedup address.
    """
    from repro.cli import _make_policy
    from repro.experiments.common import scaled_options, scaled_workload
    from repro.runtime.executor import run_workload

    result = run_workload(
        scaled_workload(workload, time_scale),
        _make_policy(policy, time_scale),
        n_iterations=n_iterations,
        options=scaled_options(time_scale),
    )
    return {
        "workload": result.workload,
        "policy": result.policy,
        "iterations": result.n_iterations,
        "total_s": result.total_s,
        "total_energy_j": result.total_energy_j,
        "gpu_energy_j": result.gpu_energy_j,
        "cpu_energy_j": result.cpu_energy_j,
        "final_ratio": result.final_ratio,
    }
