"""Job model of the serving layer: requests, records, lifecycle states.

A submission is a tiny JSON document naming a simulation the existing
engine already knows how to run::

    {"workload": "kmeans", "policy": "greengpu", "iterations": 4,
     "time_scale": 0.05, "tenant": "team-a", "deadline_s": 30.0}

Admission validates it against the same registries the CLI uses (unknown
workloads and policies are a 400, not a queued failure), derives the
content-address of the result (:func:`repro.cache.job_key` over the
worker target + kwargs — the exact key the harness would use, so service
and CLI share one cache), and freezes it into an immutable
:class:`JobRequest`.  The mutable :class:`JobRecord` wraps that request
with everything the daemon learns afterwards: state, attempts, result,
journal-relevant timestamps.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServiceError
from repro.service.config import DEFAULT_TENANT, ServiceConfig

#: Dotted target executed by workers for every service job.
JOB_TARGET = "repro.service.jobs:run_simulation"


class JobPhase(enum.Enum):
    """Lifecycle of one accepted submission."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"              # result available (simulated or cached)
    FAILED = "failed"          # attempts exhausted
    EXPIRED = "expired"        # deadline passed in-queue or in-flight
    CANCELLED = "cancelled"    # client DELETE or shutdown abandonment


#: Phases a job can end in.
TERMINAL_PHASES = frozenset({
    JobPhase.DONE, JobPhase.FAILED, JobPhase.EXPIRED, JobPhase.CANCELLED,
})


@dataclass(frozen=True)
class JobRequest:
    """One validated, admitted submission (immutable)."""

    tenant: str
    workload: str
    policy: str
    iterations: int
    time_scale: float
    deadline_s: float | None      # relative, as submitted
    cache_key: str | None

    def kwargs(self) -> dict[str, Any]:
        """Worker kwargs — exactly what :data:`JOB_TARGET` accepts."""
        return {
            "workload": self.workload,
            "policy": self.policy,
            "n_iterations": self.iterations,
            "time_scale": self.time_scale,
        }

    def as_dict(self) -> dict[str, Any]:
        """JSON form journaled at submission; :func:`request_from_dict`
        must reconstruct an identical request from it on recovery."""
        return {
            "tenant": self.tenant,
            "workload": self.workload,
            "policy": self.policy,
            "iterations": self.iterations,
            "time_scale": self.time_scale,
            "deadline_s": self.deadline_s,
            "cache_key": self.cache_key,
        }


def request_from_dict(data: dict[str, Any]) -> JobRequest:
    """Rebuild a journaled :class:`JobRequest` (crash recovery)."""
    return JobRequest(
        tenant=data["tenant"],
        workload=data["workload"],
        policy=data["policy"],
        iterations=data["iterations"],
        time_scale=data["time_scale"],
        deadline_s=data.get("deadline_s"),
        cache_key=data.get("cache_key"),
    )


def parse_request(body: Any, config: ServiceConfig) -> JobRequest:
    """Validate a decoded submission body into a :class:`JobRequest`.

    Raises :class:`ServiceError` with a client-presentable message (the
    HTTP layer maps it to a 400) on anything malformed: unknown
    workload/policy, out-of-guard iterations or time scale, negative or
    over-ceiling deadlines.
    """
    if not isinstance(body, dict):
        raise ServiceError("submission body must be a JSON object")

    from repro.cli import POLICY_FACTORIES
    from repro.workloads.characteristics import ALIASES, get_profile

    workload = body.get("workload", "kmeans")
    if not isinstance(workload, str):
        raise ServiceError("workload must be a string")
    try:
        get_profile(workload)
    except Exception:
        raise ServiceError(f"unknown workload {workload!r}") from None
    # Canonicalize aliases so "PF" and "pathfinder" share one cache key.
    workload = ALIASES.get(workload, workload)

    policy = body.get("policy", "greengpu")
    if policy not in POLICY_FACTORIES:
        raise ServiceError(
            f"unknown policy {policy!r}; choose from {sorted(POLICY_FACTORIES)}"
        )

    tenant = body.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise ServiceError("tenant must be a non-empty string (<= 64 chars)")

    iterations = body.get("iterations", 2)
    if not isinstance(iterations, int) or isinstance(iterations, bool) \
            or not 1 <= iterations <= config.max_iterations:
        raise ServiceError(
            f"iterations must be an integer in [1, {config.max_iterations}]"
        )

    time_scale = body.get("time_scale", 0.05)
    if not isinstance(time_scale, (int, float)) or isinstance(time_scale, bool) \
            or not 0.0 < float(time_scale) <= config.max_time_scale:
        raise ServiceError(
            f"time_scale must be in (0, {config.max_time_scale}]"
        )
    time_scale = float(time_scale)

    deadline_s = body.get("deadline_s")
    if deadline_s is not None:
        if not isinstance(deadline_s, (int, float)) or isinstance(deadline_s, bool) \
                or float(deadline_s) <= 0.0:
            raise ServiceError("deadline_s must be a positive number")
        deadline_s = min(float(deadline_s), config.max_deadline_s)

    from repro.cache import job_key

    kwargs = {"workload": workload, "policy": policy,
              "n_iterations": iterations, "time_scale": time_scale}
    return JobRequest(
        tenant=tenant, workload=workload, policy=policy,
        iterations=iterations, time_scale=time_scale, deadline_s=deadline_s,
        cache_key=job_key(JOB_TARGET, kwargs),
    )


@dataclass
class JobRecord:
    """Everything the daemon knows about one accepted job."""

    job_id: str
    request: JobRequest
    phase: JobPhase = JobPhase.QUEUED
    submitted_unix: float = field(default_factory=time.time)
    deadline_monotonic: float | None = None   # absolute, service clock
    attempts: int = 0
    result: Any = None
    error: str | None = None
    served_from_cache: bool = False
    artifact_sha256: str | None = None
    finished_unix: float | None = None
    started_unix: float | None = None         # first RUNNING transition
    # Trace position of this job's span (repro.telemetry.tracecontext).
    # Derived under the admitting HTTP request's span, journaled, and
    # propagated to the worker so its spans stitch under this node.
    trace: Any = None

    def expired(self, now: float) -> bool:
        return (self.deadline_monotonic is not None
                and now >= self.deadline_monotonic)

    def status_dict(self) -> dict[str, Any]:
        """The GET /jobs/<id> body."""
        out: dict[str, Any] = {
            "job_id": self.job_id,
            "phase": self.phase.value,
            "tenant": self.request.tenant,
            "workload": self.request.workload,
            "policy": self.request.policy,
            "iterations": self.request.iterations,
            "attempts": self.attempts,
            "submitted_unix": self.submitted_unix,
            "served_from_cache": self.served_from_cache,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.finished_unix is not None:
            out["finished_unix"] = self.finished_unix
        if self.trace is not None:
            out["traceparent"] = self.trace.to_traceparent()
        return out
