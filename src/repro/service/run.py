"""``greengpu serve`` — process entry point with signal-driven drain.

Kept separate from :mod:`repro.cli` so the signal wiring is importable
and testable without argparse, and separate from the daemon so the
daemon itself never touches process-global signal state (the test
suite runs many daemons per process).
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.service.config import ServiceConfig
from repro.service.daemon import SimulationService
from repro.service.http import HttpFrontend


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        tenant_queue_limit=args.tenant_queue_limit,
        global_high_water=args.global_high_water,
        rate_per_tenant=args.rate_per_tenant,
        burst_per_tenant=args.burst_per_tenant,
        job_timeout_s=args.job_timeout_s,
        drain_timeout_s=args.drain_timeout_s,
        isolate=not args.no_isolate,
        telemetry_dir=getattr(args, "telemetry", None),
    )


def _make_cache(cache_dir: str | None):
    if cache_dir == "off":
        return None
    from repro.cache import ResultCache, default_cache_dir

    return ResultCache(cache_dir or default_cache_dir())


async def serve_until_signalled(args: argparse.Namespace) -> int:
    """Boot the daemon, serve until SIGTERM/SIGINT, drain, exit 0."""
    config = config_from_args(args)
    service = SimulationService(config, args.run_dir,
                                cache=_make_cache(args.cache_dir))
    await service.start()
    frontend = HttpFrontend(service)
    await frontend.start()

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)

    print(f"greengpu service: http://{config.host}:{frontend.port} "
          f"({config.workers} workers, run dir {service.run_dir})",
          file=sys.stderr, flush=True)
    await stop.wait()
    print("greengpu service: draining...", file=sys.stderr, flush=True)
    await frontend.stop()          # stop accepting connections first
    await service.shutdown(reason="signal")
    print("greengpu service: stopped.", file=sys.stderr, flush=True)
    return 0
