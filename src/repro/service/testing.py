"""In-process service runner for tests, benchmarks, and the CI smoke job.

:class:`ServiceThread` boots a full :class:`SimulationService` + HTTP
front-end on its own asyncio loop in a daemon thread, binds an ephemeral
port, and exposes the live service object so chaos tests can reach into
the daemon (SIGKILL its worker processes, inspect the breaker) while
real HTTP clients hammer the socket from the test thread.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.daemon import SimulationService
from repro.service.http import HttpFrontend


class ServiceThread:
    """Run a daemon on a background thread; ``start()`` blocks until the
    port is bound, ``stop()`` runs the full drain-then-exit path."""

    def __init__(self, config: ServiceConfig, run_dir: str,
                 cache: Any = None, telemetry: Any = None) -> None:
        self.config = config
        self.run_dir = run_dir
        self.cache = cache
        self.telemetry = telemetry
        self.service: SimulationService | None = None
        self.frontend: HttpFrontend | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._boot_error: BaseException | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self, timeout_s: float = 30.0) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="service-thread", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("service failed to start in time")
        if self._boot_error is not None:
            raise RuntimeError("service failed to boot") from self._boot_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._boot())
        except BaseException as exc:  # noqa: BLE001 — surfaced to start()
            self._boot_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    async def _boot(self) -> None:
        self.service = SimulationService(
            self.config, self.run_dir,
            cache=self.cache, telemetry=self.telemetry,
        )
        await self.service.start()
        self.frontend = HttpFrontend(self.service)
        await self.frontend.start()
        self.port = self.frontend.port

    def stop(self, timeout_s: float = 60.0) -> None:
        """Drain-then-exit, mirroring the SIGTERM path."""
        if self._loop is None or self.service is None:
            return

        async def _shutdown() -> None:
            assert self.frontend is not None and self.service is not None
            await self.frontend.stop()
            await self.service.shutdown()
            asyncio.get_running_loop().stop()

        asyncio.run_coroutine_threadsafe(_shutdown(), self._loop)
        assert self._thread is not None
        self._thread.join(timeout_s)
        if self._thread.is_alive():
            raise RuntimeError("service thread did not stop in time")

    # -- conveniences ---------------------------------------------------

    def client(self, timeout_s: float = 10.0) -> ServiceClient:
        assert self.port is not None
        return ServiceClient(self.config.host, self.port, timeout_s=timeout_s)

    def call(self, fn, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn(service, ...)`` on the service loop and return its
        result — the safe way for tests to poke daemon internals."""
        assert self._loop is not None and self.service is not None

        async def _invoke() -> Any:
            result = fn(self.service, *args, **kwargs)
            if asyncio.iscoroutine(result):
                result = await result
            return result

        future = asyncio.run_coroutine_threadsafe(_invoke(), self._loop)
        return future.result(timeout=30.0)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
