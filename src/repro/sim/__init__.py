"""Simulated GPU-CPU heterogeneous testbed.

This subpackage replaces the paper's physical testbed (GeForce 8800 GTX +
AMD Phenom II + two WattsUp Pro meters) with an analytic simulator that
exposes the same observable and actuable surface the GreenGPU daemon used
on real hardware:

- discrete core/memory frequency ladders (``nvidia-settings`` equivalent),
- per-domain utilization counters (``nvidia-smi`` equivalent),
- CPU P-states with DVFS (cpufreq equivalent),
- wall-power sampling on two meter boundaries (WattsUp equivalent).

See DESIGN.md §1 for the substitution rationale.
"""

# Version of the simulation engine's *numerical behavior*.  Bump on any
# change that can alter a run's results (power models, roofline timing,
# meter integration, event ordering) — it is folded into every
# content-addressed cache key (repro.cache) so stale results can never be
# served across engine revisions.  Pure-speed refactors that are proven
# bit-identical (the paired-oracle test) do not need a bump.
ENGINE_SCHEMA_VERSION = 1

from repro.sim.frequency import FrequencyLadder
from repro.sim.perf import ExecutionEstimate, RooflineModel
from repro.sim.power import CpuPowerModel, GpuPowerModel
from repro.sim.gpu import GpuDevice, GpuSpec
from repro.sim.cpu import CpuDevice, CpuSpec
from repro.sim.bus import PcieBus
from repro.sim.meter import PowerMeter
from repro.sim.engine import SimClock
from repro.sim.platform import HeteroSystem, TestbedConfig, make_testbed
from repro.sim.trace import Trace, TraceRecorder

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "FrequencyLadder",
    "ExecutionEstimate",
    "RooflineModel",
    "CpuPowerModel",
    "GpuPowerModel",
    "GpuDevice",
    "GpuSpec",
    "CpuDevice",
    "CpuSpec",
    "PcieBus",
    "PowerMeter",
    "SimClock",
    "HeteroSystem",
    "TestbedConfig",
    "make_testbed",
    "Trace",
    "TraceRecorder",
]
