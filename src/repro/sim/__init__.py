"""Simulated GPU-CPU heterogeneous testbed.

This subpackage replaces the paper's physical testbed (GeForce 8800 GTX +
AMD Phenom II + two WattsUp Pro meters) with an analytic simulator that
exposes the same observable and actuable surface the GreenGPU daemon used
on real hardware:

- discrete core/memory frequency ladders (``nvidia-settings`` equivalent),
- per-domain utilization counters (``nvidia-smi`` equivalent),
- CPU P-states with DVFS (cpufreq equivalent),
- wall-power sampling on two meter boundaries (WattsUp equivalent).

See DESIGN.md §1 for the substitution rationale.
"""

from repro.sim.frequency import FrequencyLadder
from repro.sim.perf import ExecutionEstimate, RooflineModel
from repro.sim.power import CpuPowerModel, GpuPowerModel
from repro.sim.gpu import GpuDevice, GpuSpec
from repro.sim.cpu import CpuDevice, CpuSpec
from repro.sim.bus import PcieBus
from repro.sim.meter import PowerMeter
from repro.sim.engine import SimClock
from repro.sim.platform import HeteroSystem, TestbedConfig, make_testbed
from repro.sim.trace import Trace, TraceRecorder

__all__ = [
    "FrequencyLadder",
    "ExecutionEstimate",
    "RooflineModel",
    "CpuPowerModel",
    "GpuPowerModel",
    "GpuDevice",
    "GpuSpec",
    "CpuDevice",
    "CpuSpec",
    "PcieBus",
    "PowerMeter",
    "SimClock",
    "HeteroSystem",
    "TestbedConfig",
    "make_testbed",
    "Trace",
    "TraceRecorder",
]
