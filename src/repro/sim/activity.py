"""Work activities executed by simulated devices.

Devices execute a FIFO queue of *activities*.  Two kinds exist:

- :class:`KernelActivity` — a sequence of roofline phases, each with a
  compute demand (flops) and a memory-traffic demand (bytes).  Its duration
  depends on the device's current frequencies and is re-evaluated whenever
  they change (progress is tracked as the completed fraction of the current
  phase, which is exact because utilizations are constant within a phase at
  fixed frequencies).
- :class:`TransferActivity` — a fixed-rate DMA transfer over the PCIe bus.
  Its duration is set when the transfer starts and is insensitive to the
  device's frequency settings (PCIe is the bottleneck).

The executor composes iterations out of these primitives:
H2D transfer -> kernel -> D2H transfer on the GPU; kernel on the CPU.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import SimulationError, WorkloadError


@dataclass(frozen=True, slots=True)
class PhaseDemand:
    """Resource demand of one kernel phase.

    ``flops`` is the total compute work, ``bytes`` the total DRAM traffic,
    and ``stall_s`` the latency-bound wall-clock component of the phase
    (see :mod:`repro.sim.perf`).  Any may be zero.
    """

    flops: float
    bytes: float
    stall_s: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0.0 or self.bytes < 0.0 or self.stall_s < 0.0:
            raise WorkloadError("phase demands must be non-negative")

    def scaled(self, factor: float) -> "PhaseDemand":
        """Return this demand multiplied by ``factor`` (work-unit scaling)."""
        if factor < 0.0:
            raise WorkloadError("scale factor must be non-negative")
        return PhaseDemand(
            self.flops * factor, self.bytes * factor, self.stall_s * factor
        )

    @property
    def intensity(self) -> float:
        """Arithmetic intensity in flop/byte (inf for pure-compute phases)."""
        if self.bytes == 0.0:
            return float("inf")
        return self.flops / self.bytes


class Activity:
    """Base class for device activities (see module docstring)."""

    __slots__ = ("label",)

    def __init__(self, label: str = ""):
        self.label = label

    @property
    def done(self) -> bool:
        raise NotImplementedError


class KernelActivity(Activity):
    """A kernel run: an ordered list of roofline phases.

    Progress is tracked per phase as a completed fraction in [0, 1].  The
    owning device converts fractions to times using its current rates.
    """

    __slots__ = ("phases", "phase_index", "phase_fraction")

    def __init__(self, phases: list[PhaseDemand] | tuple[PhaseDemand, ...], label: str = ""):
        super().__init__(label)
        phases = tuple(phases)
        if not phases:
            raise WorkloadError("a kernel needs at least one phase")
        self.phases: tuple[PhaseDemand, ...] = phases
        self.phase_index = 0
        self.phase_fraction = 0.0

    @property
    def done(self) -> bool:
        return self.phase_index >= len(self.phases)

    @property
    def current_phase(self) -> PhaseDemand:
        if self.done:
            raise SimulationError("kernel already complete")
        return self.phases[self.phase_index]

    def advance_fraction(self, df: float) -> None:
        """Consume ``df`` of the current phase; roll over on completion.

        ``df`` may complete the phase exactly; overshoot beyond a small
        epsilon is a simulator bug and raises.
        """
        if self.done:
            raise SimulationError("advancing a completed kernel")
        new_fraction = self.phase_fraction + df
        if new_fraction > 1.0 + 1e-9:
            raise SimulationError(
                f"phase overshoot: {self.phase_fraction} + {df} > 1"
            )
        if new_fraction >= 1.0 - 1e-12:
            self.phase_index += 1
            self.phase_fraction = 0.0
        else:
            self.phase_fraction = new_fraction

    @property
    def total_flops(self) -> float:
        return sum(p.flops for p in self.phases)

    @property
    def total_bytes(self) -> float:
        return sum(p.bytes for p in self.phases)


class TransferActivity(Activity):
    """A DMA transfer with a fixed remaining duration in seconds."""

    __slots__ = ("remaining_s", "bytes")

    def __init__(self, duration_s: float, bytes_: float = 0.0, label: str = ""):
        super().__init__(label)
        if duration_s < 0.0:
            raise SimulationError("transfer duration must be non-negative")
        self.remaining_s = float(duration_s)
        self.bytes = float(bytes_)

    @property
    def done(self) -> bool:
        return self.remaining_s <= 1e-12

    def advance_time(self, dt: float) -> None:
        if dt > self.remaining_s + 1e-9:
            raise SimulationError("transfer overshoot")
        self.remaining_s = max(0.0, self.remaining_s - dt)


class ActivityQueue:
    """FIFO of activities with O(1) head access."""

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: deque[Activity] = deque()

    def push(self, activity: Activity) -> None:
        self._queue.append(activity)

    @property
    def head(self) -> Activity | None:
        while self._queue and self._queue[0].done:
            self._queue.popleft()
        return self._queue[0] if self._queue else None

    @property
    def busy(self) -> bool:
        return self.head is not None

    def __len__(self) -> int:
        return sum(1 for a in self._queue if not a.done)

    def clear(self) -> None:
        self._queue.clear()
