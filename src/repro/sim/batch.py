"""Batched structure-of-arrays engine: N runs stepped in lockstep.

The scalar engine walks one :class:`~repro.sim.platform.HeteroSystem` at a
time through Python objects; a parameter sweep of N compatible runs pays
the interpreter once per event per run.  This module keeps the *hot* state
of N independent runs — accumulated meter energies, device utilization
integrals, queue heads, clock deadlines — in numpy arrays of shape ``(N,)``
(segment tables are ``(N, S)``) and advances every lane by its own
next-event ``dt`` with one vectorized array op per concern per tick:
power evaluation, meter integration, utilization/queue advance, and the
clock-deadline min-chain.  Lanes are independent, so no cross-lane barrier
is needed: a tick moves lane *i* to lane *i*'s next event, and the number
of python-level ticks collapses from ``sum(events_i)`` to ``max(events_i)``.

Bit-exactness contract
----------------------
Lane *i* of a batch must produce a :class:`RunResult` whose
``result_to_dict`` is **identical** to the scalar ``run_workload`` for the
same request — including WMA frequency decisions, ondemand governor moves,
division-ratio trajectories, and every energy integral.  Two rules make
this hold:

- Elementwise ``+ - * / min max`` on float64 arrays are IEEE-identical to
  the scalar interpreter ops, so the per-tick loop uses only those and
  mirrors the scalar expressions term for term (including association
  order, e.g. the power model's left-to-right sum).
- ``np.power`` is *not* ulp-identical to CPython's ``**`` on this code
  path, so roofline estimates are never vectorized: segment execution
  estimates are computed by the real ``RooflineModel.estimate`` at
  segment-table build and on frequency changes (both rare), and the tick
  loop only gathers the precomputed ``seconds``/``u_core``/``u_mem``.

Rare per-lane events — controller ticks, iteration barriers, repartition
stalls — run through the *real* control classes (``WmaFrequencyScaler``,
``OndemandGovernor``, ``WorkloadDivider``, ``TraceRecorder``) held per
lane, so tier-2 learning state is the genuine article rather than a clone.

The engine only accepts runs that the scalar fast path would execute on a
fresh default testbed with no faults, no audit/telemetry instrumentation,
and no warmup (see :mod:`repro.runtime.batch_executor` for the dispatch
rules); everything else falls back to ``run_workload``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import GreenGpuConfig
from repro.core.division import WorkloadDivider
from repro.core.ondemand import OndemandGovernor
from repro.core.policies import Policy
from repro.core.wma import WmaFrequencyScaler
from repro.errors import SimulationError
from repro.faults.health import ControlHealth
from repro.runtime.metrics import IterationMetrics, RunResult
from repro.runtime.partition import split_units
from repro.sim.cpu import CpuDevice
from repro.sim.gpu import GpuDevice
from repro.sim.trace import TraceRecorder
from repro.workloads.base import DemandModelWorkload, Workload

_EPS = 1e-12
_ROLL = 1.0 - 1e-12
_MAX_TICKS = 50_000_000
_EMPTY_IDX = np.empty(0, dtype=np.int64)

# Head kinds in the segment tables / live-head arrays.
_IDLE = -1
_TRANSFER = 0
_KERNEL = 1


@dataclass(slots=True)
class BatchRunRequest:
    """One lane of a batch: the same request shape ``run_workload`` takes."""

    workload: Workload
    policy: Policy
    n_iterations: int | None = None
    options: object | None = None  # ExecutorOptions | None

    def resolved_iterations(self) -> int:
        if self.n_iterations is None:
            return self.workload.default_iterations
        return self.n_iterations


@dataclass(slots=True)
class _Lane:
    """Per-lane cold state: real control objects + segment templates."""

    workload: Workload
    policy: Policy
    n_iterations: int
    sync_spin: bool
    repartition_overhead_s: float
    iteration_timeout_s: float
    system: object  # donor HeteroSystem: specs, ladders, frequency state
    cfg: GreenGpuConfig
    recorder: TraceRecorder
    divider: WorkloadDivider | None
    scaler: WmaFrequencyScaler | None
    governor: OndemandGovernor | None
    # Monitor baselines (NvidiaSmi / CpuStat clone state).
    nv_last_t: float = 0.0
    nv_last_core: float = 0.0
    nv_last_mem: float = 0.0
    cs_last_t: float = 0.0
    cs_last_busy: float = 0.0
    last_ratio: float | None = None
    # Phase templates for the current iteration's queues.  The GPU row
    # layout is [g_npre transfers][kernels, one per g_phases entry][d2h],
    # so the phase lists plus the kernel-block offset fully describe the
    # rows for re-estimation after a frequency change.
    g_phases: list = field(default_factory=list)
    c_phases: list = field(default_factory=list)
    g_npre: int = 0
    segs_units: float = -1.0  # units the templates were built for
    # Precomputed row columns for the segment tables (shared via the
    # engine's template memo; valid for the rates they were built at).
    row_cache: tuple = ()

    @property
    def ratio(self) -> float:
        """Clone of ``GreenGpuController.ratio`` for the no-fault case."""
        if self.divider is not None:
            return self.divider.r
        r = self.policy.ratio
        return r if r is not None else 0.0


class _LaneDonor:
    """Just the donor state a batch lane needs: devices + bus + config.

    A full ``HeteroSystem`` also assembles a clock and two sampled power
    meters, all of which the lockstep engine re-expresses as arrays; a
    lane only ever reads the devices' specs/frequency state, the bus,
    and the config constants, so skipping the rest roughly halves lane
    setup at fleet-scale batch widths.
    """

    __slots__ = ("gpu", "cpu", "bus", "config")

    def __init__(self, config) -> None:
        self.gpu = GpuDevice(config.gpu)
        self.cpu = CpuDevice(config.cpu)
        self.bus = config.bus
        self.config = config


def _make_lane(req: BatchRunRequest, testbed_config,
               donor_cache: dict | None = None) -> _Lane:
    from repro.runtime.executor import ExecutorOptions

    options = req.options or ExecutorOptions()
    # Specs and the testbed config are immutable value objects, so one
    # shared config serves every donor; only device state is per-lane.
    # Without live scaling the donor itself is read-only after
    # apply_initial_state (the only mutation sites are the scaling /
    # ondemand ticks, gated on mode.scaling_enabled), and the applied
    # state is a pure function of the policy's pinned ladder levels —
    # so scaling-free lanes with equal levels share one donor.  A
    # pure-ratio sweep then builds a single donor for the whole batch.
    mode = req.policy.mode
    system = None
    donor_key = None
    if donor_cache is not None and not mode.scaling_enabled:
        donor_key = (req.policy.gpu_core_level, req.policy.gpu_mem_level,
                     req.policy.cpu_level)
        system = donor_cache.get(donor_key)
    if system is None:
        system = _LaneDonor(testbed_config)
        req.policy.apply_initial_state(system)
        if donor_key is not None:
            donor_cache[donor_key] = system
    cfg = req.policy.config or GreenGpuConfig()
    divider = scaler = governor = None
    if mode.division_enabled:
        divider = WorkloadDivider(cfg, r0=req.policy.ratio)
    if mode.scaling_enabled:
        scaler = WmaFrequencyScaler(
            system.gpu.spec.core_ladder, system.gpu.spec.mem_ladder, cfg
        )
        governor = OndemandGovernor(
            system.cpu.spec.ladder,
            up_threshold=cfg.ondemand_up_threshold,
            down_threshold=cfg.ondemand_down_threshold,
        )
    return _Lane(
        workload=req.workload,
        policy=req.policy,
        n_iterations=req.resolved_iterations(),
        sync_spin=options.sync_spin,
        repartition_overhead_s=options.repartition_overhead_s,
        iteration_timeout_s=options.iteration_timeout_s,
        system=system,
        cfg=cfg,
        recorder=TraceRecorder(),
        divider=divider,
        scaler=scaler,
        governor=governor,
    )


class _BatchEngine:
    """SoA state plus the lockstep tick loop over all lanes."""

    def __init__(self, requests: list[BatchRunRequest]):
        if not requests:
            raise SimulationError("empty batch")
        from repro.sim.calibration import default_testbed_config

        shared_config = default_testbed_config()
        donor_cache: dict = {}
        self.lanes = [
            _make_lane(r, shared_config, donor_cache) for r in requests
        ]
        L = len(self.lanes)
        donor = self.lanes[0].system
        # All lanes run on the default testbed (dispatch guarantees it),
        # so the meter and power-model constants are batch-wide scalars.
        # These config fields are exactly what make_testbed hands the two
        # PowerMeters, so the meter arithmetic below matches the scalar
        # engine's meters bit for bit.
        self.OVH1 = shared_config.meter1_overhead_w
        self.EFF1 = shared_config.meter1_efficiency
        self.OVH2 = shared_config.meter2_overhead_w
        self.EFF2 = shared_config.meter2_efficiency
        gp = donor.gpu.spec.power
        self.A_CORE = gp.active_core_w
        self.A_MEM = gp.active_mem_w
        # Exact-args roofline memo shared by every lane: estimate() is a
        # pure function of (exponent, demands, rates), so a hit returns
        # the bitwise-identical triple the scalar engine would compute.
        # Parameter grids repeat demand tuples heavily (same workload at
        # many ratios/levels), making this the dominant setup saving.
        self._est_memo: dict[tuple, tuple[float, float, float]] = {}
        # Identity-level front for _est_memo: phase lists repeat the same
        # few PhaseDemand objects, and the objects are kept alive by the
        # segment memo below, so ids stay unambiguous for engine lifetime.
        self._est_by_id: dict[tuple, tuple[float, float, float]] = {}
        # Segment-template memo: lanes sweeping the same workload hit the
        # same (cpu_units, gpu_units) splits; the templates are read-only
        # so they are safely shared across lanes and iterations.
        self._seg_memo: dict[tuple, tuple[list, list]] = {}

        f64 = lambda: np.zeros(L, dtype=np.float64)  # noqa: E731
        self.now = f64()
        self.mc_e = f64()  # meter1 (CPU-side wall) energy
        self.mg_e = f64()  # meter2 (GPU-side wall) energy
        self.g_bcore = f64()  # gpu busy_core_seconds
        self.g_bmem = f64()  # gpu busy_mem_seconds
        self.g_elapsed = f64()
        self.c_elapsed = f64()
        self.c_busy = f64()  # cpu busy_seconds (/proc/stat view)
        self.c_spin_s = f64()
        self.c_spin_e = f64()
        # Frequency-derived per-lane scalars (refreshed on actuation).
        self.g_fcr = f64()
        self.g_fmr = f64()
        self.g_base = f64()  # gpu power at zero utilization
        self.cpu_busy_w = f64()
        self.cpu_idle_w = f64()
        # Wall (meter-side) watts, precomputed on actuation: the meter
        # expression ((device_w + OVH) / EFF) over a head's lifetime uses
        # the same operand floats every tick, so folding it once per
        # frequency change / segment is bitwise the per-tick arithmetic.
        self.cpu_busy_wall = f64()
        self.cpu_idle_wall = f64()
        self.g_wall = f64()  # wall watts of the current gpu head
        self.g_wall_idle = f64()
        # Live heads.
        self.g_kind = np.full(L, _IDLE, dtype=np.int8)
        self.g_rem = f64()
        self.g_est = f64()
        self.g_uc = f64()
        self.g_um = f64()
        self.g_frac = f64()
        self.c_kind = np.full(L, _IDLE, dtype=np.int8)
        self.c_est = f64()
        self.c_uc = f64()
        self.c_um = f64()
        self.c_frac = f64()
        # Clock deadlines (inf == no task).
        self.wma_dl = np.full(L, np.inf)
        self.od_dl = np.full(L, np.inf)
        self.it_timeout = np.array(
            [ln.iteration_timeout_s for ln in self.lanes]
        )
        # Executor state.
        self.t0_it = f64()
        self.e0_cpu = f64()
        self.e0_gpu = f64()
        self.e0_tot = f64()
        self.gpu_done = np.full(L, np.nan)
        self.cpu_done = np.full(L, np.nan)
        self.it_dl = f64()
        self.r_it = f64()
        self.cpu_units = f64()
        self.gpu_units = f64()
        self.iter_i = np.zeros(L, dtype=np.int64)
        self.n_iter = np.array([ln.n_iterations for ln in self.lanes])
        # Per-iteration metric columns, scattered at each barrier and
        # materialized as IterationMetrics once at result assembly —
        # boundary ticks then run no per-lane Python for static lanes.
        mi = int(self.n_iter.max())
        self.it_r = np.zeros((L, mi))
        self.it_tc = np.zeros((L, mi))
        self.it_tg = np.zeros((L, mi))
        self.it_wall = np.zeros((L, mi))
        self.it_e = np.zeros((L, mi))
        self.it_ge = np.zeros((L, mi))
        self.it_ce = np.zeros((L, mi))
        self._it_lists: tuple | None = None
        self.div_mask = np.array(
            [ln.divider is not None for ln in self.lanes], dtype=bool
        )
        self._any_div = bool(self.div_mask.any())
        self.spin = np.zeros(L, dtype=bool)
        self.act = np.ones(L, dtype=bool)
        self.sync_spin = np.array([ln.sync_spin for ln in self.lanes])
        # Completion stamps still pending this iteration (replaces per-tick
        # isnan() probes on gpu_done/cpu_done).  Pending lanes are always
        # active: the stamp lands before the boundary that deactivates.
        self.g_pending = np.zeros(L, dtype=bool)
        self.c_pending = np.zeros(L, dtype=bool)
        # act[] only changes inside _finish_boundaries, so the "every lane
        # still active" fast path is a flag, not a per-tick reduction.
        self._all_act = True

        # Lanes sharing a donor share its frequency state, so their
        # rate scalars are the same floats — copy instead of recompute.
        _rate_cols = (self.g_fcr, self.g_fmr, self.g_base, self.g_wall_idle,
                      self.cpu_busy_w, self.cpu_idle_w,
                      self.cpu_busy_wall, self.cpu_idle_wall)
        _rate_seen: dict[int, int] = {}
        for i, lane in enumerate(self.lanes):
            j = _rate_seen.setdefault(id(lane.system), i)
            if j == i:
                self._refresh_gpu_rates(i, reestimate=False)
                self._refresh_cpu_rates(i, reestimate=False)
            else:
                for col in _rate_cols:
                    col[i] = col[j]
            # clock.every(...) at attach time, with now == 0.
            if lane.scaler is not None:
                self.wma_dl[i] = 0.0 + lane.cfg.scaling_interval_s
                self.od_dl[i] = 0.0 + lane.cfg.ondemand_interval_s
        self.g_wall[:] = self.g_wall_idle
        # Controllers only register clock tasks at attach; an all-static
        # batch can skip the per-tick deadline math entirely.
        self._has_tasks = any(ln.scaler is not None for ln in self.lanes)

        # Segment tables, sized after the first build (segment counts are
        # iteration-invariant for DemandModelWorkload queues).  Iteration 0
        # never repartitions (last_ratio starts unset), so setup is: pick
        # splits, build templates, size the arrays, then one bulk begin.
        self.g_nseg = np.zeros(L, dtype=np.int64)
        self.c_nseg = np.zeros(L, dtype=np.int64)
        for i, lane in enumerate(self.lanes):
            r = lane.ratio
            lane.last_ratio = r
            cpu_units, gpu_units = split_units(1.0, r)
            self.r_it[i] = r
            self.cpu_units[i] = cpu_units
            self.gpu_units[i] = gpu_units
            self._build_segments(i, cpu_units, gpu_units)
        self._alloc_segment_arrays()
        self.g_ptr = np.zeros(L, dtype=np.int64)
        self.c_ptr = np.zeros(L, dtype=np.int64)
        for i in range(L):
            self._write_segment_rows(i)
        self._begin_iterations_bulk(np.arange(L))

    def _estimate(self, roofline, flops: float, bytes_: float, rate: float,
                  bandwidth: float, stall_s: float) -> tuple[float, float, float]:
        """Memoized ``roofline.estimate`` → ``(seconds, u_core, u_mem)``."""
        key = (roofline.overlap_exponent, flops, bytes_, rate, bandwidth,
               stall_s)
        hit = self._est_memo.get(key)
        if hit is None:
            est = roofline.estimate(flops, bytes_, rate, bandwidth, stall_s)
            hit = (est.seconds, est.u_core, est.u_mem)
            self._est_memo[key] = hit
        return hit

    # -- segment tables -------------------------------------------------------

    def _build_segments(self, i: int, cpu_units: float, gpu_units: float) -> None:
        lane = self.lanes[i]
        system = lane.system
        workload = lane.workload
        index = int(self.iter_i[i])
        gpu = system.gpu
        roofline = gpu.spec.roofline
        exp = roofline.overlap_exponent
        rate = gpu.compute_rate
        bw = gpu.bandwidth
        cpu = system.cpu
        croof = cpu.spec.roofline
        cexp = croof.overlap_exponent
        crate = cpu.compute_rate
        cbw = cpu.spec.host_bandwidth
        # Demand-model phase lists are iteration-invariant (the table
        # reuse below already relies on that), and the precomputed row
        # columns additionally depend on the current device rates — so
        # the memo is keyed by (split, rates) and shared between lanes
        # running at equal frequency levels.
        memo_key = (id(workload), cpu_units, gpu_units, rate, bw, crate, cbw)
        hit = self._seg_memo.get(memo_key)
        if hit is None:
            # Kernel segments sit in one contiguous block between the
            # leading transfers and the trailing d2h, so the row columns
            # assemble from constant prefixes/suffixes plus one memoized
            # estimate lookup per phase — no per-segment branching.
            ememo = self._est_memo
            idmemo = self._est_by_id
            phases: list = []
            npre = 0
            kinds: list = []
            durs: list = []
            gtrip: list = []
            if gpu_units > 0.0:
                pre = [system.bus.transfer_time(
                    workload.h2d_bytes(gpu_units))]
                if gpu.spec.launch_overhead_s > 0.0:
                    pre.append(gpu.spec.launch_overhead_s)
                npre = len(pre)
                phases = workload.gpu_phases(gpu_units, index)
                # gpu_phases interleaves a handful of distinct PhaseDemand
                # objects many times over; rate/bw are fixed for this
                # build, so a local bare-id dict resolves the repeats
                # without building a key tuple per segment.  The engine
                # memo (idmemo, rate-qualified and kept safe by the memo
                # retaining the phase lists) still shares across builds.
                add = gtrip.append
                local: dict = {}
                for phase in phases:
                    pid = id(phase)
                    est3 = local.get(pid)
                    if est3 is None:
                        ikey = (pid, rate, bw)
                        est3 = idmemo.get(ikey)
                        if est3 is None:
                            key = (exp, phase.flops, phase.bytes, rate, bw,
                                   phase.stall_s)
                            est3 = ememo.get(key)
                            if est3 is None:
                                est = roofline.estimate(
                                    phase.flops, phase.bytes, rate, bw,
                                    phase.stall_s)
                                est3 = (est.seconds, est.u_core, est.u_mem)
                                ememo[key] = est3
                            idmemo[ikey] = est3
                        local[pid] = est3
                    add(est3)
                d2h = system.bus.transfer_time(
                    workload.d2h_bytes(gpu_units))
                kinds = ([_TRANSFER] * npre + [_KERNEL] * len(phases)
                         + [_TRANSFER])
                durs = pre + [0.0] * len(phases) + [d2h]
                zpre = [0.0] * npre
                ges, guc, gum = zip(*gtrip) if gtrip else ((), (), ())
                ests = zpre + list(ges) + [0.0]
                ucs = zpre + list(guc) + [0.0]
                ums = zpre + list(gum) + [0.0]
            else:
                ests = []
                ucs = []
                ums = []
            cphases: list = []
            ctrip: list = []
            if cpu_units > 0.0:
                cphases = workload.cpu_phases(cpu_units, index)
                add = ctrip.append
                for phase in cphases:
                    ikey = (id(phase), crate, cbw)
                    est3 = idmemo.get(ikey)
                    if est3 is None:
                        key = (cexp, phase.flops, phase.bytes, crate, cbw,
                               phase.stall_s)
                        est3 = ememo.get(key)
                        if est3 is None:
                            est = croof.estimate(phase.flops, phase.bytes,
                                                 crate, cbw, phase.stall_s)
                            est3 = (est.seconds, est.u_core, est.u_mem)
                            ememo[key] = est3
                        idmemo[ikey] = est3
                    add(est3)
            cests = [t[0] for t in ctrip]
            cucs = [t[1] for t in ctrip]
            cums = [t[2] for t in ctrip]
            hit = (phases, npre, cphases, kinds, durs, ests, ucs, ums,
                   cests, cucs, cums)
            self._seg_memo[memo_key] = hit
        lane.g_phases = hit[0]
        lane.g_npre = hit[1]
        lane.c_phases = hit[2]
        lane.row_cache = hit
        lane.segs_units = gpu_units

    def _alloc_segment_arrays(self) -> None:
        L = len(self.lanes)
        # row_cache[3] is the GPU kind column, row_cache[8] the CPU
        # estimate column — their lengths are the per-lane row widths.
        gs = max(1, max(len(lane.row_cache[3]) for lane in self.lanes))
        cs = max(1, max(len(lane.row_cache[8]) for lane in self.lanes))
        self.gseg_kind = np.full((L, gs), _IDLE, dtype=np.int8)
        self.gseg_dur = np.zeros((L, gs))
        self.gseg_est = np.zeros((L, gs))
        self.gseg_uc = np.zeros((L, gs))
        self.gseg_um = np.zeros((L, gs))
        self.gseg_pw = np.zeros((L, gs))
        self.cseg_est = np.zeros((L, cs))
        self.cseg_uc = np.zeros((L, cs))
        self.cseg_um = np.zeros((L, cs))
        # Running floor over every row's segment count, only ever
        # lowered, so `p0 < _g_nseg_min` safely gates whole-column head
        # loads without a per-advance cohort gather.
        self._g_nseg_min = gs + 1
        # Per-column "has a zero-time segment" flags, rebuilt lazily
        # after any row write; a clean column lets the advance skip its
        # whole-array drain probe.
        self._gcol_zero: np.ndarray | None = None

    def _write_segment_rows(self, i: int) -> None:
        # Row columns were staged (and memo-shared) by _build_segments;
        # storing is one slice assign per array — tens of scalar
        # `arr[i, s] = x` writes per lane would dominate setup at fleet-
        # scale batch widths.
        (_p, _n, _cp, kinds, durs, ests, ucs, ums,
         cests, cucs, cums) = self.lanes[i].row_cache
        n = len(kinds)
        self.gseg_kind[i, :n] = kinds
        self.gseg_dur[i, :n] = durs
        self.gseg_est[i, :n] = ests
        self.gseg_uc[i, :n] = ucs
        self.gseg_um[i, :n] = ums
        self.g_nseg[i] = n
        self._write_segment_walls(i)
        m = len(cests)
        self.cseg_est[i, :m] = cests
        self.cseg_uc[i, :m] = cucs
        self.cseg_um[i, :m] = cums
        self.c_nseg[i] = m
        if n < self._g_nseg_min:
            self._g_nseg_min = n
        self._gcol_zero = None

    def _write_segment_walls(self, i: int) -> None:
        # Per-segment wall watts: the exact meter expression
        # ((g_base + (A_CORE*uc)*fcr + (A_MEM*um)*fmr) + OVH2) / EFF2,
        # folded row-wise.  For transfer segments uc == um == 0.0, so the
        # active terms add exactly +0.0 and the entry equals g_wall_idle.
        n = int(self.g_nseg[i])
        self.gseg_pw[i, :n] = (
            (
                float(self.g_base[i])
                + (self.A_CORE * self.gseg_uc[i, :n]) * float(self.g_fcr[i])
            )
            + (self.A_MEM * self.gseg_um[i, :n]) * float(self.g_fmr[i])
            + self.OVH2
        ) / self.EFF2

    def _refresh_gcol_zero(self) -> np.ndarray:
        # Rows beyond a lane's segment count sit at kind == _IDLE and
        # match neither arm, so they never mark a column.  False
        # positives (another lane's zero-time segment in the same
        # column) only cost the probe they would have run anyway.
        zm = np.where(
            self.gseg_kind == _TRANSFER, self.gseg_dur <= _EPS,
            (self.gseg_kind == _KERNEL) & (self.gseg_est <= _EPS),
        )
        self._gcol_zero = zm.any(axis=0)
        return self._gcol_zero

    def _reestimate_gpu_row(self, i: int) -> None:
        lane = self.lanes[i]
        gpu = lane.system.gpu
        roofline = gpu.spec.roofline
        for s, phase in enumerate(lane.g_phases, start=lane.g_npre):
            sec, uc, um = self._estimate(
                roofline, phase.flops, phase.bytes, gpu.compute_rate,
                gpu.bandwidth, phase.stall_s,
            )
            self.gseg_est[i, s] = sec
            self.gseg_uc[i, s] = uc
            self.gseg_um[i, s] = um
        # Frequencies changed, so every wall-power entry is stale — and
        # so are the column zero-time flags the new estimates feed.
        self._write_segment_walls(i)
        self._gcol_zero = None
        # In-flight kernels keep their fraction and re-time the remainder.
        if self.g_kind[i] == _KERNEL:
            p = int(self.g_ptr[i])
            self.g_est[i] = self.gseg_est[i, p]
            self.g_uc[i] = self.gseg_uc[i, p]
            self.g_um[i] = self.gseg_um[i, p]
        # Any head — kernel, transfer, or idle — draws at the new wall rate.
        if self.g_kind[i] >= 0:
            self.g_wall[i] = self.gseg_pw[i, int(self.g_ptr[i])]
        else:
            self.g_wall[i] = self.g_wall_idle[i]

    def _reestimate_cpu_row(self, i: int) -> None:
        lane = self.lanes[i]
        cpu = lane.system.cpu
        croof = cpu.spec.roofline
        for s, phase in enumerate(lane.c_phases):
            sec, uc, um = self._estimate(
                croof, phase.flops, phase.bytes, cpu.compute_rate,
                cpu.spec.host_bandwidth, phase.stall_s,
            )
            self.cseg_est[i, s] = sec
            self.cseg_uc[i, s] = uc
            self.cseg_um[i, s] = um
        if self.c_kind[i] == _KERNEL:
            p = int(self.c_ptr[i])
            self.c_est[i] = self.cseg_est[i, p]
            self.c_uc[i] = self.cseg_uc[i, p]
            self.c_um[i] = self.cseg_um[i, p]

    # -- frequency state ------------------------------------------------------

    def _refresh_gpu_rates(self, i: int, reestimate: bool = True) -> None:
        gpu = self.lanes[i].system.gpu
        fcr = gpu.f_core / gpu.spec.core_ladder.peak
        fmr = gpu.f_mem / gpu.spec.mem_ladder.peak
        self.g_fcr[i] = fcr
        self.g_fmr[i] = fmr
        # power(u=0): the trailing active terms add exactly +0.0, so this
        # equals the scalar expression's static+clock prefix bit for bit.
        self.g_base[i] = gpu.spec.power.power_unchecked(fcr, fmr, 0.0, 0.0)
        self.g_wall_idle[i] = (
            float(self.g_base[i]) + self.OVH2
        ) / self.EFF2
        if reestimate:
            self._reestimate_gpu_row(i)

    def _refresh_cpu_rates(self, i: int, reestimate: bool = True) -> None:
        cpu = self.lanes[i].system.cpu
        f_ratio = cpu.f / cpu.spec.ladder.peak
        self.cpu_busy_w[i] = cpu.spec.power.power_unchecked(f_ratio, 1.0)
        self.cpu_idle_w[i] = cpu.spec.power.power_unchecked(f_ratio, 0.0)
        self.cpu_busy_wall[i] = (
            float(self.cpu_busy_w[i]) + self.OVH1
        ) / self.EFF1
        self.cpu_idle_wall[i] = (
            float(self.cpu_idle_w[i]) + self.OVH1
        ) / self.EFF1
        if reestimate:
            self._reestimate_cpu_row(i)

    # -- controller ticks (real control objects, scalar per firing) -----------

    def _scaling_tick(self, i: int, t: float) -> None:
        lane = self.lanes[i]
        gpu = lane.system.gpu
        now_e = float(self.g_elapsed[i])
        window = now_e - lane.nv_last_t
        if window <= 0.0:
            # Deadlines strictly increase between firings and device time
            # advances with sim time, so an empty window is unreachable on
            # the fault-free batch path (the scalar engine's stale-sample
            # fallback only exists for injected faults).
            raise SimulationError("batch monitor window collapsed")
        u_core = (float(self.g_bcore[i]) - lane.nv_last_core) / window
        u_mem = (float(self.g_bmem[i]) - lane.nv_last_mem) / window
        lane.nv_last_t = now_e
        lane.nv_last_core = float(self.g_bcore[i])
        lane.nv_last_mem = float(self.g_bmem[i])
        u_core = min(1.0, u_core)
        u_mem = min(1.0, u_mem)
        decision = lane.scaler.step(u_core, u_mem)
        if (decision.f_core, decision.f_mem) != (gpu.f_core, gpu.f_mem):
            gpu.set_frequencies(decision.f_core, decision.f_mem)
            self._refresh_gpu_rates(i)
        power_w = self._system_power(i)
        lane.recorder.record_many(
            t,
            gpu_u_core=u_core,
            gpu_u_mem=u_mem,
            gpu_f_core=decision.f_core,
            gpu_f_mem=decision.f_mem,
            system_power_w=power_w,
        )

    def _ondemand_tick(self, i: int, t: float) -> None:
        lane = self.lanes[i]
        cpu = lane.system.cpu
        now_e = float(self.c_elapsed[i])
        window = now_e - lane.cs_last_t
        if window <= 0.0:
            raise SimulationError("batch monitor window collapsed")
        u = (float(self.c_busy[i]) - lane.cs_last_busy) / window
        lane.cs_last_t = now_e
        lane.cs_last_busy = float(self.c_busy[i])
        u = min(1.0, u)
        decision = lane.governor.step(u, cpu.f)
        if decision.changed:
            cpu.set_frequency(decision.f_target)
            self._refresh_cpu_rates(i)
        lane.recorder.record_many(t, cpu_u=u, cpu_f=decision.f_target)

    def _system_power(self, i: int) -> float:
        cpu_dev = (
            float(self.cpu_busy_w[i])
            if (self.c_kind[i] >= 0 or self.spin[i])
            else float(self.cpu_idle_w[i])
        )
        if self.g_kind[i] == _KERNEL:
            uc, um = float(self.g_uc[i]), float(self.g_um[i])
        else:
            uc, um = 0.0, 0.0
        gpu_dev = (
            float(self.g_base[i])
            + (self.A_CORE * uc) * float(self.g_fcr[i])
        ) + (self.A_MEM * um) * float(self.g_fmr[i])
        return (cpu_dev + self.OVH1) / self.EFF1 + (gpu_dev + self.OVH2) / self.EFF2

    def _fire_lane(self, i: int, when: float) -> None:
        """Clone of ``SimClock.advance_to`` task dispatch for one lane.

        The wma task is registered first, so it wins deadline ties by
        sequence number, exactly like the scalar heap ordering.
        """
        lane = self.lanes[i]
        while True:
            wd = float(self.wma_dl[i])
            od = float(self.od_dl[i])
            if wd <= od:
                dl, which = wd, 0
            else:
                dl, which = od, 1
            if dl > when or math.isinf(dl):
                break
            if dl > self.now[i]:
                self.now[i] = dl
            if which == 0:
                self.wma_dl[i] = dl + lane.cfg.scaling_interval_s
                self._scaling_tick(i, float(self.now[i]))
            else:
                self.od_dl[i] = dl + lane.cfg.ondemand_interval_s
                self._ondemand_tick(i, float(self.now[i]))

    # -- iteration lifecycle --------------------------------------------------

    def _load_gpu_head(self, i: int) -> None:
        p = int(self.g_ptr[i])
        if p >= self.g_nseg[i]:
            self.g_kind[i] = _IDLE
            # Invariant: u_core/u_mem read 0.0 (and g_wall reads the idle
            # wall rate) whenever the head is not a kernel, so the tick
            # loop can use them unmasked.  g_rem holds +inf at idle so
            # the per-tick time-to-event select needs no idle mask.
            self.g_uc[i] = 0.0
            self.g_um[i] = 0.0
            self.g_wall[i] = self.g_wall_idle[i]
            self.g_rem[i] = np.inf
            return
        kind = int(self.gseg_kind[i, p])
        self.g_kind[i] = kind
        self.g_rem[i] = self.gseg_dur[i, p]
        self.g_est[i] = self.gseg_est[i, p]
        self.g_uc[i] = self.gseg_uc[i, p]
        self.g_um[i] = self.gseg_um[i, p]
        self.g_wall[i] = self.gseg_pw[i, p]
        self.g_frac[i] = 0.0

    def _load_cpu_head(self, i: int) -> None:
        p = int(self.c_ptr[i])
        if p >= self.c_nseg[i]:
            self.c_kind[i] = _IDLE
            # c_est holds +inf at idle (see _load_gpu_head's invariant):
            # omf_c * c_est is then +inf, no idle mask needed.
            self.c_est[i] = np.inf
            return
        self.c_kind[i] = _KERNEL
        self.c_est[i] = self.cseg_est[i, p]
        self.c_uc[i] = self.cseg_uc[i, p]
        self.c_um[i] = self.cseg_um[i, p]
        self.c_frac[i] = 0.0

    def _start_iteration(self, i: int) -> None:
        lane = self.lanes[i]
        r = lane.ratio
        if (
            lane.last_ratio is not None
            and r != lane.last_ratio
            and lane.repartition_overhead_s > 0.0
        ):
            self.spin[i] = True
            self._lane_run_for(i, lane.repartition_overhead_s)
            self.spin[i] = False
        lane.last_ratio = r
        cpu_units, gpu_units = split_units(1.0, r)
        rebuild = gpu_units != lane.segs_units
        if rebuild:
            self._build_segments(i, cpu_units, gpu_units)
            self._write_segment_rows(i)
        self._begin_iteration_state(i)

    def _begin_iteration_state(self, i: int) -> None:
        lane = self.lanes[i]
        r = lane.last_ratio
        cpu_units, gpu_units = split_units(1.0, r)
        t0 = float(self.now[i])
        self.t0_it[i] = t0
        self.e0_cpu[i] = self.mc_e[i]
        self.e0_gpu[i] = self.mg_e[i]
        self.e0_tot[i] = float(self.mc_e[i]) + float(self.mg_e[i])
        self.r_it[i] = r
        self.cpu_units[i] = cpu_units
        self.gpu_units[i] = gpu_units
        self.g_ptr[i] = 0
        self.c_ptr[i] = 0
        if gpu_units > 0.0:
            self._load_gpu_head(i)
        else:
            self.g_kind[i] = _IDLE
            self.g_uc[i] = 0.0
            self.g_um[i] = 0.0
            self.g_wall[i] = self.g_wall_idle[i]
            self.g_rem[i] = np.inf
        if cpu_units > 0.0:
            self._load_cpu_head(i)
        else:
            self.c_kind[i] = _IDLE
            self.c_est[i] = np.inf
        self.gpu_done[i] = np.nan if gpu_units > 0.0 else t0
        self.cpu_done[i] = np.nan if cpu_units > 0.0 else t0
        self.g_pending[i] = gpu_units > 0.0
        self.c_pending[i] = cpu_units > 0.0
        self.it_dl[i] = t0 + lane.iteration_timeout_s
        if lane.sync_spin and cpu_units <= 0.0 and gpu_units > 0.0:
            self.spin[i] = True

    def _begin_iterations_bulk(self, idx: np.ndarray) -> None:
        """Vectorized ``_begin_iteration_state`` for same-ratio restarts.

        Valid only when ``r_it``/``cpu_units``/``gpu_units`` and the
        segment rows already describe the lanes' next iteration — true at
        construction (the setup loop fills them) and at every boundary of
        a divider-less lane (the ratio is pinned, so nothing rebuilds).
        Iteration restarts happen batch-wide on the same tick for lanes
        with equal segment counts, so this replaces the dominant per-lane
        Python cost of static sweeps with a dozen array ops.
        """
        t0 = self.now[idx]
        self.t0_it[idx] = t0
        self.e0_cpu[idx] = self.mc_e[idx]
        self.e0_gpu[idx] = self.mg_e[idx]
        self.e0_tot[idx] = self.mc_e[idx] + self.mg_e[idx]
        self.g_ptr[idx] = 0
        self.c_ptr[idx] = 0
        g_has = self.gpu_units[idx] > 0.0
        c_has = self.cpu_units[idx] > 0.0
        self.g_kind[idx] = _IDLE
        self.g_wall[idx] = self.g_wall_idle[idx]
        self.g_rem[idx] = np.inf
        gi = idx[g_has]
        if gi.size:
            self.g_kind[gi] = self.gseg_kind[gi, 0]
            self.g_rem[gi] = self.gseg_dur[gi, 0]
            self.g_est[gi] = self.gseg_est[gi, 0]
            self.g_uc[gi] = self.gseg_uc[gi, 0]
            self.g_um[gi] = self.gseg_um[gi, 0]
            self.g_wall[gi] = self.gseg_pw[gi, 0]
            self.g_frac[gi] = 0.0
        self.c_kind[idx] = _IDLE
        self.c_est[idx] = np.inf
        ci = idx[c_has]
        if ci.size:
            self.c_kind[ci] = _KERNEL
            self.c_est[ci] = self.cseg_est[ci, 0]
            self.c_uc[ci] = self.cseg_uc[ci, 0]
            self.c_um[ci] = self.cseg_um[ci, 0]
            self.c_frac[ci] = 0.0
        self.gpu_done[idx] = np.where(g_has, np.nan, t0)
        self.cpu_done[idx] = np.where(c_has, np.nan, t0)
        self.g_pending[idx] = g_has
        self.c_pending[idx] = c_has
        self.it_dl[idx] = t0 + self.it_timeout[idx]
        self.spin[idx] = self.sync_spin[idx] & ~c_has & g_has

    def _lane_run_for(self, i: int, duration: float) -> None:
        """Clone of ``HeteroSystem.run_for`` for an idle-device lane.

        Only reached for the repartition stall, where both queues are
        empty and the CPU spins; steps are bounded by clock deadlines and
        the horizon exactly like the scalar loop.
        """
        end = float(self.now[i]) + duration
        guard = 0
        while float(self.now[i]) < end - 1e-12:
            guard += 1
            if guard > _MAX_TICKS:
                raise SimulationError("step explosion inside repartition")
            now_i = float(self.now[i])
            dl = min(float(self.wma_dl[i]), float(self.od_dl[i]))
            dt: float | None = None
            if not math.isinf(dl):
                dt = dl - now_i
                if dt < 0.0:
                    dt = 0.0
            horizon = end - now_i
            if dt is None or horizon < dt:
                dt = horizon
            cpu_pw = (
                float(self.cpu_busy_w[i]) if self.spin[i]
                else float(self.cpu_idle_w[i])
            )
            gpu_pw = float(self.g_base[i])
            self.mc_e[i] += ((cpu_pw + self.OVH1) / self.EFF1) * dt
            self.mg_e[i] += ((gpu_pw + self.OVH2) / self.EFF2) * dt
            self.g_elapsed[i] += dt
            self.c_elapsed[i] += dt
            if self.spin[i]:
                self.c_busy[i] += dt
                self.c_spin_s[i] += dt
                self.c_spin_e[i] += cpu_pw * dt
            when = now_i + dt
            self._fire_lane(i, when)
            self.now[i] = when

    def _finish_boundaries(self, idx: np.ndarray) -> None:
        # Metric terms are elementwise float64, so computing them for the
        # whole boundary cohort at once is bitwise the per-lane arithmetic.
        # The terms scatter into the per-iteration columns (materialized
        # as IterationMetrics in _result); a store/load round trip does
        # not change a float64, so deferring construction is invisible.
        self.spin[idx] = False  # cpu.stop_spin() at the barrier
        t0v = self.t0_it[idx]
        nowv = self.now[idx]
        tcv = np.where(
            self.cpu_units[idx] > 0.0, self.cpu_done[idx] - t0v, 0.0
        )
        tgv = np.where(
            self.gpu_units[idx] > 0.0, self.gpu_done[idx] - t0v, 0.0
        )
        col = self.iter_i[idx]
        self.it_r[idx, col] = self.r_it[idx]
        self.it_tc[idx, col] = tcv
        self.it_tg[idx, col] = tgv
        self.it_wall[idx, col] = nowv - t0v
        self.it_e[idx, col] = (self.mc_e[idx] + self.mg_e[idx]) - self.e0_tot[idx]
        self.it_ge[idx, col] = self.mg_e[idx] - self.e0_gpu[idx]
        self.it_ce[idx, col] = self.mc_e[idx] - self.e0_cpu[idx]
        self.iter_i[idx] += 1
        live = self.iter_i[idx] < self.n_iter[idx]
        self.act[idx] = live
        cont = idx[live]
        if self._any_div:
            # Dividers repartition between iterations: they need the
            # scalar tc/tg and a per-lane rebuild, so they peel off the
            # vectorized bulk restart below.
            dsel = self.div_mask[idx]
            if dsel.any():
                il = idx.tolist()
                tcl = tcv.tolist()
                tgl = tgv.tolist()
                nowl = nowv.tolist()
                livel = live.tolist()
                for k in np.flatnonzero(dsel).tolist():
                    i = il[k]
                    lane = self.lanes[i]
                    decision = lane.divider.update(tcl[k], tgl[k])
                    lane.recorder.record_many(
                        nowl[k], division_r=decision.r_next,
                        tc=tcl[k], tg=tgl[k],
                    )
                    if livel[k]:
                        self._start_iteration(i)
                cont = cont[~self.div_mask[cont]]
        if cont.size:
            # Pinned ratio: nothing to repartition or rebuild, so the
            # restart is one vectorized bulk begin.
            self._begin_iterations_bulk(cont)
        self._all_act = bool(self.act.all())

    # -- the lockstep tick loop -----------------------------------------------

    def _advance_one_gpu(self, i: int) -> None:
        """Scalar pop-and-drain for one lane (see _advance_completed_heads)."""
        while True:
            self.g_ptr[i] += 1
            p = self.g_ptr[i]
            if p >= self.g_nseg[i]:
                self.g_kind[i] = _IDLE
                self.g_uc[i] = 0.0
                self.g_um[i] = 0.0
                self.g_wall[i] = self.g_wall_idle[i]
                self.g_rem[i] = np.inf
                return
            kind = int(self.gseg_kind[i, p])
            rr = self.gseg_dur[i, p]
            ee = self.gseg_est[i, p]
            self.g_kind[i] = kind
            self.g_rem[i] = rr
            self.g_est[i] = ee
            self.g_uc[i] = self.gseg_uc[i, p]
            self.g_um[i] = self.gseg_um[i, p]
            self.g_wall[i] = self.gseg_pw[i, p]
            self.g_frac[i] = 0.0
            if (rr > _EPS) if kind == _TRANSFER else (ee > _EPS):
                return

    def _advance_one_cpu(self, i: int) -> None:
        while True:
            self.c_ptr[i] += 1
            p = self.c_ptr[i]
            if p >= self.c_nseg[i]:
                self.c_kind[i] = _IDLE
                self.c_est[i] = np.inf
                return
            ee = self.cseg_est[i, p]
            self.c_kind[i] = _KERNEL
            self.c_est[i] = ee
            self.c_uc[i] = self.cseg_uc[i, p]
            self.c_um[i] = self.cseg_um[i, p]
            self.c_frac[i] = 0.0
            if ee > _EPS:
                return

    def _advance_completed_heads(self, g_adv: np.ndarray, c_adv: np.ndarray) -> None:
        """Pop completed heads and drain zero-time successors, vectorized.

        The drain iterates on index arrays rather than boolean masks:
        after the first pop, only the (rare) zero-time successors stay in
        play, and mid-queue pops — where every popping lane still has a
        next segment — skip the have/have-not partitioning entirely.
        Heterogeneous batches mostly complete one or two heads per tick,
        where a dozen one-element fancy-index ops cost far more than the
        equivalent scalar walk — hence the small-cohort fast path.
        """
        idx = g_adv.nonzero()[0]
        if idx.size <= 2:
            for i in idx:
                self._advance_one_gpu(int(i))
            idx = _EMPTY_IDX
        elif idx.size > 8:
            # Same-workload lanes complete segments in lockstep, so large
            # cohorts almost always share one queue pointer; the gather
            # then collapses to scalar-column copies.  Live heads are
            # never zero-time (they would have drained at load), so the
            # whole-array zero probe below only fires for cohort lanes.
            uni = self.g_ptr[idx]
            if (uni == uni[0]).all():
                p0 = int(uni[0]) + 1
                if (idx.size >= self.act.shape[0] - 4
                        and p0 < self._g_nseg_min):
                    # Near-full cohort: whole-column copies are several
                    # times cheaper than per-lane gathers, so stash the
                    # few straggler heads, copy the column over everyone,
                    # and put the stragglers back.  Column p0 is inside
                    # the table for every row (width == max segment
                    # count), so the transiently clobbered straggler
                    # values are in-bounds garbage, never reads past the
                    # row.
                    rest = (~g_adv).nonzero()[0].tolist()
                    saved = [
                        (int(self.g_ptr[j]), int(self.g_kind[j]),
                         float(self.g_rem[j]), float(self.g_est[j]),
                         float(self.g_uc[j]), float(self.g_um[j]),
                         float(self.g_wall[j]), float(self.g_frac[j]))
                        for j in rest
                    ]
                    self.g_ptr += 1
                    self.g_kind[:] = self.gseg_kind[:, p0]
                    self.g_rem[:] = self.gseg_dur[:, p0]
                    self.g_est[:] = self.gseg_est[:, p0]
                    self.g_uc[:] = self.gseg_uc[:, p0]
                    self.g_um[:] = self.gseg_um[:, p0]
                    self.g_wall[:] = self.gseg_pw[:, p0]
                    self.g_frac[:] = 0.0
                    for j, s in zip(rest, saved):
                        self.g_ptr[j] = s[0]
                        self.g_kind[j] = s[1]
                        self.g_rem[j] = s[2]
                        self.g_est[j] = s[3]
                        self.g_uc[j] = s[4]
                        self.g_um[j] = s[5]
                        self.g_wall[j] = s[6]
                        self.g_frac[j] = s[7]
                    # Restored straggler heads are idle or non-zero-time
                    # (live heads drain at load), so the whole-array
                    # probe only fires for cohort lanes — and a column
                    # with no zero-time segments skips it outright.
                    gz = self._gcol_zero
                    if gz is None:
                        gz = self._refresh_gcol_zero()
                    if gz[p0]:
                        zm = np.where(
                            self.g_kind == _TRANSFER, self.g_rem <= _EPS,
                            (self.g_kind == _KERNEL) & (self.g_est <= _EPS),
                        )
                        idx = zm.nonzero()[0]
                    else:
                        idx = _EMPTY_IDX
                elif p0 < int(self.g_nseg[idx].min()):
                    self.g_ptr[idx] = p0
                    self.g_kind[idx] = self.gseg_kind[idx, p0]
                    self.g_rem[idx] = self.gseg_dur[idx, p0]
                    self.g_est[idx] = self.gseg_est[idx, p0]
                    self.g_uc[idx] = self.gseg_uc[idx, p0]
                    self.g_um[idx] = self.gseg_um[idx, p0]
                    self.g_wall[idx] = self.gseg_pw[idx, p0]
                    self.g_frac[idx] = 0.0
                    gz = self._gcol_zero
                    if gz is None:
                        gz = self._refresh_gcol_zero()
                    if gz[p0]:
                        zm = np.where(
                            self.g_kind == _TRANSFER, self.g_rem <= _EPS,
                            (self.g_kind == _KERNEL) & (self.g_est <= _EPS),
                        )
                        idx = zm.nonzero()[0]
                    else:
                        idx = _EMPTY_IDX
        while idx.size:
            self.g_ptr[idx] += 1
            p = self.g_ptr[idx]
            have = p < self.g_nseg[idx]
            if have.all():
                li, pi, done = idx, p, _EMPTY_IDX
            else:
                li = idx[have]
                pi = p[have]
                done = idx[~have]
            if done.size:
                self.g_kind[done] = _IDLE
                # Keep the u_core/u_mem == 0.0 / g_wall == idle / g_rem
                # == inf invariants (see _load_gpu_head) for lanes whose
                # queue just drained.
                self.g_uc[done] = 0.0
                self.g_um[done] = 0.0
                self.g_wall[done] = self.g_wall_idle[done]
                self.g_rem[done] = np.inf
            if not li.size:
                break
            kk = self.gseg_kind[li, pi]
            rr = self.gseg_dur[li, pi]
            ee = self.gseg_est[li, pi]
            self.g_kind[li] = kk
            self.g_rem[li] = rr
            self.g_est[li] = ee
            self.g_uc[li] = self.gseg_uc[li, pi]
            self.g_um[li] = self.gseg_um[li, pi]
            self.g_wall[li] = self.gseg_pw[li, pi]
            self.g_frac[li] = 0.0
            zero = np.where(
                kk == _TRANSFER, rr <= _EPS, (kk == _KERNEL) & (ee <= _EPS)
            )
            idx = li[zero]
        idx = c_adv.nonzero()[0]
        if idx.size <= 2:
            for i in idx:
                self._advance_one_cpu(int(i))
            idx = _EMPTY_IDX
        while idx.size:
            self.c_ptr[idx] += 1
            p = self.c_ptr[idx]
            have = p < self.c_nseg[idx]
            if have.all():
                li, pi, done = idx, p, _EMPTY_IDX
            else:
                li = idx[have]
                pi = p[have]
                done = idx[~have]
            if done.size:
                self.c_kind[done] = _IDLE
                self.c_est[done] = np.inf
            if not li.size:
                break
            ee = self.cseg_est[li, pi]
            self.c_kind[li] = _KERNEL
            self.c_est[li] = ee
            self.c_uc[li] = self.cseg_uc[li, pi]
            self.c_um[li] = self.cseg_um[li, pi]
            self.c_frac[li] = 0.0
            idx = li[ee <= _EPS]

    def run(self) -> list[RunResult]:
        # One errstate for the whole loop (enter/exit per tick is real
        # overhead at this tick rate); `over` covers the dt/est divides
        # below, which legitimately overflow to inf before min-clamping.
        with np.errstate(over="ignore"):
            return self._run_loop()

    def _run_loop(self) -> list[RunResult]:
        act = self.act
        ticks = 0
        while act.any():
            ticks += 1
            if ticks > _MAX_TICKS:
                raise SimulationError("step explosion inside batch engine")
            all_act = self._all_act
            # horizon doubles as the timeout probe: now >= it_dl exactly
            # when the (Sterbenz-exact near zero) difference is <= 0.
            # Finished lanes froze with a positive horizon (they beat
            # their deadline), so one min() reduction gates the probe.
            horizon = self.it_dl - self.now
            if horizon.min() <= 0.0:
                late = horizon <= 0.0
                if not all_act:
                    late &= act
                if late.any():
                    bad = int(np.flatnonzero(late)[0])
                    lane = self.lanes[bad]
                    raise SimulationError(
                        f"iteration {int(self.iter_i[bad])} of "
                        f"{lane.workload.name!r} exceeded "
                        f"{lane.iteration_timeout_s}s"
                    )
            # Head-kind masks are stable until _advance_completed_heads
            # below; hoist them for every pre-advance use this tick.
            gkern = self.g_kind == _KERNEL
            gtrans = self.g_kind == _TRANSFER
            ckern = self.c_kind == _KERNEL
            # 1. per-lane dt: min over clock deadline, device events, horizon.
            # (1 - frac) * est is +0.0 when est == 0.0, so the scalar
            # engine's explicit zero-estimate branch needs no extra where.
            omf_g = 1.0 - self.g_frac
            omf_c = 1.0 - self.c_frac
            # Idle sentinels (g_rem / c_est hold +inf at idle, and rolled
            # fractions stay strictly below 1 so omf_c > 0) make the
            # not-a-kernel arm of each select a plain array read.
            g_tte = np.where(gkern, omf_g * self.g_est, self.g_rem)
            c_tte = omf_c * self.c_est
            dt = np.minimum(np.minimum(g_tte, c_tte), horizon)
            if self._has_tasks:
                task_dl = np.minimum(self.wma_dl, self.od_dl)
                dt = np.minimum(dt, np.maximum(task_dl - self.now, 0.0))
            if not all_act:
                dt = np.where(act, dt, 0.0)
            # 2+3. meter integration via precomputed wall watts: the
            # accumulate_from expression over a head's lifetime repeats
            # the same operand floats, so it was folded once per segment
            # / actuation (gseg_pw, cpu_*_wall) instead of once per tick.
            cpu_busy = (self.c_kind >= 0) | self.spin
            self.mc_e += np.where(
                cpu_busy, self.cpu_busy_wall, self.cpu_idle_wall
            ) * dt
            self.mg_e += self.g_wall * dt
            # 4. device utilization integrals (+0.0 when dt == 0:
            # identity).  The WMA/ondemand monitors are their only
            # readers, so all-static batches skip them entirely.
            if self._has_tasks:
                self.g_bcore += self.g_uc * dt
                self.g_bmem += self.g_um * dt
                self.g_elapsed += dt
                self.c_elapsed += dt
                self.c_busy += np.where(cpu_busy, dt, 0.0)
            if self.spin.any():
                # Spinning lanes are busy by definition, so their device
                # draw is exactly cpu_busy_w.  Non-spinning lanes get
                # cpu_busy_w * 0.0 == +0.0, the same addend as before.
                spin_m = self.spin & (self.c_kind < 0)
                sdt = np.where(spin_m, dt, 0.0)
                self.c_spin_s += sdt
                self.c_spin_e += self.cpu_busy_w * sdt
            # 5. queue-head progress.  Inactive lanes sit at kind == _IDLE,
            # so when every lane is active the head-kind masks need no
            # act[] intersection at all.
            gt = gtrans if all_act else act & gtrans
            # Transfers head only a few segments per queue, so most
            # ticks have none in flight and the remaining-time update
            # (an identity without them) is skipped wholesale.
            any_gt = bool(gt.any())
            if any_gt:
                step = np.minimum(dt, self.g_rem)
                self.g_rem = np.where(
                    gt, np.maximum(0.0, self.g_rem - step), self.g_rem
                )
            gk = gkern if all_act else act & gkern
            # dt over a denormal-tiny estimate overflows to inf; the
            # minimum() clamp then picks 1-frac, exactly as the scalar
            # engine's Python division (inf, no exception) would — so
            # the overflow is expected, not an error (errstate in run()).
            # A zero estimate makes est_safe 1.0 and df = min(dt, 1-frac)
            # with dt == 0 for that lane (its tte is 0); the head still
            # completes this tick through the est <= eps drain term, and
            # the fraction resets on the next load — so the scalar
            # engine's explicit zero-estimate branch is not needed.
            est_safe = np.where(self.g_est == 0.0, 1.0, self.g_est)
            df = np.minimum(dt / est_safe, omf_g)
            g_newf = self.g_frac + df
            g_roll = gk & (g_newf >= _ROLL)
            self.g_frac = np.where(gk & ~g_roll, g_newf, self.g_frac)
            ck = ckern if all_act else act & ckern
            cest_safe = np.where(self.c_est == 0.0, 1.0, self.c_est)
            cdf = np.minimum(dt / cest_safe, omf_c)
            c_newf = self.c_frac + cdf
            c_roll = ck & (c_newf >= _ROLL)
            self.c_frac = np.where(ck & ~c_roll, c_newf, self.c_frac)
            # Scalar advance() always ends in _drain_zero_time_heads, which
            # also completes kernels whose estimate is sub-epsilon, so the
            # est <= eps terms are part of the completion rule, not just
            # the rolled-fraction case.
            g_adv = g_roll | (gk & (self.g_est <= _EPS))
            if any_gt:
                g_adv |= gt & (self.g_rem <= _EPS)
            c_adv = c_roll | (ck & (self.c_est <= _EPS))
            self._advance_completed_heads(g_adv, c_adv)
            # 6. clock: fire due controller tasks, then land on `when`.
            when = self.now + dt
            if self._has_tasks:
                fire = act & (task_dl <= when)
                if fire.any():
                    for i in np.flatnonzero(fire):
                        self._fire_lane(int(i), float(when[i]))
            if all_act:
                self.now = when
            else:
                self.now = np.where(act, when, self.now)
            # 7. executor bookkeeping: completion stamps, spin, barriers.
            # Pending lanes are active by construction, so the stamps need
            # no act[] mask; most ticks stamp nothing and fall through.
            g_idle = self.g_kind < 0
            c_idle = self.c_kind < 0
            nd = self.g_pending & g_idle
            ncd = self.c_pending & c_idle
            stamped = False
            if nd.any():
                self.gpu_done[nd] = self.now[nd]
                self.g_pending &= ~nd
                stamped = True
            if ncd.any():
                self.cpu_done[ncd] = self.now[ncd]
                self.c_pending &= ~ncd
                self.spin |= ncd & self.sync_spin & ~g_idle
                stamped = True
            # A lane reaches its barrier the same tick its second device
            # goes idle, which is also the tick that device's completion
            # stamp lands — so no stamp this tick means no boundary.
            if stamped:
                bnd = g_idle & c_idle
                if not all_act:
                    bnd &= act
                if bnd.any():
                    self._finish_boundaries(bnd.nonzero()[0])
        return [self._result(i) for i in range(len(self.lanes))]

    # -- result assembly ------------------------------------------------------

    def _iterations(self, i: int) -> list[IterationMetrics]:
        # One whole-table tolist() (cached) hands back Python floats at
        # C speed; the scattered column values are the exact float64s
        # the boundary computed.
        if self._it_lists is None:
            self._it_lists = (
                self.it_r.tolist(), self.it_tc.tolist(), self.it_tg.tolist(),
                self.it_wall.tolist(), self.it_e.tolist(),
                self.it_ge.tolist(), self.it_ce.tolist(),
            )
        rl, tcl, tgl, wl, el, gel, cel = (c[i] for c in self._it_lists)
        return [
            IterationMetrics(
                index=k, r=rl[k], tc=tcl[k], tg=tgl[k], wall_s=wl[k],
                energy_j=el[k], gpu_energy_j=gel[k], cpu_energy_j=cel[k],
            )
            for k in range(int(self.iter_i[i]))
        ]

    def _result(self, i: int) -> RunResult:
        lane = self.lanes[i]
        system = lane.system
        final_ratio = lane.ratio
        result = RunResult(
            workload=lane.workload.name,
            policy=lane.policy.name,
            iterations=self._iterations(i),
            total_s=float(self.now[i]),
            total_energy_j=float(self.mc_e[i]) + float(self.mg_e[i]),
            gpu_energy_j=float(self.mg_e[i]),
            cpu_energy_j=float(self.mc_e[i]),
            cpu_spin_s=float(self.c_spin_s[i]),
            cpu_spin_energy_j=float(self.c_spin_e[i]),
            cpu_energy_emulated_idle_spin_j=0.0,
            final_ratio=final_ratio,
            traces=lane.recorder.as_dict(),
            health=ControlHealth(),
            engine="batch",
        )
        floor_ratio = system.cpu.spec.ladder.floor / system.cpu.spec.ladder.peak
        idle_floor_w = system.cpu.spec.power.idle_power(floor_ratio)
        saved_device_j = (
            result.cpu_spin_energy_j - result.cpu_spin_s * idle_floor_w
        )
        result.cpu_energy_emulated_idle_spin_j = (
            result.cpu_energy_j - saved_device_j / system.config.meter1_efficiency
        )
        return result


def batch_eligible(workload: Workload) -> bool:
    """Only demand-model workloads have iteration-invariant segment queues."""
    return isinstance(workload, DemandModelWorkload)


def run_batch(requests: list[BatchRunRequest]) -> list[RunResult]:
    """Step every request in lockstep; lane *i* ≡ scalar ``run_workload``.

    Callers are expected to have filtered requests through the dispatch
    rules (:func:`repro.runtime.batch_executor.classify`); this function
    validates the workload type and little else.
    """
    for req in requests:
        if not batch_eligible(req.workload):
            raise SimulationError(
                f"workload {req.workload.name!r} is not batchable"
            )
        if req.policy.fault_plan is not None:
            raise SimulationError("faulted runs must use the scalar engine")
    return _BatchEngine(requests).run()
