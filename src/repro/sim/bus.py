"""PCIe/system-bus transfer model.

The paper's testbed moves divided work between host memory and the GPU
card over the system bus (with DMA).  We model a transfer as a fixed
per-transfer latency plus a bandwidth term:

    t(bytes) = latency + bytes / bandwidth

PCIe 1.x x16 (the 8800 GTX era) delivers roughly 3-4 GB/s effective.
Transfer time is insensitive to GPU core/memory frequency settings — the
bus is the bottleneck — which is why the simulator charges it as a fixed
duration activity on the GPU queue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.activity import TransferActivity


@dataclass(frozen=True, slots=True)
class PcieBus:
    """Host<->device interconnect with latency + bandwidth cost model."""

    bandwidth: float          # bytes/s
    latency_s: float = 10.0e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0.0:
            raise ConfigError("bus bandwidth must be positive")
        if self.latency_s < 0.0:
            raise ConfigError("bus latency must be non-negative")

    def transfer_time(self, bytes_: float) -> float:
        """Seconds to move ``bytes_`` across the bus (0 bytes -> 0 s)."""
        if bytes_ < 0.0:
            raise ConfigError("transfer size must be non-negative")
        if bytes_ == 0.0:
            return 0.0
        return self.latency_s + bytes_ / self.bandwidth

    def make_transfer(self, bytes_: float, label: str = "dma") -> TransferActivity:
        """Build a :class:`TransferActivity` for ``bytes_`` at current rates."""
        return TransferActivity(self.transfer_time(bytes_), bytes_, label=label)
