"""Calibrated constants for the default simulated testbed.

Every number below is tied either to a published hardware datum of the
paper's testbed or to a qualitative target the paper's figures impose.
Changing them changes absolute results but the controllers never read
them — they only observe utilizations, times and meter energies — so the
reproduction's *shape* claims are robust to recalibration (the ablation
benches sweep several of these).

GPU — Nvidia GeForce 8800 GTX
-----------------------------
- Core ladder 576..300 MHz, 6 equal steps.  576 MHz is the stock shader
  domain peak the paper quotes ("576 MHz for cores"); equal spacing down to
  300 MHz puts a level at 410.4 MHz, matching the 410 MHz knee the paper
  calls out for streamcluster in §III-A.
- Memory ladder 900..500 MHz, 6 equal steps — the exact example levels in
  §VI.
- Peak bandwidth 86.4 GB/s and peak compute 345.6 Gflop/s are the 8800 GTX
  datasheet numbers.
- Power split: 2006-era GeForce cards have a substantial
  frequency-independent floor (leakage + fan + board, ~60 W) plus large
  per-domain *clock* power — the 90 nm G80 clock trees and GDDR3 I/O
  termination toggle at full swing regardless of utilization, and the card
  cannot scale voltage (§VII-C), so this is the only power frequency
  scaling can recover.  The split below yields ~147 W fully busy at peak
  clocks, ~83 W idle at the lowest clocks and ~102 W idle at peak clocks —
  consistent with contemporary measurements — and reproduces the paper's
  headline asymmetry that *dynamic*-energy savings (Fig. 6b, ~29 %) are
  several times the total-energy savings (Fig. 6a, ~6 %).

CPU — AMD Phenom II X2 (Callisto), 80 W TDP
-------------------------------------------
- P-states 2.8 / 2.1 / 1.3 / 0.8 GHz (§VI).
- ~15 W package floor, ~40 W active swing at the peak P-state (the
  benchmarks' busy-wait holds one of the two cores); voltage floor ratio
  0.75 (1.05 V @ 0.8 GHz vs 1.40 V @ 2.8 GHz).
- Host DRAM bandwidth 8 GB/s (DDR3-1066 era), not frequency scaled.

Bus — PCIe 1.1 x16: ~3 GB/s effective, 10 us per-transfer latency.

Meters — Meter1 adds the motherboard/disk/DRAM constant (~60 W) and the box
PSU efficiency; Meter2 adds the standalone ATX supply's overhead and
efficiency (paper Fig. 4).
"""

from __future__ import annotations

from repro.sim.bus import PcieBus
from repro.sim.cpu import CpuSpec
from repro.sim.frequency import FrequencyLadder
from repro.sim.gpu import GpuSpec
from repro.sim.perf import RooflineModel
from repro.sim.platform import TestbedConfig
from repro.sim.power import CpuPowerModel, GpuPowerModel
from repro.units import ghz, mhz

# -- GPU: GeForce 8800 GTX ------------------------------------------------------

GPU_CORE_LEVELS_MHZ = (576.0, 520.8, 465.6, 410.4, 355.2, 300.0)
GPU_MEM_LEVELS_MHZ = (900.0, 820.0, 740.0, 660.0, 580.0, 500.0)
GPU_PEAK_COMPUTE_FLOPS = 345.6e9
GPU_PEAK_BANDWIDTH = 86.4e9

GPU_POWER = GpuPowerModel(
    static_w=60.0,
    clock_core_w=25.0,
    clock_mem_w=28.0,
    active_core_w=22.0,
    active_mem_w=12.0,
)

GPU_OVERLAP_EXPONENT = 4.0
GPU_LAUNCH_OVERHEAD_S = 1.0e-4

# -- CPU: AMD Phenom II X2 ---------------------------------------------------------

CPU_LEVELS_GHZ = (2.8, 2.1, 1.3, 0.8)
CPU_CORES = 2
# 2 cores x 4 flop/cycle x 2.8 GHz = 22.4 Gflop/s theoretical peak.
CPU_PEAK_COMPUTE_FLOPS = 22.4e9
CPU_HOST_BANDWIDTH = 8.0e9

CPU_POWER = CpuPowerModel(
    static_w=15.0,
    active_w=40.0,
    v_floor_ratio=0.75,
    f_floor_ratio=CPU_LEVELS_GHZ[-1] / CPU_LEVELS_GHZ[0],
)

# CPU kernels overlap compute and memory poorly compared to a GPU's
# latency-hiding warps; exponent 2 gives a softer roofline.
CPU_OVERLAP_EXPONENT = 2.0

# -- Interconnect ---------------------------------------------------------------

PCIE_BANDWIDTH = 3.0e9
PCIE_LATENCY_S = 10.0e-6

# -- Meter boundaries ---------------------------------------------------------------

METER1_OVERHEAD_W = 60.0
METER1_EFFICIENCY = 0.80
METER2_OVERHEAD_W = 5.0
METER2_EFFICIENCY = 0.78


def geforce_8800_gtx_spec() -> GpuSpec:
    """GpuSpec for the paper's GeForce 8800 GTX."""
    return GpuSpec(
        name="GeForce 8800 GTX",
        core_ladder=FrequencyLadder([mhz(v) for v in GPU_CORE_LEVELS_MHZ]),
        mem_ladder=FrequencyLadder([mhz(v) for v in GPU_MEM_LEVELS_MHZ]),
        peak_compute_rate=GPU_PEAK_COMPUTE_FLOPS,
        peak_bandwidth=GPU_PEAK_BANDWIDTH,
        power=GPU_POWER,
        roofline=RooflineModel(GPU_OVERLAP_EXPONENT),
        launch_overhead_s=GPU_LAUNCH_OVERHEAD_S,
    )


def phenom_ii_x2_spec() -> CpuSpec:
    """CpuSpec for the paper's AMD Phenom II X2."""
    return CpuSpec(
        name="AMD Phenom II X2",
        ladder=FrequencyLadder([ghz(v) for v in CPU_LEVELS_GHZ]),
        cores=CPU_CORES,
        peak_compute_rate=CPU_PEAK_COMPUTE_FLOPS,
        host_bandwidth=CPU_HOST_BANDWIDTH,
        power=CPU_POWER,
        roofline=RooflineModel(CPU_OVERLAP_EXPONENT),
    )


def default_bus() -> PcieBus:
    """PCIe 1.1 x16 interconnect model."""
    return PcieBus(bandwidth=PCIE_BANDWIDTH, latency_s=PCIE_LATENCY_S)


def default_testbed_config() -> TestbedConfig:
    """The full calibrated testbed (paper's Dell Optiplex 580 analogue)."""
    return TestbedConfig(
        gpu=geforce_8800_gtx_spec(),
        cpu=phenom_ii_x2_spec(),
        bus=default_bus(),
        meter1_overhead_w=METER1_OVERHEAD_W,
        meter1_efficiency=METER1_EFFICIENCY,
        meter2_overhead_w=METER2_OVERHEAD_W,
        meter2_efficiency=METER2_EFFICIENCY,
    )
