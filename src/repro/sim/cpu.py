"""Simulated DVFS-capable multi-core CPU.

Models the paper's AMD Phenom II X2: a small set of P-states
(2.8/2.1/1.3/0.8 GHz), package-level DVFS, and a /proc/stat-style busy-time
counter that the `ondemand` governor differentiates.

Two execution modes matter for the reproduction:

- **Working** — the CPU runs its share of the divided workload (an OpenMP
  region in the paper).  Compute rate scales linearly with frequency; the
  memory component uses fixed host-DRAM bandwidth.
- **Spinning** — the paper's benchmarks use *synchronized* GPU-CPU
  communication, so the host thread busy-waits at 100 % utilization while
  the GPU computes (§VII-A: "the CPU has a utilization of 100 % even when
  it is idling").  Spinning burns active power but makes no progress, and
  it is why stock `ondemand` cannot throttle the CPU in the paper's
  testbed.  Spin time and spin energy are tracked separately so the
  paper's Fig. 6c emulation (replace spin energy with lowest-P-state idle
  energy) can be computed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FrequencyError, SimulationError
from repro.sim.activity import (
    Activity,
    ActivityQueue,
    KernelActivity,
    TransferActivity,
)
from repro.sim.frequency import FrequencyLadder
from repro.sim.perf import ExecutionEstimate, RooflineModel
from repro.sim.power import CpuPowerModel

_EPS = 1e-12


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a simulated CPU package.

    ``peak_compute_rate`` is the aggregate flop/s of all cores at the peak
    P-state; ``host_bandwidth`` is the (frequency-independent) DRAM
    bandwidth available to CPU kernels.
    """

    name: str
    ladder: FrequencyLadder
    cores: int
    peak_compute_rate: float
    host_bandwidth: float
    power: CpuPowerModel
    roofline: RooflineModel = field(default_factory=lambda: RooflineModel(2.0))

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise SimulationError("need at least one core")
        if self.peak_compute_rate <= 0.0 or self.host_bandwidth <= 0.0:
            raise SimulationError("rates must be positive")


class CpuDevice:
    """Stateful simulated CPU (see module docstring)."""

    def __init__(self, spec: CpuSpec):
        self.spec = spec
        self._f = spec.ladder.peak
        self._queue = ActivityQueue()
        self._spinning = False
        # /proc/stat-style integrals (monotonic).
        self.busy_seconds = 0.0          # working or spinning
        self.work_seconds = 0.0          # working only
        self.spin_seconds = 0.0
        self.energy_j = 0.0
        self.spin_energy_j = 0.0
        self.elapsed_seconds = 0.0
        self.freq_transitions = 0
        # Epoch-keyed caches; same contract as GpuDevice (docs/performance.md).
        self._epoch = 0
        self._power_epoch = -1
        self._power_w = 0.0
        self._est_epoch = -1
        self._est: ExecutionEstimate | None = None
        self._head_epoch = -1
        self._head: Activity | None = None
        self._refresh_rates()

    def _refresh_rates(self) -> None:
        self._f_ratio = self._f / self.spec.ladder.peak
        self._compute_rate = self.spec.peak_compute_rate * self._f_ratio

    def _bump(self) -> None:
        """Invalidate the power/estimate caches (state-change epoch)."""
        self._epoch += 1

    def invalidate_caches(self) -> None:
        """Public cache invalidation (reference path and tests)."""
        self._bump()

    # -- P-state control (cpufreq surface) -------------------------------------

    @property
    def f(self) -> float:
        """Current package frequency in Hz."""
        return self._f

    @property
    def level(self) -> int:
        """Current P-state index (0 = peak)."""
        return self.spec.ladder.index_of(self._f)

    def set_frequency(self, f: float) -> None:
        """Set the package frequency (must be an exact P-state)."""
        if f not in self.spec.ladder:
            raise FrequencyError(f"{f} Hz is not a P-state of {self.spec.name}")
        if f != self._f:
            self.freq_transitions += 1
            self._bump()
        self._f = f
        self._refresh_rates()

    def set_peak(self) -> None:
        self.set_frequency(self.spec.ladder.peak)

    # -- rates ------------------------------------------------------------------

    @property
    def f_ratio(self) -> float:
        return self._f_ratio

    @property
    def compute_rate(self) -> float:
        """Aggregate compute rate in flop/s at the current P-state."""
        return self._compute_rate

    # -- work submission ----------------------------------------------------------

    def submit_kernel(self, kernel: KernelActivity) -> None:
        """Enqueue a CPU kernel (the OpenMP share of an iteration)."""
        self._queue.push(kernel)
        self._bump()

    @property
    def has_work(self) -> bool:
        """True while queued kernels are unfinished (spin does not count)."""
        return self._current_head() is not None

    @property
    def busy(self) -> bool:
        """True while working or spinning (what /proc/stat reports)."""
        return self._current_head() is not None or self._spinning

    def spin(self) -> None:
        """Enter busy-wait (synchronized GPU communication)."""
        if not self._spinning:
            self._spinning = True
            self._bump()

    def stop_spin(self) -> None:
        """Leave busy-wait."""
        if self._spinning:
            self._spinning = False
            self._bump()

    @property
    def spinning(self) -> bool:
        return self._spinning

    def cancel_all(self) -> None:
        self._queue.clear()
        self._spinning = False
        self._bump()

    # -- simulation stepping --------------------------------------------------

    def _phase_estimate(self, kernel: KernelActivity) -> ExecutionEstimate:
        phase = kernel.current_phase
        return self.spec.roofline.estimate(
            phase.flops,
            phase.bytes,
            self.compute_rate,
            self.spec.host_bandwidth,
            phase.stall_s,
        )

    def _cached_estimate(self, kernel: KernelActivity) -> ExecutionEstimate:
        """Roofline estimate for the head phase, constant within an epoch."""
        if self._est_epoch != self._epoch:
            self._est = self._phase_estimate(kernel)
            self._est_epoch = self._epoch
        return self._est

    def _current_head(self) -> Activity | None:
        """Head activity, constant within an epoch (see GpuDevice)."""
        if self._head_epoch != self._epoch:
            self._head = self._queue.head
            self._head_epoch = self._epoch
        return self._head

    def time_to_event(self) -> float | None:
        """Seconds to the next internal event; None when idle or spinning."""
        head = self._current_head()
        if head is None:
            return None
        if isinstance(head, TransferActivity):
            return head.remaining_s
        assert isinstance(head, KernelActivity)
        est = self._cached_estimate(head)
        if est.seconds == 0.0:
            return 0.0
        return (1.0 - head.phase_fraction) * est.seconds

    def instantaneous_utilization(self) -> float:
        """Package utilization as /proc/stat would report it."""
        if self._current_head() is not None or self._spinning:
            return 1.0
        return 0.0

    def instantaneous_power(self) -> float:
        """Current package power in watts (epoch-cached)."""
        if self._power_epoch != self._epoch:
            self._power_w = self.spec.power.power_unchecked(
                self._f_ratio, self.instantaneous_utilization()
            )
            self._power_epoch = self._epoch
        return self._power_w

    def instantaneous_power_uncached(self) -> float:
        """Current package power recomputed from scratch (reference path).

        Bypasses the epoch cache and goes through the checked public
        power-model API; bit-identical to :meth:`instantaneous_power`
        whenever the caches are coherent.
        """
        return self.spec.power.power(
            self._f / self.spec.ladder.peak, self.instantaneous_utilization()
        )

    def advance(self, dt: float) -> None:
        """Advance the device by ``dt`` seconds of simulated time."""
        if dt < 0.0:
            raise SimulationError("dt must be non-negative")
        if dt == 0.0:
            self._drain_zero_time_heads()
            return
        limit = self.time_to_event()
        if limit is not None and dt > limit + 1e-9:
            raise SimulationError(f"advance({dt}) past next CPU event at {limit}")
        power = self.instantaneous_power()
        self.energy_j += power * dt
        self.elapsed_seconds += dt
        head = self._current_head()
        if head is not None:
            self.busy_seconds += dt
            self.work_seconds += dt
        elif self._spinning:
            self.busy_seconds += dt
            self.spin_seconds += dt
            self.spin_energy_j += power * dt

        if head is not None:
            if isinstance(head, TransferActivity):
                head.advance_time(min(dt, head.remaining_s))
                if head.done:
                    self._bump()
            else:
                assert isinstance(head, KernelActivity)
                est = self._cached_estimate(head)
                index = head.phase_index
                if est.seconds == 0.0:
                    head.advance_fraction(1.0 - head.phase_fraction)
                else:
                    head.advance_fraction(
                        min(dt / est.seconds, 1.0 - head.phase_fraction)
                    )
                if head.done or head.phase_index != index:
                    self._bump()
        self._drain_zero_time_heads()

    def _drain_zero_time_heads(self) -> None:
        while True:
            head = self._current_head()
            if head is None:
                return
            if isinstance(head, TransferActivity):
                if head.remaining_s > _EPS:
                    return
                head.advance_time(head.remaining_s)
            else:
                assert isinstance(head, KernelActivity)
                est = self._cached_estimate(head)
                if est.seconds > _EPS:
                    return
                head.advance_fraction(1.0 - head.phase_fraction)
            self._bump()

    # -- Fig. 6c emulation helper -------------------------------------------------

    def emulated_energy_with_idle_spin(self) -> float:
        """Total energy if every spin period had idled at the lowest P-state.

        Implements the paper's §VII-A emulation: "we replace the CPU energy
        with the average CPU energy at the lowest frequency level" whenever
        the CPU is only waiting for the GPU.
        """
        floor_ratio = self.spec.ladder.floor / self.spec.ladder.peak
        idle_floor_w = self.spec.power.idle_power(floor_ratio)
        return self.energy_j - self.spin_energy_j + self.spin_seconds * idle_floor_w
