"""Simulation clock and periodic-task scheduling.

The testbed is simulated with a piecewise-constant event model: device
power and progress rates only change at *events* (a controller tick, a
kernel phase boundary, a kernel completion, a DMA completion).  Between
events everything is analytically integrable, so the simulator advances
the clock directly from event to event instead of ticking at a fixed
resolution.  This keeps multi-hundred-second runs cheap while remaining
exact.

:class:`SimClock` owns simulated time and a set of periodic tasks
(controller loops, meter samplers).  Device/work completion events are
handled by the executor, which asks the clock for the next task deadline
and advances to ``min(deadline, completion)``.

With a telemetry backend attached (:meth:`SimClock.set_telemetry`),
every task dispatch is traced as a ``clock_task`` span labeled by task
name and counted in ``clock_dispatch_total``, which is what surfaces
the callback cost profile of a run (the 0.1 s ondemand tick dominates).
The default is no backend and a single ``is None`` branch per dispatch.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(order=True)
class _ScheduledTask:
    deadline: float
    seq: int
    period: float = field(compare=False)
    callback: Callable[[float], None] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class TaskHandle:
    """Opaque handle for cancelling a periodic task."""

    __slots__ = ("_task",)

    def __init__(self, task: _ScheduledTask):
        self._task = task

    def cancel(self) -> None:
        """Stop the task from firing again (safe to call repeatedly)."""
        self._task.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._task.cancelled


class SimClock:
    """Simulated wall clock with periodic callbacks.

    Callbacks fire in deadline order; ties break by registration order so
    runs are fully deterministic.  Callbacks receive the current simulated
    time and may register or cancel tasks, but must not advance the clock.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: list[_ScheduledTask] = []
        self._seq = itertools.count()
        self._in_dispatch = False
        self._telemetry = None
        self.pruned_total = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def set_telemetry(self, telemetry) -> None:
        """Trace task dispatches through ``telemetry`` (None to disable)."""
        if telemetry is not None and not telemetry.enabled:
            telemetry = None
        self._telemetry = telemetry

    def every(
        self,
        period: float,
        callback: Callable[[float], None],
        *,
        first_at: float | None = None,
        name: str = "",
    ) -> TaskHandle:
        """Register ``callback`` to fire every ``period`` seconds.

        The first firing is at ``first_at`` (default: ``now + period``).
        """
        if period <= 0.0:
            raise SimulationError(f"task period must be positive, got {period}")
        deadline = self._now + period if first_at is None else float(first_at)
        if deadline < self._now:
            raise SimulationError("first deadline is in the past")
        task = _ScheduledTask(deadline, next(self._seq), period, callback, name)
        heapq.heappush(self._heap, task)
        return TaskHandle(task)

    def at(self, when: float, callback: Callable[[float], None], *, name: str = "") -> TaskHandle:
        """Register a one-shot callback at absolute time ``when``."""
        if when < self._now:
            raise SimulationError("cannot schedule in the past")
        task = _ScheduledTask(float(when), next(self._seq), 0.0, callback, name)
        heapq.heappush(self._heap, task)
        return TaskHandle(task)

    def _prune(self) -> float | None:
        """Drop cancelled tasks off the heap top; return the next deadline.

        The single pruning point shared by :meth:`next_deadline` and
        :meth:`advance_to`.  Prunes are counted in :attr:`pruned_total`
        and, with a backend attached, the ``clock_pruned_total`` counter.
        """
        heap = self._heap
        pruned = 0
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            pruned += 1
        if pruned:
            self.pruned_total += pruned
            if self._telemetry is not None:
                self._telemetry.counter("clock_pruned_total").inc(pruned)
        return heap[0].deadline if heap else None

    def next_deadline(self) -> float | None:
        """Earliest pending task deadline, or None if no tasks are pending."""
        return self._prune()

    def advance_to(self, when: float) -> None:
        """Advance simulated time to ``when``, firing all due tasks in order.

        ``when`` must not be earlier than the current time.  Tasks whose
        deadline is exactly ``when`` fire.
        """
        if when < self._now - 1e-12:
            raise SimulationError(
                f"cannot move time backwards (now={self._now}, target={when})"
            )
        if self._in_dispatch:
            raise SimulationError("re-entrant clock advance from a callback")
        heap = self._heap
        while True:
            deadline = self._prune()
            if deadline is None or deadline > when:
                break
            # Batched dispatch: the due task stays at the heap root.  A
            # periodic task is rescheduled by mutating its deadline in
            # place — no sift at all when it is the only pending task
            # (the dominant steady state: one ondemand tick), a single
            # heapreplace sift otherwise instead of a pop + push pair.
            # Dispatch order is unchanged because (deadline, seq) is a
            # total order either way.
            task = heap[0]
            self._now = max(self._now, task.deadline)
            if task.period > 0.0:
                task.deadline += task.period
                if len(heap) > 1:
                    heapq.heapreplace(heap, task)
            else:
                heapq.heappop(heap)
            telemetry = self._telemetry
            self._in_dispatch = True
            try:
                if telemetry is not None:
                    with telemetry.span("clock_task",
                                        task=task.name or "anonymous"):
                        task.callback(self._now)
                    telemetry.counter("clock_dispatch_total",
                                      task=task.name or "anonymous").inc()
                else:
                    task.callback(self._now)
            finally:
                self._in_dispatch = False
        self._now = max(self._now, when)

    def advance_by(self, dt: float) -> None:
        """Advance simulated time by ``dt`` seconds (must be >= 0)."""
        if dt < 0.0:
            raise SimulationError(f"dt must be non-negative, got {dt}")
        self.advance_to(self._now + dt)
