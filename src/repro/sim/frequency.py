"""Discrete frequency ladders for DVFS-capable simulated devices.

The paper's testbed exposes six equally spaced frequency levels for the
GPU core and memory domains (e.g. 900/820/740/660/580/500 MHz for GPU
memory) and four P-states for the AMD Phenom II CPU (2.8/2.1/1.3/0.8 GHz).
:class:`FrequencyLadder` models such a set of discrete operating points.

Levels are stored descending (index 0 = peak) to match the paper's
convention that level 0 / "highest level" is the best-performance point.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import FrequencyError


class FrequencyLadder:
    """An immutable, descending-sorted set of discrete frequencies in Hz.

    Parameters
    ----------
    levels_hz:
        The available frequencies in Hz.  Duplicates are rejected; order
        does not matter (the ladder sorts descending).

    Examples
    --------
    >>> from repro.units import mhz
    >>> ladder = FrequencyLadder([mhz(v) for v in (500, 580, 660, 740, 820, 900)])
    >>> ladder.peak == mhz(900)
    True
    >>> ladder.index_of(mhz(740))
    2
    """

    __slots__ = ("_levels",)

    def __init__(self, levels_hz: Iterable[float]):
        levels = sorted(float(f) for f in levels_hz)
        if not levels:
            raise FrequencyError("a frequency ladder needs at least one level")
        if any(f <= 0.0 for f in levels):
            raise FrequencyError("frequencies must be positive")
        for a, b in zip(levels, levels[1:]):
            if a == b:
                raise FrequencyError(f"duplicate frequency level: {a!r}")
        # store descending: index 0 is the peak frequency
        self._levels: tuple[float, ...] = tuple(reversed(levels))

    def cache_state(self) -> tuple[float, ...]:
        """Canonical state for content-addressed cache keys (repro.cache)."""
        return self._levels

    # -- construction helpers -------------------------------------------------

    @classmethod
    def equally_spaced(cls, lo_hz: float, hi_hz: float, n: int) -> "FrequencyLadder":
        """Build ``n`` equally spaced levels spanning [lo_hz, hi_hz].

        Mirrors the paper's level selection: "six frequency levels with
        equal distance in the dynamic range" (§VI).
        """
        if n < 1:
            raise FrequencyError("need at least one level")
        if n == 1:
            return cls([hi_hz])
        if lo_hz >= hi_hz:
            raise FrequencyError("lo must be strictly below hi")
        step = (hi_hz - lo_hz) / (n - 1)
        return cls([lo_hz + i * step for i in range(n)])

    # -- queries ---------------------------------------------------------------

    @property
    def levels(self) -> tuple[float, ...]:
        """All levels, descending (index 0 = peak)."""
        return self._levels

    @property
    def peak(self) -> float:
        """Highest available frequency (Hz)."""
        return self._levels[0]

    @property
    def floor(self) -> float:
        """Lowest available frequency (Hz)."""
        return self._levels[-1]

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self) -> Iterator[float]:
        return iter(self._levels)

    def __contains__(self, hz: float) -> bool:
        return any(f == hz for f in self._levels)

    def __getitem__(self, index: int) -> float:
        try:
            return self._levels[index]
        except IndexError:
            raise FrequencyError(
                f"level index {index} out of range for {len(self)} levels"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyLadder):
            return NotImplemented
        return self._levels == other._levels

    def __hash__(self) -> int:
        return hash(self._levels)

    def __repr__(self) -> str:
        mhz_levels = ", ".join(f"{f / 1e6:g}" for f in self._levels)
        return f"FrequencyLadder([{mhz_levels}] MHz)"

    def index_of(self, hz: float) -> int:
        """Return the level index of an exact frequency value."""
        for i, f in enumerate(self._levels):
            if f == hz:
                return i
        raise FrequencyError(f"{hz!r} Hz is not a level of {self!r}")

    def nearest(self, hz: float) -> float:
        """Return the ladder level closest to ``hz`` (ties go to the faster)."""
        return min(self._levels, key=lambda f: (abs(f - hz), -f))

    def step_down(self, hz: float) -> float:
        """Next lower level, or the floor if already there.

        This is the actuation primitive of the `ondemand` governor's
        downward path ("run at the next lowest frequency").
        """
        i = self.index_of(hz)
        return self._levels[min(i + 1, len(self._levels) - 1)]

    def step_up(self, hz: float) -> float:
        """Next higher level, or the peak if already there."""
        i = self.index_of(hz)
        return self._levels[max(i - 1, 0)]

    def normalized(self, hz: float) -> float:
        """Position of ``hz`` in the ladder span, in [0, 1].

        0 maps to the floor and 1 to the peak.  This is the linear map the
        paper uses to define ``umean`` for each level (Table I discussion):
        peak frequency is "suitable" for 100 % utilization, the lowest for
        0 %, with linear interpolation in between.  With a single level the
        map degenerates and we return 1.0 (that level must serve all
        utilizations).
        """
        if hz not in self:
            raise FrequencyError(f"{hz!r} Hz is not a level of {self!r}")
        if len(self._levels) == 1:
            return 1.0
        return (hz - self.floor) / (self.peak - self.floor)

    def umean(self, level_index: int) -> float:
        """Most-suitable utilization for a level index (paper's ``umean``)."""
        return self.normalized(self[level_index])
