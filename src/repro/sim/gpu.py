"""Simulated frequency-scalable GPU device.

Models the observable/actuable surface of the paper's GeForce 8800 GTX:

- two independent frequency domains (cores, memory) with discrete ladders,
  set through :meth:`GpuDevice.set_frequencies` (``nvidia-settings``
  equivalent);
- hardware utilization counters per domain, exposed as monotonically
  increasing busy-time integrals that a monitor differentiates over its
  sampling window (``nvidia-smi`` equivalent);
- an energy integral over the card power model (what the paper's Meter2
  measures at the ATX supply).

Default clocks are the *lowest* levels, matching the paper's observation
that an idle GPU defaults to its lowest frequencies (Fig. 5 discussion).

Execution-time semantics follow :mod:`repro.sim.perf`: kernels advance at
rates proportional to domain frequencies, and a mid-phase frequency change
re-times only the remaining fraction of the phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FrequencyError, SimulationError
from repro.sim.activity import ActivityQueue, Activity, KernelActivity, TransferActivity
from repro.sim.frequency import FrequencyLadder
from repro.sim.perf import ExecutionEstimate, RooflineModel
from repro.sim.power import GpuPowerModel

_EPS = 1e-12


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a simulated GPU card.

    ``peak_compute_rate`` is the flop/s delivered when every SM is busy at
    the peak core frequency; ``peak_bandwidth`` is bytes/s at the peak
    memory frequency.  Both scale linearly with their domain frequency.
    ``launch_overhead_s`` is charged once per kernel launch (driver +
    dispatch latency).
    """

    name: str
    core_ladder: FrequencyLadder
    mem_ladder: FrequencyLadder
    peak_compute_rate: float
    peak_bandwidth: float
    power: GpuPowerModel
    roofline: RooflineModel = field(default_factory=RooflineModel)
    launch_overhead_s: float = 1.0e-4

    def __post_init__(self) -> None:
        if self.peak_compute_rate <= 0.0 or self.peak_bandwidth <= 0.0:
            raise SimulationError("peak rates must be positive")
        if self.launch_overhead_s < 0.0:
            raise SimulationError("launch overhead must be non-negative")


class GpuDevice:
    """Stateful simulated GPU (see module docstring).

    Hot-path contract: instantaneous power and the head phase's roofline
    estimate are constant between *epochs*.  The epoch counter bumps on
    every state change that can move either quantity — a frequency
    change, a queue mutation, a phase rollover, or a head completion —
    and the cached values are lazily recomputed when it does.  See
    ``docs/performance.md`` for the invariant and the paired-oracle test
    that pins it.
    """

    def __init__(self, spec: GpuSpec):
        self.spec = spec
        self._f_core = spec.core_ladder.floor
        self._f_mem = spec.mem_ladder.floor
        self._queue = ActivityQueue()
        # Hardware-counter-style integrals, all monotonically increasing.
        self.busy_core_seconds = 0.0
        self.busy_mem_seconds = 0.0
        self.busy_seconds = 0.0
        self.energy_j = 0.0
        self.elapsed_seconds = 0.0
        self.kernel_launches = 0
        self.freq_transitions = 0
        # Epoch-keyed caches (see class docstring).
        self._epoch = 0
        self._power_epoch = -1
        self._power_w = 0.0
        self._est_epoch = -1
        self._est: ExecutionEstimate | None = None
        self._head_epoch = -1
        self._head: Activity | None = None
        self._refresh_rates()

    def _refresh_rates(self) -> None:
        self._f_core_ratio = self._f_core / self.spec.core_ladder.peak
        self._f_mem_ratio = self._f_mem / self.spec.mem_ladder.peak
        self._compute_rate = self.spec.peak_compute_rate * self._f_core_ratio
        self._bandwidth = self.spec.peak_bandwidth * self._f_mem_ratio

    def _bump(self) -> None:
        """Invalidate the power/estimate caches (state-change epoch)."""
        self._epoch += 1

    def invalidate_caches(self) -> None:
        """Public cache invalidation (reference path and tests)."""
        self._bump()

    # -- frequency control (nvidia-settings surface) --------------------------

    @property
    def f_core(self) -> float:
        """Current core-domain frequency in Hz."""
        return self._f_core

    @property
    def f_mem(self) -> float:
        """Current memory-domain frequency in Hz."""
        return self._f_mem

    @property
    def core_level(self) -> int:
        """Index of the current core frequency in the ladder (0 = peak)."""
        return self.spec.core_ladder.index_of(self._f_core)

    @property
    def mem_level(self) -> int:
        """Index of the current memory frequency in the ladder (0 = peak)."""
        return self.spec.mem_ladder.index_of(self._f_mem)

    def set_frequencies(self, f_core: float, f_mem: float) -> None:
        """Set both domain frequencies (must be exact ladder levels).

        Takes effect immediately; in-flight kernel phases keep their
        completed fraction and re-time the remainder at the new rates.
        """
        if f_core not in self.spec.core_ladder:
            raise FrequencyError(f"core frequency {f_core} not in ladder")
        if f_mem not in self.spec.mem_ladder:
            raise FrequencyError(f"memory frequency {f_mem} not in ladder")
        if f_core != self._f_core or f_mem != self._f_mem:
            self.freq_transitions += 1
            self._bump()
        self._f_core = f_core
        self._f_mem = f_mem
        self._refresh_rates()

    def set_levels(self, core_level: int, mem_level: int) -> None:
        """Set frequencies by ladder index (0 = peak)."""
        self.set_frequencies(
            self.spec.core_ladder[core_level], self.spec.mem_ladder[mem_level]
        )

    def set_peak(self) -> None:
        """Run both domains at their peak frequencies (best-performance)."""
        self.set_frequencies(self.spec.core_ladder.peak, self.spec.mem_ladder.peak)

    # -- rates ----------------------------------------------------------------

    @property
    def compute_rate(self) -> float:
        """Current compute rate in flop/s."""
        return self._compute_rate

    @property
    def bandwidth(self) -> float:
        """Current DRAM bandwidth in bytes/s."""
        return self._bandwidth

    # -- work submission -------------------------------------------------------

    def submit_kernel(self, kernel: KernelActivity) -> None:
        """Enqueue a kernel; a launch-overhead stall is charged first."""
        if self.spec.launch_overhead_s > 0.0:
            self._queue.push(
                TransferActivity(self.spec.launch_overhead_s, label="launch")
            )
        self._queue.push(kernel)
        self.kernel_launches += 1
        self._bump()

    def submit_transfer(self, transfer: TransferActivity) -> None:
        """Enqueue a DMA transfer (duration fixed by the bus model)."""
        self._queue.push(transfer)
        self._bump()

    @property
    def busy(self) -> bool:
        """True while any queued activity is unfinished."""
        return self._current_head() is not None

    def cancel_all(self) -> None:
        """Drop all queued work (used by tests and failure injection)."""
        self._queue.clear()
        self._bump()

    # -- simulation stepping ----------------------------------------------------

    def _phase_estimate(self, kernel: KernelActivity) -> ExecutionEstimate:
        phase = kernel.current_phase
        return self.spec.roofline.estimate(
            phase.flops, phase.bytes, self.compute_rate, self.bandwidth, phase.stall_s
        )

    def _cached_estimate(self, kernel: KernelActivity) -> ExecutionEstimate:
        """Roofline estimate for the head phase, constant within an epoch."""
        if self._est_epoch != self._epoch:
            self._est = self._phase_estimate(kernel)
            self._est_epoch = self._epoch
        return self._est

    def _current_head(self) -> Activity | None:
        """Head activity, constant within an epoch.

        Every head transition (submit, cancel, completion, phase rollover)
        bumps the epoch, so the queue's lazy done-scan only needs to run
        once per epoch instead of on every hot-path query.
        """
        if self._head_epoch != self._epoch:
            self._head = self._queue.head
            self._head_epoch = self._epoch
        return self._head

    def time_to_event(self) -> float | None:
        """Seconds until the head activity finishes, or None when idle."""
        head = self._current_head()
        if head is None:
            return None
        if isinstance(head, TransferActivity):
            return head.remaining_s
        assert isinstance(head, KernelActivity)
        est = self._cached_estimate(head)
        if est.seconds == 0.0:
            return 0.0
        return (1.0 - head.phase_fraction) * est.seconds

    def instantaneous_utilization(self) -> tuple[float, float]:
        """Current (u_core, u_mem); zero when idle or stalled in a transfer."""
        head = self._current_head()
        if head is None or isinstance(head, TransferActivity):
            return 0.0, 0.0
        assert isinstance(head, KernelActivity)
        est = self._cached_estimate(head)
        return est.u_core, est.u_mem

    def instantaneous_power(self) -> float:
        """Current card power in watts (epoch-cached)."""
        if self._power_epoch != self._epoch:
            u_core, u_mem = self.instantaneous_utilization()
            self._power_w = self.spec.power.power_unchecked(
                self._f_core_ratio, self._f_mem_ratio, u_core, u_mem
            )
            self._power_epoch = self._epoch
        return self._power_w

    def instantaneous_power_uncached(self) -> float:
        """Current card power recomputed from scratch (reference path).

        Bypasses every epoch cache and goes through the checked public
        power-model API; bit-identical to :meth:`instantaneous_power`
        whenever the caches are coherent (the paired-oracle property test
        holds the two paths against each other).
        """
        head = self._queue.head
        if head is None or isinstance(head, TransferActivity):
            u_core, u_mem = 0.0, 0.0
        else:
            assert isinstance(head, KernelActivity)
            est = self._phase_estimate(head)
            u_core, u_mem = est.u_core, est.u_mem
        return self.spec.power.power(
            self._f_core / self.spec.core_ladder.peak,
            self._f_mem / self.spec.mem_ladder.peak,
            u_core,
            u_mem,
        )

    def advance(self, dt: float) -> None:
        """Advance the device by ``dt`` seconds of simulated time.

        ``dt`` must not run past the next internal event (the platform
        loop guarantees this by construction).  Utilization and energy
        integrals accumulate, and the head activity progresses.
        """
        if dt < 0.0:
            raise SimulationError("dt must be non-negative")
        if dt == 0.0:
            # Still let zero-duration phases complete.
            self._drain_zero_time_heads()
            return
        limit = self.time_to_event()
        if limit is not None and dt > limit + 1e-9:
            raise SimulationError(
                f"advance({dt}) past next GPU event at {limit}"
            )
        u_core, u_mem = self.instantaneous_utilization()
        self.energy_j += self.instantaneous_power() * dt
        self.busy_core_seconds += u_core * dt
        self.busy_mem_seconds += u_mem * dt
        head = self._current_head()
        if head is not None:
            self.busy_seconds += dt
        self.elapsed_seconds += dt
        if head is None:
            return
        if isinstance(head, TransferActivity):
            head.advance_time(min(dt, head.remaining_s))
            if head.done:
                self._bump()
        else:
            assert isinstance(head, KernelActivity)
            est = self._cached_estimate(head)
            index = head.phase_index
            if est.seconds == 0.0:
                head.advance_fraction(1.0 - head.phase_fraction)
            else:
                head.advance_fraction(min(dt / est.seconds, 1.0 - head.phase_fraction))
            if head.done or head.phase_index != index:
                self._bump()
        self._drain_zero_time_heads()

    def _drain_zero_time_heads(self) -> None:
        """Complete any queued activities that take zero time at current rates."""
        while True:
            head = self._current_head()
            if head is None:
                return
            if isinstance(head, TransferActivity):
                if head.remaining_s > _EPS:
                    return
                head.advance_time(head.remaining_s)
            else:
                assert isinstance(head, KernelActivity)
                est = self._cached_estimate(head)
                if est.seconds > _EPS:
                    return
                head.advance_fraction(1.0 - head.phase_fraction)
            self._bump()
