"""WattsUp-Pro-style wall-power meters.

The paper measures energy at two boundaries (Fig. 4): *Meter1* sits between
the wall outlet and the desktop box (CPU, motherboard, disk, main memory)
and *Meter2* between the wall and the dedicated ATX supply powering the GPU
card.  We reproduce both boundaries:

- each meter sums one or more instantaneous power *sources* (callables)
  plus a constant overhead (motherboard/disk for Meter1, PSU loss for
  Meter2), divided by a supply efficiency;
- the exact energy integral is maintained continuously (power is piecewise
  constant between simulator events, so this is exact);
- a WattsUp-style 1 Hz sample log is also kept for trace realism, recording
  the average power over each sampling window like the real instrument.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigError, MeterError


class PowerMeter:
    """Energy-integrating wall meter over a set of power sources."""

    def __init__(
        self,
        name: str,
        sources: list[Callable[[], float]],
        overhead_w: float = 0.0,
        efficiency: float = 1.0,
        sample_period_s: float = 1.0,
    ):
        if not sources:
            raise ConfigError("a meter needs at least one power source")
        if overhead_w < 0.0:
            raise ConfigError("overhead must be non-negative")
        if not 0.0 < efficiency <= 1.0:
            raise ConfigError("efficiency must be in (0, 1]")
        if sample_period_s <= 0.0:
            raise ConfigError("sample period must be positive")
        self.name = name
        self._sources = list(sources)
        self.overhead_w = float(overhead_w)
        self.efficiency = float(efficiency)
        self.sample_period_s = float(sample_period_s)
        self.energy_j = 0.0
        self.elapsed_s = 0.0
        self._window_energy = 0.0
        self._window_elapsed = 0.0
        self.samples: list[float] = []

    def instantaneous_power(self) -> float:
        """Wall power right now, in watts."""
        device_w = sum(src() for src in self._sources)
        return (device_w + self.overhead_w) / self.efficiency

    def accumulate(self, dt: float) -> None:
        """Integrate the current power over ``dt`` seconds.

        The platform calls this *before* devices change state, so the
        piecewise-constant assumption holds exactly.
        """
        if dt < 0.0:
            raise MeterError("dt must be non-negative")
        if dt == 0.0:
            return
        p = self.instantaneous_power()
        self.energy_j += p * dt
        self.elapsed_s += dt
        # Feed the 1 Hz sample log, splitting dt across window boundaries.
        remaining = dt
        while remaining > 0.0:
            room = self.sample_period_s - self._window_elapsed
            step = min(remaining, room)
            self._window_energy += p * step
            self._window_elapsed += step
            remaining -= step
            if self._window_elapsed >= self.sample_period_s - 1e-12:
                self.samples.append(self._window_energy / self._window_elapsed)
                self._window_energy = 0.0
                self._window_elapsed = 0.0

    def average_power(self) -> float:
        """Mean wall power over the whole measurement, in watts."""
        if self.elapsed_s == 0.0:
            raise MeterError(f"meter {self.name!r} has not accumulated any time")
        return self.energy_j / self.elapsed_s

    def reset(self) -> None:
        """Zero all integrals and the sample log (new measurement run)."""
        self.energy_j = 0.0
        self.elapsed_s = 0.0
        self._window_energy = 0.0
        self._window_elapsed = 0.0
        self.samples.clear()
