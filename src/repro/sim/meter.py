"""WattsUp-Pro-style wall-power meters.

The paper measures energy at two boundaries (Fig. 4): *Meter1* sits between
the wall outlet and the desktop box (CPU, motherboard, disk, main memory)
and *Meter2* between the wall and the dedicated ATX supply powering the GPU
card.  We reproduce both boundaries:

- each meter sums one or more instantaneous power *sources* (callables)
  plus a constant overhead (motherboard/disk for Meter1, PSU loss for
  Meter2), divided by a supply efficiency;
- the exact energy integral is maintained continuously (power is piecewise
  constant between simulator events, so this is exact);
- a WattsUp-style 1 Hz sample log is also kept for trace realism, recording
  the average power over each sampling window like the real instrument.

The sample log is fed in O(1) per integration step regardless of how many
sample windows the step spans (power is constant within a step, so every
interior window averages to the same value).  Call :meth:`finalize` at end
of run to flush the trailing partial window into the log; ``sample_log_cap``
bounds the log on long runs by decimating it (keep every other sample,
double the stride) whenever it fills, like a scope in envelope mode.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigError, MeterError


class PowerMeter:
    """Energy-integrating wall meter over a set of power sources."""

    def __init__(
        self,
        name: str,
        sources: list[Callable[[], float]],
        overhead_w: float = 0.0,
        efficiency: float = 1.0,
        sample_period_s: float = 1.0,
        sample_log_cap: int | None = None,
    ):
        if not sources:
            raise ConfigError("a meter needs at least one power source")
        if overhead_w < 0.0:
            raise ConfigError("overhead must be non-negative")
        if not 0.0 < efficiency <= 1.0:
            raise ConfigError("efficiency must be in (0, 1]")
        if sample_period_s <= 0.0:
            raise ConfigError("sample period must be positive")
        if sample_log_cap is not None and sample_log_cap < 2:
            raise ConfigError("sample_log_cap must be at least 2")
        self.name = name
        self._sources = list(sources)
        self._single = self._sources[0] if len(self._sources) == 1 else None
        self.overhead_w = float(overhead_w)
        self.efficiency = float(efficiency)
        self.sample_period_s = float(sample_period_s)
        self.sample_log_cap = sample_log_cap
        self.energy_j = 0.0
        self.elapsed_s = 0.0
        self._window_energy = 0.0
        self._window_elapsed = 0.0
        self._window_count = 0
        self.sample_stride = 1
        self.samples: list[float] = []

    def instantaneous_power(self) -> float:
        """Wall power right now, in watts."""
        single = self._single
        if single is not None:
            return (single() + self.overhead_w) / self.efficiency
        device_w = 0.0
        for src in self._sources:
            device_w += src()
        return (device_w + self.overhead_w) / self.efficiency

    def accumulate(self, dt: float) -> None:
        """Integrate the current power over ``dt`` seconds.

        The platform calls this *before* devices change state, so the
        piecewise-constant assumption holds exactly.
        """
        if dt < 0.0:
            raise MeterError("dt must be non-negative")
        if dt == 0.0:
            return
        self.accumulate_from(self.instantaneous_power(), dt)

    def accumulate_from(self, p: float, dt: float) -> None:
        """Integrate a precomputed wall power ``p`` over ``dt`` seconds.

        Hot-path entry: the platform evaluates each meter's power once per
        step (from the devices' epoch-cached powers) and hands it in, so
        the meter does no source calls of its own.  The sample log is
        advanced arithmetically — one append per *closed* window, never a
        per-window loop.
        """
        self.energy_j += p * dt
        self.elapsed_s += dt
        period = self.sample_period_s
        # Close the currently open partial window first.
        if self._window_elapsed > 0.0:
            room = period - self._window_elapsed
            if dt < room - 1e-12:
                self._window_energy += p * dt
                self._window_elapsed += dt
                return
            self._window_energy += p * room
            self._window_elapsed += room
            self._log_samples(self._window_energy / self._window_elapsed, 1)
            self._window_energy = 0.0
            self._window_elapsed = 0.0
            dt -= room
        # Whole windows at constant power all log the same average.
        n = int(dt / period)
        rem = dt - n * period
        if rem >= period - 1e-12:
            n += 1
            rem -= period
        if n > 0:
            self._log_samples((p * period) / period, n)
        if rem > 0.0:
            self._window_energy = p * rem
            self._window_elapsed = rem

    def _log_samples(self, value: float, n: int) -> None:
        """Record ``n`` consecutive closed windows that all averaged ``value``."""
        stride = self.sample_stride
        if stride == 1:
            self.samples.extend([value] * n)
        else:
            # Record windows whose index is a multiple of the stride, the
            # same phase ``samples[::2]`` decimation preserves; this counts
            # such indexes in [count, count + n).
            count = self._window_count
            recorded = (count + n - 1) // stride - (count - 1) // stride
            if recorded:
                self.samples.extend([value] * recorded)
        self._window_count += n
        cap = self.sample_log_cap
        if cap is not None:
            while len(self.samples) > cap:
                self.samples[:] = self.samples[::2]
                self.sample_stride *= 2

    def finalize(self) -> None:
        """Flush the trailing partial sample window into the log.

        Without this the last fraction of a run (anything after the final
        whole sampling window) never reaches ``samples`` even though it is
        in the energy integral.  Idempotent; safe to call on a fresh meter.
        """
        if self._window_elapsed > 0.0:
            self._log_samples(self._window_energy / self._window_elapsed, 1)
            self._window_energy = 0.0
            self._window_elapsed = 0.0

    def average_power(self) -> float:
        """Mean wall power over the whole measurement, in watts."""
        if self.elapsed_s == 0.0:
            raise MeterError(f"meter {self.name!r} has not accumulated any time")
        return self.energy_j / self.elapsed_s

    def reset(self) -> None:
        """Zero all integrals and the sample log (new measurement run)."""
        self.energy_j = 0.0
        self.elapsed_s = 0.0
        self._window_energy = 0.0
        self._window_elapsed = 0.0
        self._window_count = 0
        self.sample_stride = 1
        self.samples.clear()
