"""Roofline-style execution-time and utilization model.

A kernel (or kernel phase) is characterized by three demand components:

- ``flops``   — compute work, drained at the core-frequency-scaled rate;
- ``bytes``   — DRAM traffic, drained at the memory-frequency-scaled
  bandwidth;
- ``stall_s`` — latency-bound wall-clock time (DRAM access latency, warp
  divergence serialization, dependency stalls).  Fixed in *seconds*: these
  effects are dominated by constants (row-access nanoseconds, pipeline
  depths) that do not scale with either frequency domain.

Component times at the current operating point are

    t_c = flops / compute_rate(f_core)
    t_m = bytes / bandwidth(f_mem)
    t_s = stall_s

Real devices overlap these imperfectly.  We blend them with a p-norm

    t = (t_c**k + t_m**k + t_s**k) ** (1/k)

where the *overlap exponent* ``k`` interpolates between fully serialized
execution (k = 1: plain sum) and perfect overlap (k -> inf: max of the
three).  The default k = 4 reproduces the knee shape of the paper's
Fig. 1: throttling a non-bottleneck domain barely moves ``t`` until its
component time approaches the largest component, after which performance
degrades roughly linearly in 1/f.

Utilizations fall out of the same quantities using Nvidia's definitions
(§III-A of the paper):

    u_core = busy cycles / total cycles          = t_c / t
    u_mem  = achieved bandwidth / peak bandwidth = (bytes / t) / bw = t_m / t

Both are in [0, 1]; the stall component is what lets *both* be small
simultaneously (e.g. the paper's PF workload: low core and memory
utilization).  A feasibility check for target utilization pairs is
provided by :meth:`RooflineModel.max_stall_norm`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class ExecutionEstimate:
    """Execution time and per-domain busy fractions for one phase run."""

    seconds: float
    u_core: float
    u_mem: float
    t_compute: float
    t_memory: float
    t_stall: float

    def __post_init__(self) -> None:
        if self.seconds < 0.0:
            raise SimulationError("negative execution time")


class RooflineModel:
    """Blends compute, memory and stall component times into one duration.

    Parameters
    ----------
    overlap_exponent:
        The p-norm exponent ``k`` described in the module docstring.
        Must be >= 1.  ``float('inf')`` selects the exact max() roofline.
    """

    __slots__ = ("overlap_exponent",)

    def __init__(self, overlap_exponent: float = 4.0):
        if not overlap_exponent >= 1.0:
            raise SimulationError(
                f"overlap exponent must be >= 1, got {overlap_exponent}"
            )
        self.overlap_exponent = float(overlap_exponent)

    def cache_state(self) -> str:
        """Canonical state for content-addressed cache keys (repro.cache).

        A string, because ``inf`` is a legal exponent and JSON has no
        portable spelling for it.
        """
        return repr(self.overlap_exponent)

    def combine(self, t_compute: float, t_memory: float, t_stall: float = 0.0) -> float:
        """Combined execution time for component times (seconds)."""
        parts = (t_compute, t_memory, t_stall)
        if any(p < 0.0 for p in parts):
            raise SimulationError("component times must be non-negative")
        hi = max(parts)
        if hi == 0.0:
            return 0.0
        k = self.overlap_exponent
        if k == float("inf"):
            return hi
        # Factor out the largest term to keep the powers in a safe range.
        acc = sum((p / hi) ** k for p in parts if p > 0.0)
        return hi * acc ** (1.0 / k)

    def estimate(
        self,
        flops: float,
        bytes_: float,
        compute_rate: float,
        bandwidth: float,
        stall_s: float = 0.0,
    ) -> ExecutionEstimate:
        """Estimate time and utilizations for a phase.

        ``compute_rate`` is in flop/s at the current core frequency and
        ``bandwidth`` in bytes/s at the current memory frequency; both must
        be positive.  A phase with all-zero demand takes zero time.
        """
        if flops < 0.0 or bytes_ < 0.0 or stall_s < 0.0:
            raise SimulationError("demands must be non-negative")
        if compute_rate <= 0.0 or bandwidth <= 0.0:
            raise SimulationError("rates must be positive")
        t_c = flops / compute_rate
        t_m = bytes_ / bandwidth
        t = self.combine(t_c, t_m, stall_s)
        if t == 0.0:
            return ExecutionEstimate(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return ExecutionEstimate(
            seconds=t,
            u_core=min(1.0, t_c / t),
            u_mem=min(1.0, t_m / t),
            t_compute=t_c,
            t_memory=t_m,
            t_stall=stall_s,
        )

    # -- calibration helpers ------------------------------------------------------

    def utilization_norm(self, u_core: float, u_mem: float) -> float:
        """p-norm of a target utilization pair.

        A pair is *achievable* by some stall component iff its norm is
        <= 1; equality means zero stall (pure two-component roofline).
        """
        k = self.overlap_exponent
        if k == float("inf"):
            return max(u_core, u_mem)
        return (u_core**k + u_mem**k) ** (1.0 / k)

    def stall_for_utilizations(self, u_core: float, u_mem: float) -> float:
        """Stall fraction (t_s / t) needed to realize a utilization pair.

        Returns the per-unit-time stall component such that a phase built
        with component fractions (u_core, u_mem, stall) has exactly the
        requested utilizations at the calibration operating point.
        Raises if the pair is infeasible for this overlap exponent.
        """
        if not 0.0 <= u_core <= 1.0 or not 0.0 <= u_mem <= 1.0:
            raise SimulationError("utilizations must be in [0, 1]")
        k = self.overlap_exponent
        if k == float("inf"):
            if max(u_core, u_mem) > 1.0:
                raise SimulationError("infeasible utilization pair")
            return 1.0 if max(u_core, u_mem) < 1.0 else 0.0
        residual = 1.0 - u_core**k - u_mem**k
        if residual < -1e-9:
            raise SimulationError(
                f"utilization pair ({u_core}, {u_mem}) infeasible for k={k}: "
                f"norm {self.utilization_norm(u_core, u_mem):.3f} > 1"
            )
        return max(0.0, residual) ** (1.0 / k)
