"""The assembled heterogeneous testbed: CPU + GPU + bus + meters + clock.

:class:`HeteroSystem` is the co-simulation driver.  It owns the simulated
clock, both devices, the PCIe bus and the two wall meters, and exposes a
single stepping primitive, :meth:`step`, which advances everything to the
next event (a controller tick, a device phase boundary, or a caller-imposed
horizon) without ever skipping one.  Power is piecewise constant between
events, so meter integrals are exact.

:func:`make_testbed` builds the default calibrated instance mirroring the
paper's Dell Optiplex 580 + GeForce 8800 GTX testbed (see
:mod:`repro.sim.calibration` for the constants and their provenance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.bus import PcieBus
from repro.sim.cpu import CpuDevice, CpuSpec
from repro.sim.engine import SimClock
from repro.sim.gpu import GpuDevice, GpuSpec
from repro.sim.meter import PowerMeter

_MAX_STEPS_PER_RUN = 50_000_000


@dataclass(frozen=True)
class TestbedConfig:
    """Bundles the specs needed to assemble a :class:`HeteroSystem`."""

    gpu: GpuSpec
    cpu: CpuSpec
    bus: PcieBus
    meter1_overhead_w: float = 45.0   # motherboard + disk + DRAM on the box meter
    meter1_efficiency: float = 0.80   # desktop PSU efficiency (2010 era)
    meter2_overhead_w: float = 5.0    # standalone ATX supply idle draw
    meter2_efficiency: float = 0.78   # that supply's conversion efficiency
    meter_sample_period_s: float = 1.0
    # Bound on each meter's sample log; None keeps every window (historical
    # behavior).  When set, a full log is decimated 2:1 (see PowerMeter).
    sample_log_cap: int | None = None


class HeteroSystem:
    """Co-simulated GPU-CPU platform (see module docstring)."""

    def __init__(self, config: TestbedConfig):
        self.config = config
        self.clock = SimClock()
        self.gpu = GpuDevice(config.gpu)
        self.cpu = CpuDevice(config.cpu)
        self.bus = config.bus
        # Meter1: wall power of the desktop box (CPU side), paper Fig. 4.
        self.meter_cpu = PowerMeter(
            "meter1-cpu-box",
            [self.cpu.instantaneous_power],
            overhead_w=config.meter1_overhead_w,
            efficiency=config.meter1_efficiency,
            sample_period_s=config.meter_sample_period_s,
            sample_log_cap=config.sample_log_cap,
        )
        # Meter2: wall power of the GPU card's dedicated ATX supply.
        self.meter_gpu = PowerMeter(
            "meter2-gpu-card",
            [self.gpu.instantaneous_power],
            overhead_w=config.meter2_overhead_w,
            efficiency=config.meter2_efficiency,
            sample_period_s=config.meter_sample_period_s,
            sample_log_cap=config.sample_log_cap,
        )

    # -- measurement -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def total_energy_j(self) -> float:
        """Whole-system wall energy (both meters), in joules."""
        return self.meter_cpu.energy_j + self.meter_gpu.energy_j

    def system_power(self) -> float:
        """Instantaneous whole-system wall power, in watts."""
        return self.meter_cpu.instantaneous_power() + self.meter_gpu.instantaneous_power()

    def idle_system_power(self) -> float:
        """Wall power with both devices idle at their *current* frequencies."""
        gpu_idle = self.gpu.spec.power.idle_power(
            self.gpu.f_core / self.gpu.spec.core_ladder.peak,
            self.gpu.f_mem / self.gpu.spec.mem_ladder.peak,
        )
        cpu_idle = self.cpu.spec.power.idle_power(self.cpu.f_ratio)
        c = self.config
        return (
            (cpu_idle + c.meter1_overhead_w) / c.meter1_efficiency
            + (gpu_idle + c.meter2_overhead_w) / c.meter2_efficiency
        )

    def reset_meters(self) -> None:
        """Zero both meters (start of a measured experiment)."""
        self.meter_cpu.reset()
        self.meter_gpu.reset()

    def finalize_meters(self) -> None:
        """Flush both meters' trailing partial sample windows (end of run)."""
        self.meter_cpu.finalize()
        self.meter_gpu.finalize()

    # -- stepping -----------------------------------------------------------------

    def _next_dt(self, horizon: float | None) -> float:
        candidates: list[float] = []
        deadline = self.clock.next_deadline()
        if deadline is not None:
            candidates.append(max(0.0, deadline - self.clock.now))
        for tte in (self.gpu.time_to_event(), self.cpu.time_to_event()):
            if tte is not None:
                candidates.append(tte)
        if horizon is not None:
            if horizon < 0.0:
                raise SimulationError("horizon must be non-negative")
            candidates.append(horizon)
        if not candidates:
            raise SimulationError(
                "nothing to simulate: no device work, no scheduled tasks, no horizon"
            )
        return min(candidates)

    def step(self, horizon: float | None = None) -> float:
        """Advance to the next event (bounded by ``horizon`` seconds ahead).

        Returns the dt actually advanced.  Order per step: integrate the
        meters at the *current* powers, advance both devices, then advance
        the clock (firing any due controller callbacks, which may change
        frequencies or submit work for subsequent steps).

        This is the hot path: the next-event search runs inline over
        locals with no candidate-list allocation, and device powers come
        from the epoch caches.  :meth:`_step_reference` is the kept
        uncached oracle; the paired property test pins the two to
        bit-identical trajectories.
        """
        clock = self.clock
        gpu = self.gpu
        cpu = self.cpu
        dt: float | None = None
        deadline = clock.next_deadline()
        if deadline is not None:
            dt = deadline - clock.now
            if dt < 0.0:
                dt = 0.0
        tte = gpu.time_to_event()
        if tte is not None and (dt is None or tte < dt):
            dt = tte
        tte = cpu.time_to_event()
        if tte is not None and (dt is None or tte < dt):
            dt = tte
        if horizon is not None:
            if horizon < 0.0:
                raise SimulationError("horizon must be non-negative")
            if dt is None or horizon < dt:
                dt = horizon
        if dt is None:
            raise SimulationError(
                "nothing to simulate: no device work, no scheduled tasks, no horizon"
            )
        # Feed the meters from the devices' epoch-cached powers with the
        # exact expression accumulate() would use for a single source.
        meter = self.meter_cpu
        meter.accumulate_from(
            (cpu.instantaneous_power() + meter.overhead_w) / meter.efficiency, dt
        )
        meter = self.meter_gpu
        meter.accumulate_from(
            (gpu.instantaneous_power() + meter.overhead_w) / meter.efficiency, dt
        )
        gpu.advance(dt)
        cpu.advance(dt)
        clock.advance_by(dt)
        return dt

    def _step_reference(self, horizon: float | None = None) -> float:
        """Pre-optimization step loop, kept as the correctness oracle.

        Invalidates every epoch cache up front and feeds the meters from
        the devices' from-scratch checked power path, so nothing here
        depends on cache coherence.  Must stay bit-identical to
        :meth:`step` — the paired-oracle property test replays whole runs
        through both and compares every integral exactly.
        """
        self.gpu.invalidate_caches()
        self.cpu.invalidate_caches()
        dt = self._next_dt(horizon)
        self.meter_cpu.accumulate_from(
            (self.cpu.instantaneous_power_uncached() + self.meter_cpu.overhead_w)
            / self.meter_cpu.efficiency,
            dt,
        )
        self.meter_gpu.accumulate_from(
            (self.gpu.instantaneous_power_uncached() + self.meter_gpu.overhead_w)
            / self.meter_gpu.efficiency,
            dt,
        )
        self.gpu.advance(dt)
        self.cpu.advance(dt)
        self.clock.advance_by(dt)
        return dt

    def run_for(self, duration: float) -> None:
        """Advance exactly ``duration`` seconds, stepping through all events."""
        if duration < 0.0:
            raise SimulationError("duration must be non-negative")
        end = self.clock.now + duration
        steps = 0
        while self.clock.now < end - 1e-12:
            self.step(horizon=end - self.clock.now)
            steps += 1
            if steps > _MAX_STEPS_PER_RUN:
                raise SimulationError("step explosion: too many events in run_for")

    def run_until_devices_idle(self, timeout_s: float = 1.0e6) -> None:
        """Step until neither device has queued work (spin does not block).

        Raises if the work does not drain within ``timeout_s`` of simulated
        time — that indicates a deadlocked experiment setup.
        """
        end = self.clock.now + timeout_s
        steps = 0
        while self.gpu.busy or self.cpu.has_work:
            if self.clock.now >= end:
                raise SimulationError("devices still busy at timeout")
            self.step(horizon=end - self.clock.now)
            steps += 1
            if steps > _MAX_STEPS_PER_RUN:
                raise SimulationError("step explosion in run_until_devices_idle")


def make_testbed(config: TestbedConfig | None = None) -> HeteroSystem:
    """Build the default calibrated testbed (paper's hardware analogue)."""
    if config is None:
        from repro.sim.calibration import default_testbed_config

        config = default_testbed_config()
    return HeteroSystem(config)
