"""Analytic power models for the simulated GPU and CPU.

GPU (frequency-only scaling)
----------------------------
The GeForce 8800 GTX in the paper's testbed supports frequency scaling via
``nvidia-settings`` but *not* voltage scaling (§VII-C: "nvidia-settings on
GeForce8800 only conducts frequency scaling").  Power therefore splits into

- a frequency-independent static floor (leakage, fans, board),
- per-domain *clock* power that scales linearly with that domain's
  frequency even when the domain is idle (clock tree, I/O termination), and
- per-domain *activity* power proportional to utilization x frequency.

    P_gpu = P_static
          + P_clk_core * (f_c / f_c_peak) + P_clk_mem * (f_m / f_m_peak)
          + P_act_core * u_c * (f_c / f_c_peak)
          + P_act_mem  * u_m * (f_m / f_m_peak)

The clock terms are what makes throttling an *under-utilized* domain save
energy with negligible performance impact (paper Fig. 1, observation 1):
execution time is unchanged while the clock power of that domain drops.
The activity terms alone would not save anything, because halving a
domain's frequency doubles its busy fraction on the same work.

The large static floor mirrors 2006-era GPUs, and is what separates the
paper's total-energy savings (Fig. 6a, ~6 %) from its dynamic-energy
savings (Fig. 6b, ~29 %).

CPU (full DVFS)
---------------
The AMD Phenom II scales voltage with frequency, so dynamic power follows
the classic f * V(f)^2 law with a linear V(f) approximation:

    P_cpu = P_static + P_act * u * (f / f_peak) * (V(f) / V_peak)^2
    V(f)  = V_min + (V_peak - V_min) * (f - f_floor) / (f_peak - f_floor)

This superlinear dependence is why CPU DVFS saves much more than GPU
frequency-only scaling at equal throttling depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class GpuPowerModel:
    """Frequency-only-scaling GPU power model (see module docstring).

    All power coefficients are in watts; frequencies are normalized inside
    :meth:`power` by the supplied peak values.
    """

    static_w: float
    clock_core_w: float
    clock_mem_w: float
    active_core_w: float
    active_mem_w: float

    def __post_init__(self) -> None:
        for name in ("static_w", "clock_core_w", "clock_mem_w", "active_core_w", "active_mem_w"):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be non-negative")

    def power(
        self,
        f_core_ratio: float,
        f_mem_ratio: float,
        u_core: float,
        u_mem: float,
    ) -> float:
        """Instantaneous card power in watts.

        ``f_*_ratio`` are current frequency / peak frequency in (0, 1];
        ``u_*`` are the domain utilizations in [0, 1].
        """
        if f_core_ratio <= 0.0 or f_mem_ratio <= 0.0:
            raise ConfigError("frequency ratios must be positive")
        _check_fraction("u_core", u_core)
        _check_fraction("u_mem", u_mem)
        return self.power_unchecked(f_core_ratio, f_mem_ratio, u_core, u_mem)

    def power_unchecked(
        self,
        f_core_ratio: float,
        f_mem_ratio: float,
        u_core: float,
        u_mem: float,
    ) -> float:
        """:meth:`power` with range validation hoisted to the caller.

        The simulator's hot path validates inputs once at the actuation
        boundary (ladder membership guarantees positive ratios, the
        roofline model guarantees utilizations in [0, 1]) and then calls
        this per event.  Both entry points share the same arithmetic, so
        results are bit-identical.
        """
        return (
            self.static_w
            + self.clock_core_w * f_core_ratio
            + self.clock_mem_w * f_mem_ratio
            + self.active_core_w * u_core * f_core_ratio
            + self.active_mem_w * u_mem * f_mem_ratio
        )

    def idle_power(self, f_core_ratio: float, f_mem_ratio: float) -> float:
        """Card power with both domains idle at the given frequencies."""
        return self.power(f_core_ratio, f_mem_ratio, 0.0, 0.0)

    @property
    def peak_power(self) -> float:
        """Card power fully busy at peak frequencies."""
        return self.power(1.0, 1.0, 1.0, 1.0)


@dataclass(frozen=True, slots=True)
class CpuPowerModel:
    """DVFS CPU power model (see module docstring).

    ``v_floor_ratio`` is V_min / V_peak, the relative supply voltage at the
    lowest P-state (e.g. ~0.75 for a Phenom II: 1.05 V vs 1.40 V).
    """

    static_w: float
    active_w: float
    v_floor_ratio: float = 0.75
    f_floor_ratio: float = 0.285  # 800 MHz / 2.8 GHz on the paper's Phenom II

    def __post_init__(self) -> None:
        if self.static_w < 0.0 or self.active_w < 0.0:
            raise ConfigError("power coefficients must be non-negative")
        if not 0.0 < self.v_floor_ratio <= 1.0:
            raise ConfigError("v_floor_ratio must be in (0, 1]")
        if not 0.0 < self.f_floor_ratio <= 1.0:
            raise ConfigError("f_floor_ratio must be in (0, 1]")

    def voltage_ratio(self, f_ratio: float) -> float:
        """Relative supply voltage V(f)/V_peak at frequency ratio ``f_ratio``.

        Linear between (f_floor, v_floor) and (1, 1); clamped below the
        floor so querying the exact floor frequency is safe against float
        rounding.
        """
        if f_ratio <= self.f_floor_ratio:
            return self.v_floor_ratio
        if f_ratio >= 1.0:
            return 1.0
        span = 1.0 - self.f_floor_ratio
        return self.v_floor_ratio + (1.0 - self.v_floor_ratio) * (
            (f_ratio - self.f_floor_ratio) / span
        )

    def power(self, f_ratio: float, u: float) -> float:
        """Instantaneous package power in watts."""
        if f_ratio <= 0.0:
            raise ConfigError("frequency ratio must be positive")
        _check_fraction("u", u)
        return self.power_unchecked(f_ratio, u)

    def power_unchecked(self, f_ratio: float, u: float) -> float:
        """:meth:`power` with range validation hoisted to the caller.

        Same contract as :meth:`GpuPowerModel.power_unchecked`: the P-state
        ladder guarantees a positive ratio and the device guarantees a
        utilization in [0, 1], so the hot path skips the checks.  Shared
        arithmetic keeps both entry points bit-identical.
        """
        v = self.voltage_ratio(f_ratio)
        return self.static_w + self.active_w * u * f_ratio * v * v

    def idle_power(self, f_ratio: float) -> float:
        """Package power at zero utilization."""
        return self.power(f_ratio, 0.0)

    @property
    def peak_power(self) -> float:
        """Package power fully busy at the peak P-state."""
        return self.power(1.0, 1.0)
