"""Time-series trace recording for experiments.

A :class:`TraceRecorder` samples named channels (utilization, frequency,
power, division ratio, per-iteration energy, ...) at arbitrary simulated
times and exposes them as a :class:`Trace` of parallel numpy arrays for
analysis and plotting.  This is what backs the paper's Figs. 5, 7 and 8.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class Trace:
    """An immutable view of one channel: times and values as arrays."""

    name: str
    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.times.shape != self.values.shape:
            raise SimulationError("trace time/value length mismatch")

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def final(self) -> float:
        """Last recorded value."""
        if len(self) == 0:
            raise SimulationError(f"trace {self.name!r} is empty")
        return float(self.values[-1])

    def mean(self) -> float:
        """Arithmetic mean of the recorded values."""
        if len(self) == 0:
            raise SimulationError(f"trace {self.name!r} is empty")
        return float(self.values.mean())

    def time_weighted_mean(self) -> float:
        """Mean weighted by the holding time of each sample.

        Each value is held from its timestamp to the next; the last sample
        is excluded (it has no holding interval).  Requires >= 2 samples.
        """
        if len(self) < 2:
            raise SimulationError(f"trace {self.name!r} needs >= 2 samples")
        dt = np.diff(self.times)
        if np.any(dt < 0.0):
            raise SimulationError("trace timestamps must be non-decreasing")
        total = dt.sum()
        if total == 0.0:
            return float(self.values[0])
        return float((self.values[:-1] * dt).sum() / total)

    def window(self, t0: float, t1: float) -> "Trace":
        """Sub-trace with t0 <= time <= t1."""
        mask = (self.times >= t0) & (self.times <= t1)
        return Trace(self.name, self.times[mask], self.values[mask])


class TraceRecorder:
    """Mutable multi-channel trace collector."""

    def __init__(self) -> None:
        self._times: dict[str, list[float]] = defaultdict(list)
        self._values: dict[str, list[float]] = defaultdict(list)

    def record(self, channel: str, t: float, value: float) -> None:
        """Append a sample; times within a channel must be non-decreasing."""
        times = self._times[channel]
        if times and t < times[-1] - 1e-12:
            raise SimulationError(
                f"non-monotonic time {t} after {times[-1]} on channel {channel!r}"
            )
        times.append(float(t))
        self._values[channel].append(float(value))

    def record_many(self, t: float, **channels: float) -> None:
        """Record several channels at the same timestamp."""
        for name, value in channels.items():
            self.record(name, t, value)

    @property
    def channels(self) -> list[str]:
        """All channel names seen so far, sorted."""
        return sorted(self._times)

    def __contains__(self, channel: str) -> bool:
        return channel in self._times

    def trace(self, channel: str) -> Trace:
        """Freeze one channel into a :class:`Trace`."""
        if channel not in self._times:
            raise SimulationError(f"unknown trace channel {channel!r}")
        return Trace(
            channel,
            np.asarray(self._times[channel], dtype=float),
            np.asarray(self._values[channel], dtype=float),
        )

    def as_dict(self) -> dict[str, Trace]:
        """Freeze every channel."""
        return {name: self.trace(name) for name in self.channels}
