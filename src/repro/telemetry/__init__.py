"""Unified observability for the GreenGPU reproduction.

One subsystem replaces the three ad-hoc counting mechanisms that grew
alongside the control loop (``GreenGpuController._record_event`` string
channels, the ``ControlHealth`` tallies, the harness journal's per-job
fields) with a single instrumented path:

- :class:`MetricsRegistry` — labeled counters, gauges, and histograms
  with streaming p50/p95/p99 percentiles (:mod:`repro.telemetry.registry`);
- structured span tracing with sim-clock *and* wall-clock timestamps
  (:mod:`repro.telemetry.spans`);
- pluggable exporters — JSONL event stream, Prometheus text exposition,
  CSV/markdown summaries (:mod:`repro.telemetry.exporters`);
- cross-process aggregation of spawn-isolated harness workers into one
  run-level view (:mod:`repro.telemetry.merge`);
- the ``repro metrics`` inspector (:mod:`repro.telemetry.inspect`);
- the per-decision audit trail and the ``repro explain`` narrative
  renderer (:mod:`repro.telemetry.audit`);
- the run-diff engine behind ``repro diff`` and the CI regression gate
  (:mod:`repro.telemetry.diff`);
- deterministic distributed tracing: W3C-style trace-context propagation
  across process boundaries (:mod:`repro.telemetry.tracecontext`), trace
  stitching and waterfall rendering (:mod:`repro.telemetry.traceview`);
- declared SLOs with multi-window burn-rate evaluation
  (:mod:`repro.telemetry.slo`).

Instrumented code takes an optional ``telemetry`` argument and
normalizes it with ``telemetry or NOOP``: the disabled backend has the
same surface, does nothing, and allocates nothing on the hot path, so
observability is strictly opt-in.
"""

from repro.telemetry.audit import AuditTrail, format_explanation, read_audit
from repro.telemetry.core import NOOP, NullTelemetry, Telemetry
from repro.telemetry.diff import RunDelta, diff_runs
from repro.telemetry.exporters import export_telemetry, write_exports
from repro.telemetry.inspect import format_metrics_report
from repro.telemetry.merge import export_worker, merge_directory
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.slo import (
    DEFAULT_SLOS,
    SloResult,
    SloSpec,
    evaluate_slos,
)
from repro.telemetry.spans import Span, SpanTracer
from repro.telemetry.tracecontext import (
    TRACEPARENT_ENV,
    TraceContext,
    default_context,
    derive_id,
    propagation_env,
)
from repro.telemetry.traceview import (
    format_trace_report,
    stitch_spans,
    tree_signature,
)

__all__ = [
    "DEFAULT_SLOS",
    "TRACEPARENT_ENV",
    "TraceContext",
    "SloResult",
    "SloSpec",
    "default_context",
    "derive_id",
    "evaluate_slos",
    "format_trace_report",
    "propagation_env",
    "stitch_spans",
    "tree_signature",
    "NOOP",
    "NullTelemetry",
    "Telemetry",
    "AuditTrail",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunDelta",
    "Span",
    "SpanTracer",
    "diff_runs",
    "export_telemetry",
    "write_exports",
    "export_worker",
    "merge_directory",
    "format_explanation",
    "format_metrics_report",
    "read_audit",
]
