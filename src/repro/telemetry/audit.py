"""The decision audit trail: one structured record per control decision.

Metrics say *what* the controller did; the audit trail says *why*.  Every
tier-2 scaling tick and every tier-1 division boundary appends one record
to an :class:`AuditTrail`, which serializes to an append-only
``audit.jsonl`` next to the telemetry snapshot.  A scaling record carries
the decision's full evidence — the utilization inputs, the per-level loss
vectors, the post-update weight table, the argmax pair versus the
runner-up and their weight margin, and whether a fault or degradation
path overrode the outcome — which is what lets ``repro explain`` narrate
Fig. 5's "jump straight to the best level" behaviour tick by tick, and
``repro diff`` locate the first tick where two runs diverged.

Hot-path contract
-----------------

The controller's scaling tick is the hottest loop in the system, so the
``note_*`` methods do **no derivation**: they append a tuple and copy one
small ndarray.  Everything derived — flip detection, runner-up margins,
JSON encoding — happens in :meth:`AuditTrail.records` / :meth:`write`,
after the run.  CI budgets the audit-enabled tick at < 5 % over the bare
tick (``benchmarks/check_telemetry_overhead.py --audit-budget``).

Record schema (``audit.jsonl``, schema 1; see docs/observability.md):

- ``kind: "scaling"`` — a WMA decision: ``tick``, ``t_sim``, ``u_core``,
  ``u_mem``, ``source`` (``fresh``/``fallback``), ``core_level``,
  ``mem_level``, ``f_core``, ``f_mem``, ``runner_up`` (pair), ``margin``
  (relative weight gap, 0 = tie), ``flipped``, ``actuated``,
  ``degraded``, ``core_loss``, ``mem_loss``, ``weights``, ``power_w``;
- ``kind: "skip"`` — a tick with no usable sample: ``tick``, ``t_sim``,
  ``degraded`` (the previous decision stays in force);
- ``kind: "division"`` — a tier-1 boundary: ``index``, ``t_sim``,
  ``tc``, ``tg``, ``r_prev``, ``r_next``, ``moved``,
  ``held_by_safeguard``, ``frozen``.

Merged run directories (harness sweeps, ``compare``) add a ``job`` field
naming the worker each record came from.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import SerializationError
from repro.ioutil import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> telemetry)
    from repro.core.wma import ScalingDecision

#: File name of the trail inside a run/telemetry directory.
AUDIT_NAME = "audit.jsonl"

AUDIT_SCHEMA = 1

_SKIP = object()  # sentinel tag for skipped-tick entries


class AuditTrail:
    """Append-only decision log with deferred derivation.

    One trail observes one controller for one run.  ``note_scaling`` /
    ``note_skip`` / ``note_division`` are the hot-path writers; the
    derived, JSON-ready view is :meth:`records`.
    """

    __slots__ = ("_scaling", "_division")

    def __init__(self) -> None:
        self._scaling: list[tuple] = []
        self._division: list[tuple] = []

    def __len__(self) -> int:
        return len(self._scaling) + len(self._division)

    @property
    def n_scaling_ticks(self) -> int:
        """Scaling ticks observed (decisions plus skips)."""
        return len(self._scaling)

    @property
    def n_division_updates(self) -> int:
        return len(self._division)

    # -- hot-path writers (no derivation, no JSON) ---------------------

    def note_scaling(
        self,
        t: float,
        u_core: float,
        u_mem: float,
        decision: "ScalingDecision",
        source: str,
        actuated: bool,
        degraded: bool,
        weights: np.ndarray,
        power_w: float | None = None,
    ) -> None:
        """Record one WMA decision (weights are copied; the table mutates)."""
        self._scaling.append(
            (t, u_core, u_mem, decision, source, actuated, degraded,
             np.array(weights, dtype=float), power_w)
        )

    def note_skip(self, t: float, degraded: bool) -> None:
        """Record a tick skipped for want of a usable sample."""
        self._scaling.append((_SKIP, t, degraded))

    def note_division(
        self,
        t: float,
        tc: float,
        tg: float,
        r_prev: float,
        r_next: float,
        moved: bool,
        held_by_safeguard: bool,
        frozen: bool,
    ) -> None:
        """Record one tier-1 division boundary."""
        self._division.append(
            (t, tc, tg, r_prev, r_next, moved, held_by_safeguard, frozen)
        )

    # -- derived views -------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """The JSON-ready trail, in simulated-time order.

        Scaling ticks are numbered in sequence (skips included — a skip
        consumes a tick and holds the previous pair); division updates
        carry their own ``index``.  Flips and runner-up margins are
        derived here, not on the hot path.
        """
        from repro.core.wma import best_and_runner_up

        out: list[dict[str, Any]] = []
        last_pair: tuple[int, int] | None = None
        for tick, entry in enumerate(self._scaling):
            if entry[0] is _SKIP:
                _, t, degraded = entry
                out.append({
                    "kind": "skip", "tick": tick, "t_sim": float(t),
                    "degraded": bool(degraded),
                })
                continue
            (t, u_core, u_mem, decision, source, actuated, degraded,
             weights, power_w) = entry
            chosen = (int(decision.core_level), int(decision.mem_level))
            _, runner_up, margin = best_and_runner_up(weights)
            record: dict[str, Any] = {
                "kind": "scaling", "tick": tick, "t_sim": float(t),
                "u_core": float(u_core), "u_mem": float(u_mem),
                "source": source,
                "core_level": chosen[0], "mem_level": chosen[1],
                "f_core": float(decision.f_core),
                "f_mem": float(decision.f_mem),
                "runner_up": [int(runner_up[0]), int(runner_up[1])],
                "margin": float(margin),
                "flipped": last_pair is not None and chosen != last_pair,
                "actuated": bool(actuated),
                "degraded": bool(degraded),
                "core_loss": [float(v) for v in decision.core_loss],
                "mem_loss": [float(v) for v in decision.mem_loss],
                "weights": [[float(v) for v in row] for row in weights],
            }
            if power_w is not None:
                record["power_w"] = float(power_w)
            out.append(record)
            last_pair = chosen
        for index, entry in enumerate(self._division):
            t, tc, tg, r_prev, r_next, moved, held, frozen = entry
            out.append({
                "kind": "division", "index": index, "t_sim": float(t),
                "tc": float(tc), "tg": float(tg),
                "r_prev": float(r_prev), "r_next": float(r_next),
                "moved": bool(moved), "held_by_safeguard": bool(held),
                "frozen": bool(frozen),
            })
        # Interleave by simulated time; ties keep scaling-before-division
        # (sort is stable and scaling records were appended first).
        out.sort(key=lambda r: r["t_sim"])
        return out

    def write(self, directory: str | os.PathLike[str]) -> str:
        """Serialize the trail to ``<directory>/audit.jsonl`` atomically."""
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, AUDIT_NAME)
        atomic_write_text(path, render_audit_jsonl(self.records()))
        return path


def render_audit_jsonl(records: list[dict[str, Any]]) -> str:
    """Records -> one compact JSON object per line, in order."""
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in records
    )


def audit_path(directory: str | os.PathLike[str]) -> str:
    """Path of the trail file inside a run directory."""
    return os.path.join(os.fspath(directory), AUDIT_NAME)


def read_audit(path: str | os.PathLike[str], *,
               missing_ok: bool = False) -> list[dict[str, Any]]:
    """Load an ``audit.jsonl``; typed error on a missing/corrupt file.

    With ``missing_ok`` a missing file reads as an empty trail (runs
    recorded before the audit layer existed, or policies that never
    decide anything).
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        if missing_ok:
            return []
        raise SerializationError(
            f"{path}: no audit trail found (was the run started with "
            "--telemetry after the audit layer landed?)"
        )
    records = []
    try:
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SerializationError(
                        f"{path}:{lineno}: corrupt audit record ({exc})"
                    ) from exc
                if not isinstance(record, dict) or "kind" not in record:
                    raise SerializationError(
                        f"{path}:{lineno}: corrupt audit record "
                        "(not an object with a 'kind')"
                    )
                records.append(record)
    except OSError as exc:
        raise SerializationError(
            f"{path}: cannot read audit trail ({exc})"
        ) from exc
    return records


def scaling_records(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """The scaling-tick subsequence (decisions and skips), in tick order."""
    ticks = [r for r in records if r.get("kind") in ("scaling", "skip")]
    ticks.sort(key=lambda r: (str(r.get("job", "")), int(r.get("tick", 0))))
    return ticks


def decision_flips(records: list[dict[str, Any]]) -> list[int]:
    """Tick numbers where the chosen frequency pair changed."""
    return [int(r["tick"]) for r in records
            if r.get("kind") == "scaling" and r.get("flipped")]


# -- the `repro explain` renderer --------------------------------------


def _pair_text(record: dict[str, Any]) -> str:
    return (f"core L{record['core_level']} "
            f"({record['f_core'] / 1e6:.0f} MHz) · "
            f"mem L{record['mem_level']} "
            f"({record['f_mem'] / 1e6:.0f} MHz)")


def _tick_line(record: dict[str, Any], prev_pair: tuple[int, int] | None) -> str:
    if record["kind"] == "skip":
        note = " [DEGRADED]" if record.get("degraded") else ""
        return (f"tick {record['tick']:>4}  t={record['t_sim']:>8.1f}s  "
                f"SKIPPED — no usable sample; previous pair held{note}")
    notes = []
    if record.get("flipped") and prev_pair is not None:
        notes.append(f"FLIP from (L{prev_pair[0]}, L{prev_pair[1]})")
    if record.get("source") == "fallback":
        notes.append("stale sample")
    if not record.get("actuated", True):
        notes.append("actuation FAILED")
    if record.get("degraded"):
        notes.append("DEGRADED: watchdog holds peak frequencies")
    note = ("  [" + "; ".join(notes) + "]") if notes else ""
    return (f"tick {record['tick']:>4}  t={record['t_sim']:>8.1f}s  "
            f"u={100 * record['u_core']:3.0f}%/{100 * record['u_mem']:3.0f}%"
            f"  -> {_pair_text(record)}  margin {100 * record['margin']:.1f}%"
            f"{note}")


def _explain_tick_detail(record: dict[str, Any]) -> list[str]:
    """The full "why" for one scaling tick."""
    lines = [_tick_line(record, None), ""]
    if record["kind"] == "skip":
        lines.append("no decision this tick: the monitor read failed and no "
                     "sample was inside the staleness window.")
        return lines
    lines.append(
        f"inputs   : u_core={record['u_core']:.4f}  "
        f"u_mem={record['u_mem']:.4f}  (source: {record['source']})"
    )
    lines.append(
        "core loss: " + "  ".join(
            f"L{i}={v:.4f}" for i, v in enumerate(record["core_loss"]))
    )
    lines.append(
        "mem loss : " + "  ".join(
            f"L{j}={v:.4f}" for j, v in enumerate(record["mem_loss"]))
    )
    weights = record["weights"]
    lines.append("weights  (rows = core levels, cols = memory levels):")
    for i, row in enumerate(weights):
        lines.append("  L%d  %s" % (i, "  ".join(f"{v:.4g}" for v in row)))
    ru = record["runner_up"]
    lines.append(
        f"argmax   : (L{record['core_level']}, L{record['mem_level']}) — "
        f"runner-up (L{ru[0]}, L{ru[1]}), margin "
        f"{100 * record['margin']:.2f}%"
        + ("  [decision FLIPPED here]" if record.get("flipped") else "")
    )
    if record.get("degraded"):
        lines.append("override : watchdog DEGRADED state — peak frequencies "
                     "enforced regardless of the WMA choice")
    elif not record.get("actuated", True):
        lines.append("override : frequency write failed after retries — the "
                     "previous hardware state remains in force")
    if "power_w" in record:
        lines.append(f"power    : {record['power_w']:.1f} W wall")
    return lines


def format_explanation(directory: str | os.PathLike[str],
                       tick: int | None = None) -> str:
    """Render the per-tick "why" narrative for one run directory.

    Steady stretches (no flip, no fault path) are elided to one line;
    every flip, skip, fallback, failed actuation and degraded tick is
    always shown.  ``tick`` selects the full detail view for one tick.
    """
    directory = os.fspath(directory)
    records = read_audit(audit_path(directory))
    ticks = scaling_records(records)
    divisions = [r for r in records if r.get("kind") == "division"]
    flips = decision_flips(records)

    if tick is not None:
        matches = [r for r in ticks if r.get("tick") == tick]
        if not matches:
            raise SerializationError(
                f"{directory}: no audit record for tick {tick} "
                f"({len(ticks)} ticks recorded)"
            )
        lines = [f"audit: {directory}", ""]
        for record in matches:
            if record.get("job"):
                lines.append(f"[job {record['job']}]")
            lines.extend(_explain_tick_detail(record))
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    n_skips = sum(1 for r in ticks if r["kind"] == "skip")
    lines = [
        f"audit: {directory}",
        f"  {len(ticks)} scaling ticks ({len(flips)} decision flips, "
        f"{n_skips} skipped), {len(divisions)} division updates",
        "",
    ]

    prev_pair: tuple[int, int] | None = None
    steady: list[dict[str, Any]] = []

    def flush_steady() -> None:
        if not steady:
            return
        if len(steady) == 1:
            lines.append(_tick_line(steady[0], prev_pair))
        else:
            first, last = steady[0], steady[-1]
            lines.append(
                f"tick {first['tick']:>4}-{last['tick']:<4} "
                f"({len(steady)} ticks): steady at "
                f"(L{first['core_level']}, L{first['mem_level']})"
            )
        steady.clear()

    for record in ticks:
        eventful = (
            record["kind"] == "skip"
            or record.get("flipped")
            or record.get("source") == "fallback"
            or not record.get("actuated", True)
            or record.get("degraded")
        )
        if eventful:
            flush_steady()
            lines.append(_tick_line(record, prev_pair))
        elif prev_pair is None:
            flush_steady()
            lines.append(_tick_line(record, prev_pair))
        else:
            steady.append(record)
        if record["kind"] == "scaling":
            prev_pair = (record["core_level"], record["mem_level"])
    flush_steady()

    if divisions:
        lines += ["", "division updates:"]
        for record in divisions:
            if record.get("frozen"):
                note = "FROZEN (degraded)"
            elif record.get("held_by_safeguard"):
                note = "held by oscillation safeguard"
            elif record.get("moved"):
                note = "moved"
            else:
                note = "steady"
            lines.append(
                f"  t={record['t_sim']:>8.1f}s  r {record['r_prev']:.2f} -> "
                f"{record['r_next']:.2f}  (tc={record['tc']:.2f}s, "
                f"tg={record['tg']:.2f}s; {note})"
            )

    if not ticks and not divisions:
        lines.append("(empty trail — the policy made no live decisions)")
    return "\n".join(lines).rstrip() + "\n"
