"""The telemetry facade and its zero-overhead disabled backend.

Instrumented code talks to one object — a :class:`Telemetry` — and never
branches on whether observability is on.  When it is off, the module
singleton :data:`NOOP` stands in: every method is a no-op returning a
shared singleton, so the disabled hot path allocates nothing and costs
one attribute lookup plus one call per probe.  The performance budget
(CI asserts < 3 % controller-tick overhead) leans on that property.

A :class:`Telemetry` composes three pieces:

- a :class:`~repro.telemetry.registry.MetricsRegistry` (counters,
  gauges, histograms with streaming percentiles);
- a :class:`~repro.telemetry.spans.SpanTracer` (nested spans with
  sim-clock and wall-clock timestamps);
- an ordered **event buffer** — every span and every explicit
  :meth:`event` call, exported as the JSONL stream.

``base_labels`` (workload/policy/device domain) are merged into every
instrument fetched and every event emitted after they are set, which is
how one registry can hold several runs' metrics without collisions.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import Span, SpanTracer
from repro.telemetry.tracecontext import TraceContext, default_context


class Telemetry:
    """Live observability: registry + tracer + event stream."""

    enabled = True

    def __init__(self, base_labels: dict[str, Any] | None = None,
                 trace: TraceContext | None = None):
        self.registry = MetricsRegistry()
        self.events: list[dict[str, Any]] = []
        self.base_labels: dict[str, Any] = dict(base_labels or {})
        self.tracer = SpanTracer(self.registry, self.events, self.base_labels,
                                 trace=trace)
        self._clock_fn: Callable[[], float] | None = None

    # -- wiring --------------------------------------------------------

    def bind_clock(self, clock: Any) -> None:
        """Attach the run's sim clock (anything with a ``.now`` property)."""
        self._clock_fn = lambda: clock.now
        self.tracer.bind_clock(self._clock_fn)

    def set_base_labels(self, **labels: Any) -> None:
        """Merge run-domain labels into everything recorded from now on."""
        self.base_labels.update(labels)
        self.tracer.base_labels = self.base_labels

    @property
    def now_sim(self) -> float:
        """Current simulated time (-1.0 before a clock is bound)."""
        return self._clock_fn() if self._clock_fn is not None else -1.0

    # -- tracing -------------------------------------------------------

    @property
    def trace(self) -> TraceContext:
        """This telemetry's root trace context."""
        return self.tracer.trace

    def current_context(self) -> TraceContext:
        """Context of the innermost open span, else the root."""
        return self.tracer.current_context()

    def child_context(self, *parts: Any) -> TraceContext:
        """Derive a child of the current context (for process hand-off)."""
        return self.tracer.child_context(*parts)

    def record_span(self, context: TraceContext, name: str, *,
                    wall_s: float, **kwargs: Any) -> None:
        """Record a finished span at an explicit trace position.

        See :meth:`repro.telemetry.spans.SpanTracer.record_at`.
        """
        self.tracer.record_at(context, name, wall_s=wall_s, **kwargs)

    # -- instruments ---------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.registry.counter(name, **{**self.base_labels, **labels})

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.registry.gauge(name, **{**self.base_labels, **labels})

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.registry.histogram(name, **{**self.base_labels, **labels})

    def span(self, name: str, **labels: Any) -> Span:
        return self.tracer.span(name, **labels)

    def event(self, name: str, **fields: Any) -> None:
        """Append one structured event to the JSONL stream."""
        record: dict[str, Any] = {"type": "event", "name": name,
                                  "t_sim": self.now_sim}
        if self.base_labels:
            record["labels"] = {str(k): str(v)
                                for k, v in self.base_labels.items()}
        record.update(fields)
        self.events.append(record)


class _NullSpan:
    """Reentrant no-op context manager shared by every disabled span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullCounter:
    __slots__ = ()
    name = ""
    labels = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def reset(self) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    labels = ()
    value = 0.0
    updated_at = float("-inf")

    def set(self, value: float, t: float | None = None) -> None:
        pass

    def reset(self) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    labels = ()
    count = 0
    sum = 0.0
    min = float("inf")
    max = float("-inf")
    mean = 0.0
    p50 = p95 = p99 = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def reset(self) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullTelemetry:
    """Disabled backend: same surface as :class:`Telemetry`, zero work.

    Singleton by construction (:data:`NOOP`); instrumented modules may
    hold it forever.  Every accessor returns a shared immutable null
    instrument, so the hot path — ``span()`` enter/exit, ``inc()``,
    ``observe()`` — allocates nothing and touches no shared state.
    """

    enabled = False
    registry = None
    events: list[dict[str, Any]] = []
    base_labels: dict[str, Any] = {}
    now_sim = -1.0

    def bind_clock(self, clock: Any) -> None:
        pass

    @property
    def trace(self) -> TraceContext:
        return default_context()

    def current_context(self) -> TraceContext:
        return default_context()

    def child_context(self, *parts: Any) -> TraceContext:
        return default_context().child(*parts)

    def record_span(self, context: TraceContext, name: str, *,
                    wall_s: float, **kwargs: Any) -> None:
        pass

    def set_base_labels(self, **labels: Any) -> None:
        pass

    def counter(self, name: str, **labels: Any) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: Any) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def span(self, name: str, **labels: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        pass


#: The shared disabled backend.  ``telemetry or NOOP`` is the canonical
#: way instrumented code normalizes an optional telemetry argument.
NOOP = NullTelemetry()
