"""The run-diff engine: compare two run directories, typed delta out.

Energy conclusions are fragile without systematic run-to-run comparison
(the DVFS measurement literature's recurring warning), so the repo gives
the comparison a first-class type.  :func:`diff_runs` reads two telemetry
run directories — the ``snapshot.json`` metrics plus the ``audit.jsonl``
decision trail — and folds the comparison into one :class:`RunDelta`:

- **outcome deltas** — total energy and time, absolute and relative;
- **behaviour deltas** — tick counts, decision-flip counts, and the
  *first-divergence tick* (the first scaling tick whose chosen frequency
  pair differs between the runs);
- **health drift** — per-counter ``ctrl_*`` differences (fault, retry,
  fallback, skip, degradation counts);
- **metric diffs** — every instrument whose state differs after
  :func:`~repro.telemetry.merge.strip_wall_clock` removes the
  nondeterministic wall-time fields.

Two identically-seeded runs compare **exactly equal** (the simulator is
deterministic), which is what makes ``repro diff A B
--fail-on-divergence`` a CI determinism gate, and ``repro diff GOLDEN RUN
--fail-on energy=2%`` a perf-regression gate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ConfigError
from repro.telemetry.audit import (
    audit_path,
    decision_flips,
    read_audit,
    scaling_records,
)
from repro.telemetry.exporters import SNAPSHOT_NAME, read_snapshot
from repro.telemetry.merge import strip_wall_clock

#: ``--fail-on`` keys measured as relative (percentage) deltas.
RELATIVE_KEYS = ("energy", "time")
#: ``--fail-on`` keys measured as absolute count deltas.
COUNT_KEYS = ("flips",)


@dataclass(frozen=True)
class RunDelta:
    """Typed outcome of comparing run ``a`` against run ``b``."""

    dir_a: str
    dir_b: str
    energy_a: float | None
    energy_b: float | None
    time_a: float | None
    time_b: float | None
    ticks_a: int
    ticks_b: int
    flips_a: int
    flips_b: int
    first_divergence_tick: int | None
    metric_diffs: tuple[str, ...]
    health_drift: dict[str, float] = field(default_factory=dict)

    @staticmethod
    def _rel(a: float | None, b: float | None) -> float | None:
        if a is None or b is None or a == 0.0:
            return None
        return (b - a) / a

    @property
    def energy_rel(self) -> float | None:
        """Relative energy change of ``b`` versus ``a`` (None if unknown)."""
        return self._rel(self.energy_a, self.energy_b)

    @property
    def time_rel(self) -> float | None:
        return self._rel(self.time_a, self.time_b)

    @property
    def flip_delta(self) -> int:
        return self.flips_b - self.flips_a

    @property
    def divergent(self) -> bool:
        """True if *anything* deterministic differs between the runs."""
        return bool(
            self.metric_diffs
            or self.first_divergence_tick is not None
            or self.ticks_a != self.ticks_b
            or self.health_drift
        )


def _sum_gauge(snapshot: dict[str, Any], name: str) -> float | None:
    values = [float(g["value"]) for g in snapshot.get("gauges", ())
              if g["name"] == name]
    return sum(values) if values else None


def _instrument_states(stripped: dict[str, Any]) -> dict[tuple, Any]:
    """Flatten a stripped snapshot into comparable (identity -> state)."""
    states: dict[tuple, Any] = {}
    for rec in stripped["counters"]:
        key = ("counter", rec["name"], tuple(sorted(rec["labels"].items())))
        states[key] = rec["value"]
    for rec in stripped["gauges"]:
        key = ("gauge", rec["name"], tuple(sorted(rec["labels"].items())))
        states[key] = (rec["value"], rec.get("updated_at"))
    for rec in stripped["histograms"]:
        key = ("histogram", rec["name"], tuple(sorted(rec["labels"].items())))
        states[key] = (rec["count"], rec["sum"], rec.get("min"),
                       rec.get("max"), tuple(rec["samples"]))
    return states


def _metric_diffs(snap_a: dict[str, Any],
                  snap_b: dict[str, Any]) -> tuple[str, ...]:
    a = _instrument_states(strip_wall_clock(snap_a))
    b = _instrument_states(strip_wall_clock(snap_b))
    names = {key[1] for key in set(a) ^ set(b)}
    names.update(key[1] for key in set(a) & set(b) if a[key] != b[key])
    return tuple(sorted(names))


def _counter_totals(snapshot: dict[str, Any], prefix: str) -> dict[str, float]:
    totals: dict[str, float] = {}
    for rec in snapshot.get("counters", ()):
        if rec["name"].startswith(prefix):
            totals[rec["name"]] = totals.get(rec["name"], 0.0) + float(rec["value"])
    return totals


def _decision_key(record: dict[str, Any]) -> tuple:
    """What "the same decision" means when aligning two trails."""
    return (
        str(record.get("job", "")),
        record["kind"],
        record.get("core_level"),
        record.get("mem_level"),
    )


def _first_divergence(ticks_a: list[dict[str, Any]],
                      ticks_b: list[dict[str, Any]]) -> int | None:
    for index, (ra, rb) in enumerate(zip(ticks_a, ticks_b)):
        if _decision_key(ra) != _decision_key(rb):
            return index
    if len(ticks_a) != len(ticks_b):
        return min(len(ticks_a), len(ticks_b))
    return None


def diff_runs(dir_a: str | os.PathLike[str],
              dir_b: str | os.PathLike[str]) -> RunDelta:
    """Compare two run directories into a :class:`RunDelta`.

    Raises :class:`~repro.errors.SerializationError` when either
    directory has no readable ``snapshot.json`` (a missing or corrupt
    run); a missing ``audit.jsonl`` reads as an empty trail so pre-audit
    runs stay comparable on metrics alone.
    """
    dir_a, dir_b = os.fspath(dir_a), os.fspath(dir_b)
    snap_a = read_snapshot(os.path.join(dir_a, SNAPSHOT_NAME))
    snap_b = read_snapshot(os.path.join(dir_b, SNAPSHOT_NAME))
    audit_a = read_audit(audit_path(dir_a), missing_ok=True)
    audit_b = read_audit(audit_path(dir_b), missing_ok=True)
    ticks_a = scaling_records(audit_a)
    ticks_b = scaling_records(audit_b)

    totals_a = _counter_totals(snap_a, "ctrl_")
    totals_b = _counter_totals(snap_b, "ctrl_")
    drift = {
        name: totals_b.get(name, 0.0) - totals_a.get(name, 0.0)
        for name in sorted(set(totals_a) | set(totals_b))
        if totals_b.get(name, 0.0) != totals_a.get(name, 0.0)
    }

    return RunDelta(
        dir_a=dir_a,
        dir_b=dir_b,
        energy_a=_sum_gauge(snap_a, "run_total_energy_j"),
        energy_b=_sum_gauge(snap_b, "run_total_energy_j"),
        time_a=_sum_gauge(snap_a, "run_time_s"),
        time_b=_sum_gauge(snap_b, "run_time_s"),
        ticks_a=len(ticks_a),
        ticks_b=len(ticks_b),
        flips_a=len(decision_flips(audit_a)),
        flips_b=len(decision_flips(audit_b)),
        first_divergence_tick=_first_divergence(ticks_a, ticks_b),
        metric_diffs=_metric_diffs(snap_a, snap_b),
        health_drift=drift,
    )


# -- thresholds (`--fail-on energy=2%`) --------------------------------


def parse_fail_on(specs: Iterable[str] | None) -> dict[str, float]:
    """Parse ``key=value[%]`` threshold specs (comma- or flag-separated).

    Keys: ``energy`` and ``time`` (relative, percent or fraction) and
    ``flips`` (absolute count delta).
    """
    thresholds: dict[str, float] = {}
    for spec in specs or ():
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip().lower()
            if not sep or key not in RELATIVE_KEYS + COUNT_KEYS:
                raise ConfigError(
                    f"bad --fail-on spec {part!r}; expected "
                    f"key=value with key in "
                    f"{sorted(RELATIVE_KEYS + COUNT_KEYS)}"
                )
            raw = raw.strip()
            try:
                if key in RELATIVE_KEYS:
                    value = (float(raw[:-1]) / 100.0 if raw.endswith("%")
                             else float(raw))
                else:
                    value = float(raw)
            except ValueError:
                raise ConfigError(
                    f"bad --fail-on value {raw!r} for {key!r}"
                ) from None
            if value < 0.0:
                raise ConfigError(f"--fail-on {key} threshold must be >= 0")
            thresholds[key] = value
    return thresholds


def check_thresholds(delta: RunDelta,
                     thresholds: dict[str, float]) -> list[str]:
    """Threshold violations for ``delta`` (empty list = gate passes)."""
    violations: list[str] = []
    for key, limit in sorted(thresholds.items()):
        if key in RELATIVE_KEYS:
            rel = delta.energy_rel if key == "energy" else delta.time_rel
            if rel is None:
                violations.append(
                    f"{key}: not comparable (gauge missing in one run)"
                )
            elif abs(rel) > limit:
                violations.append(
                    f"{key}: {rel:+.2%} exceeds the ±{limit:.2%} gate"
                )
        elif key == "flips":
            if abs(delta.flip_delta) > limit:
                violations.append(
                    f"flips: {delta.flip_delta:+d} exceeds the "
                    f"±{limit:g} gate"
                )
    return violations


def format_delta(delta: RunDelta) -> str:
    """Human-readable rendering of a :class:`RunDelta`."""
    def side(value: float | None, scale: float, unit: str) -> str:
        return "n/a" if value is None else f"{value / scale:.2f} {unit}"

    def rel(value: float | None) -> str:
        return "n/a" if value is None else f"{value:+.2%}"

    lines = [
        "run diff",
        f"  A: {delta.dir_a}",
        f"  B: {delta.dir_b}",
        "",
        f"  energy : {side(delta.energy_a, 1e3, 'kJ')} -> "
        f"{side(delta.energy_b, 1e3, 'kJ')}  ({rel(delta.energy_rel)})",
        f"  time   : {side(delta.time_a, 1.0, 's')} -> "
        f"{side(delta.time_b, 1.0, 's')}  ({rel(delta.time_rel)})",
        f"  ticks  : {delta.ticks_a} vs {delta.ticks_b}; decision flips "
        f"{delta.flips_a} vs {delta.flips_b} ({delta.flip_delta:+d})",
    ]
    if delta.first_divergence_tick is not None:
        lines.append(
            f"  control trajectories diverge at tick "
            f"{delta.first_divergence_tick} "
            f"(inspect with: greengpu explain <dir> --tick "
            f"{delta.first_divergence_tick})"
        )
    elif delta.ticks_a or delta.ticks_b:
        lines.append("  control trajectories identical (no divergence)")
    if delta.health_drift:
        drift = ", ".join(f"{name} {value:+g}"
                          for name, value in delta.health_drift.items())
        lines.append(f"  health drift: {drift}")
    if delta.metric_diffs:
        shown = ", ".join(delta.metric_diffs[:6])
        more = len(delta.metric_diffs) - 6
        suffix = f" (+{more} more)" if more > 0 else ""
        lines.append(
            f"  {len(delta.metric_diffs)} instruments differ: {shown}{suffix}"
        )
    else:
        lines.append("  all sim-time metrics identical")
    lines.append("")
    lines.append("  verdict: " + ("DIVERGENT" if delta.divergent
                                  else "runs identical (modulo wall clock)"))
    return "\n".join(lines)
