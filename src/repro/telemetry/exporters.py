"""Pluggable telemetry exporters: JSONL, Prometheus, CSV, markdown.

One run directory holds every rendering of the same state::

    <dir>/
      snapshot.json    exact registry state (the merge/inspect format)
      telemetry.jsonl  ordered event stream (spans + explicit events)
      metrics.prom     Prometheus text exposition (counters, gauges,
                       histogram summaries with p50/p95/p99 quantiles)
      summary.csv      one row per instrument, machine-diffable
      summary.md       the same summary as human-readable tables
      trace.json       Chrome-trace / Perfetto JSON of the span events

Exports are deterministic: instruments iterate in sorted order, floats
render via ``repr``, and all files are written atomically.  The JSONL
stream preserves insertion order — it is the run's timeline, not a
table.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.errors import SerializationError
from repro.ioutil import atomic_write_text
from repro.telemetry.registry import (
    SUMMARY_QUANTILES,
    Histogram,
    MetricsRegistry,
)

SNAPSHOT_NAME = "snapshot.json"
EVENTS_NAME = "telemetry.jsonl"
PROMETHEUS_NAME = "metrics.prom"
CSV_NAME = "summary.csv"
MARKDOWN_NAME = "summary.md"
CHROME_TRACE_NAME = "trace.json"


def _labels_text(labels: tuple[tuple[str, str], ...],
                 extra: dict[str, str] | None = None) -> str:
    """Prometheus-style ``{k="v",...}`` rendering (empty string if none)."""
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    escaped = (
        (k, v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"))
        for k, v in pairs
    )
    return "{" + ",".join(f'{k}="{v}"' for k, v in escaped) + "}"


def _num(value: float) -> str:
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Registry -> Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in registry.counters():
        header(counter.name, "counter")
        lines.append(
            f"{counter.name}{_labels_text(counter.labels)} {_num(counter.value)}"
        )
    for gauge in registry.gauges():
        header(gauge.name, "gauge")
        lines.append(
            f"{gauge.name}{_labels_text(gauge.labels)} {_num(gauge.value)}"
        )
    for hist in registry.histograms():
        header(hist.name, "summary")
        for q in SUMMARY_QUANTILES:
            labels = _labels_text(hist.labels, {"quantile": repr(q)})
            lines.append(f"{hist.name}{labels} {_num(hist.percentile(q))}")
        lines.append(
            f"{hist.name}_sum{_labels_text(hist.labels)} {_num(hist.sum)}"
        )
        lines.append(
            f"{hist.name}_count{_labels_text(hist.labels)} {hist.count}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def _json_default(obj: Any) -> Any:
    # Event payloads routinely carry numpy scalars (ladder indices from
    # argmin, weights from ndarray.max()); unwrap them instead of making
    # every call site defensive.
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def render_jsonl(events: list[dict[str, Any]]) -> str:
    """Event buffer -> one compact JSON object per line, in order."""
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":"),
                   default=_json_default) + "\n"
        for event in events
    )


def _span_ts(event: dict[str, Any], base_unix: float | None) -> float:
    """Span start time in seconds on the trace's shared axis.

    Prefers wall-clock epoch (``t_unix0``, relative to the earliest span
    in the stream); falls back to sim time for streams recorded before
    the field existed; last resort is 0 so the event still renders.
    """
    t_unix0 = event.get("t_unix0")
    if t_unix0 is not None and base_unix is not None:
        return float(t_unix0) - base_unix
    sim_t0 = float(event.get("sim_t0", -1.0))
    return sim_t0 if sim_t0 >= 0.0 else 0.0


def render_chrome_trace(events: list[dict[str, Any]]) -> str:
    """Span events -> Chrome-trace (``chrome://tracing`` / Perfetto) JSON.

    Emits one complete (``"ph": "X"``) event per span, grouped into one
    trace-viewer *process* per merged worker (the ``job`` annotation
    added by :func:`repro.telemetry.merge.merge_directory`; un-annotated
    spans land in the run-level process).  Trace ids, span ids, and
    labels ride in ``args`` so Perfetto's flow queries can follow the
    stitched tree.  Timestamps are microseconds from the earliest span.
    """
    spans = [e for e in events if e.get("type") == "span"]
    unix_starts = [float(e["t_unix0"]) for e in spans
                   if e.get("t_unix0") is not None]
    base_unix = min(unix_starts) if unix_starts else None

    pids: dict[str, int] = {}
    trace_events: list[dict[str, Any]] = []
    for event in spans:
        process = str(event.get("job", "run"))
        if process not in pids:
            pids[process] = len(pids) + 1
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pids[process],
                "tid": 0, "args": {"name": process},
            })
        args: dict[str, Any] = dict(event.get("labels") or {})
        for key in ("trace_id", "span_id", "parent_id"):
            if event.get(key) is not None:
                args[key] = event[key]
        args["ok"] = bool(event.get("ok", True))
        if float(event.get("sim_t0", -1.0)) >= 0.0:
            args["sim_t0"] = event["sim_t0"]
            args["sim_t1"] = event["sim_t1"]
        trace_events.append({
            "name": str(event.get("name", "span")),
            "cat": "greengpu",
            "ph": "X",
            "ts": round(_span_ts(event, base_unix) * 1e6, 3),
            "dur": max(round(float(event.get("wall_s", 0.0)) * 1e6, 3), 0.001),
            "pid": pids[process],
            "tid": int(event.get("depth", 0)) + 1,
            "args": args,
        })
    return json.dumps(
        {"traceEvents": trace_events, "displayTimeUnit": "ms"},
        sort_keys=True, separators=(",", ":"), default=_json_default,
    ) + "\n"


def _labels_csv(labels: tuple[tuple[str, str], ...]) -> str:
    return ";".join(f"{k}={v}" for k, v in labels)


def _hist_row(hist: Histogram) -> list[str]:
    return [
        str(hist.count), _num(hist.mean), _num(hist.p50), _num(hist.p95),
        _num(hist.p99), _num(hist.max if hist.count else 0.0),
    ]


def render_csv(registry: MetricsRegistry) -> str:
    """Registry -> flat CSV summary (one row per instrument)."""
    rows = ["kind,name,labels,value,count,mean,p50,p95,p99,max"]
    for counter in registry.counters():
        rows.append(
            f"counter,{counter.name},{_labels_csv(counter.labels)},"
            f"{_num(counter.value)},,,,,,"
        )
    for gauge in registry.gauges():
        rows.append(
            f"gauge,{gauge.name},{_labels_csv(gauge.labels)},"
            f"{_num(gauge.value)},,,,,,"
        )
    for hist in registry.histograms():
        stats = _hist_row(hist)
        rows.append(
            f"histogram,{hist.name},{_labels_csv(hist.labels)},,"
            + ",".join(stats)
        )
    return "\n".join(rows) + "\n"


def render_markdown(registry: MetricsRegistry) -> str:
    """Registry -> a human-readable markdown summary."""
    out = ["# Telemetry summary", ""]
    counters = list(registry.counters())
    if counters:
        out += ["## Counters", "", "| name | labels | value |", "|---|---|---|"]
        out += [
            f"| {c.name} | {_labels_csv(c.labels)} | {_num(c.value)} |"
            for c in counters
        ]
        out.append("")
    gauges = list(registry.gauges())
    if gauges:
        out += ["## Gauges", "", "| name | labels | value |", "|---|---|---|"]
        out += [
            f"| {g.name} | {_labels_csv(g.labels)} | {_num(g.value)} |"
            for g in gauges
        ]
        out.append("")
    hists = list(registry.histograms())
    if hists:
        out += [
            "## Histograms",
            "",
            "| name | labels | count | mean | p50 | p95 | p99 | max |",
            "|---|---|---|---|---|---|---|---|",
        ]
        out += [
            f"| {h.name} | {_labels_csv(h.labels)} | "
            + " | ".join(_hist_row(h)) + " |"
            for h in hists
        ]
        out.append("")
    return "\n".join(out)


def write_exports(directory: str | os.PathLike[str],
                  registry: MetricsRegistry,
                  events: list[dict[str, Any]]) -> None:
    """Write every export format into ``directory`` (created if needed)."""
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    snapshot = registry.snapshot()
    snapshot["n_events"] = len(events)
    atomic_write_text(os.path.join(directory, SNAPSHOT_NAME),
                      json.dumps(snapshot, sort_keys=True, indent=1,
                                 default=_json_default) + "\n")
    atomic_write_text(os.path.join(directory, EVENTS_NAME),
                      render_jsonl(events))
    atomic_write_text(os.path.join(directory, PROMETHEUS_NAME),
                      render_prometheus(registry))
    atomic_write_text(os.path.join(directory, CSV_NAME), render_csv(registry))
    atomic_write_text(os.path.join(directory, MARKDOWN_NAME),
                      render_markdown(registry))
    atomic_write_text(os.path.join(directory, CHROME_TRACE_NAME),
                      render_chrome_trace(events))


def export_telemetry(telemetry: Any, directory: str | os.PathLike[str]) -> None:
    """Write all exports for one :class:`~repro.telemetry.core.Telemetry`.

    A disabled (``NOOP``) backend exports nothing.
    """
    if not getattr(telemetry, "enabled", False):
        return
    write_exports(directory, telemetry.registry, telemetry.events)


def read_snapshot(path: str) -> dict[str, Any]:
    """Load a ``snapshot.json``; typed error on a missing/corrupt file."""
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise SerializationError(
            f"{path}: cannot read telemetry snapshot ({exc})"
        ) from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"{path}: corrupt or truncated telemetry snapshot ({exc})"
        ) from exc


def read_events(path: str) -> list[dict[str, Any]]:
    """Load a ``telemetry.jsonl`` event stream (missing file -> [])."""
    if not os.path.exists(path):
        return []
    events = []
    try:
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise SerializationError(
                        f"{path}:{lineno}: corrupt telemetry event ({exc})"
                    ) from exc
    except OSError as exc:
        raise SerializationError(
            f"{path}: cannot read telemetry events ({exc})"
        ) from exc
    return events
