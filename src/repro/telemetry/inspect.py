"""The ``repro metrics <dir>`` inspector: render exported telemetry.

Reads the run-level ``snapshot.json`` (and, when present, the
``telemetry.jsonl`` event stream) out of a telemetry directory and
formats the observability story of the run:

- span statistics — count, p50/p95/p99 of both sim and wall durations;
- fault / retry / degradation counters (the ``ControlHealth`` view);
- energy and power gauges;
- the WMA trajectory — every frequency-pair change the scaler made,
  reconstructed from ``wma_update`` events.

Everything is plain text via the shared table formatter, in sorted
order, so the output is diffable across runs.
"""

from __future__ import annotations

import os

from repro.errors import SerializationError
from repro.telemetry.exporters import (
    EVENTS_NAME,
    SNAPSHOT_NAME,
    read_events,
    read_snapshot,
)
from repro.telemetry.registry import MetricsRegistry

#: How many WMA transitions to print before eliding the middle.
_TRAJECTORY_LIMIT = 24


def _labels_text(labels: tuple[tuple[str, str], ...]) -> str:
    return ";".join(f"{k}={v}" for k, v in labels if k != "span") or "-"


def _wma_trajectory_lines(events: list[dict]) -> list[str]:
    # Imported here (not at module scope): repro.analysis pulls in the
    # runtime package, which imports repro.telemetry back.
    from repro.analysis.tables import format_table

    transitions: list[tuple[float, float, float, float]] = []
    last_pair: tuple[float, float] | None = None
    for event in events:
        if event.get("type") != "event" or event.get("name") != "wma_update":
            continue
        pair = (float(event["f_core"]), float(event["f_mem"]))
        if pair != last_pair:
            transitions.append((float(event.get("t_sim", -1.0)), pair[0],
                                pair[1], float(event.get("w_max", 0.0))))
            last_pair = pair
    if not transitions:
        return []
    rows = [
        (f"{t:.1f}", f"{f_core / 1e6:.1f}", f"{f_mem / 1e6:.1f}",
         f"{w_max:.3f}")
        for t, f_core, f_mem, w_max in transitions
    ]
    if len(rows) > _TRAJECTORY_LIMIT:
        head = rows[: _TRAJECTORY_LIMIT // 2]
        tail = rows[-_TRAJECTORY_LIMIT // 2:]
        rows = head + [("...", "...", "...", "...")] + tail
    return [
        format_table(
            ["t_sim (s)", "core (MHz)", "mem (MHz)", "w_max"], rows,
            title=f"WMA frequency trajectory ({len(transitions)} transitions)",
        ),
        "",
    ]


def format_metrics_report(directory: str | os.PathLike[str]) -> str:
    """Render the full metrics report for one telemetry directory."""
    from repro.analysis.tables import format_table

    directory = os.fspath(directory)
    snapshot_path = os.path.join(directory, SNAPSHOT_NAME)
    if not os.path.exists(snapshot_path):
        raise SerializationError(
            f"{snapshot_path}: no telemetry snapshot found (was the run "
            "started with --telemetry, or the directory merged?)"
        )
    registry = MetricsRegistry.from_snapshot(read_snapshot(snapshot_path))
    events = read_events(os.path.join(directory, EVENTS_NAME))

    sections: list[str] = [f"telemetry: {directory}", ""]

    span_rows = [
        (hist.labels and dict(hist.labels).get("span") or hist.name,
         _labels_text(hist.labels), str(hist.count),
         f"{hist.p50:.4g}", f"{hist.p95:.4g}", f"{hist.p99:.4g}",
         f"{(hist.max if hist.count else 0.0):.4g}")
        for hist in registry.histograms()
        if hist.name == "span_sim_s"
    ]
    if span_rows:
        sections += [
            format_table(
                ["span", "labels", "count", "p50 (s)", "p95 (s)", "p99 (s)",
                 "max (s)"],
                span_rows, title="spans (simulated-time durations)",
            ),
            "",
        ]

    other_hist_rows = [
        (hist.name, _labels_text(hist.labels), str(hist.count),
         f"{hist.mean:.4g}", f"{hist.p50:.4g}", f"{hist.p95:.4g}",
         f"{hist.p99:.4g}")
        for hist in registry.histograms()
        if hist.name not in ("span_sim_s", "span_wall_s")
    ]
    if other_hist_rows:
        sections += [
            format_table(
                ["histogram", "labels", "count", "mean", "p50", "p95", "p99"],
                other_hist_rows, title="distributions",
            ),
            "",
        ]

    sections += _wma_trajectory_lines(events)

    counter_rows = [
        (counter.name, _labels_text(counter.labels), f"{counter.value:g}")
        for counter in registry.counters()
        if counter.name not in ("span_total", "span_errors_total")
    ]
    if counter_rows:
        sections += [
            format_table(["counter", "labels", "value"], counter_rows,
                         title="counters"),
            "",
        ]

    gauge_rows = [
        (gauge.name, _labels_text(gauge.labels), f"{gauge.value:.6g}")
        for gauge in registry.gauges()
    ]
    if gauge_rows:
        sections += [
            format_table(["gauge", "labels", "value"], gauge_rows,
                         title="gauges"),
            "",
        ]

    if len(registry) == 0:
        sections.append("(no metrics recorded)")

    return "\n".join(sections).rstrip() + "\n"
