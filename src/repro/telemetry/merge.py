"""Cross-process aggregation: per-worker telemetry -> one run-level view.

Harness workers are spawn-isolated processes; each writes its own
telemetry under ``<dir>/workers/<job>/`` (a ``snapshot.json`` plus an
``events.jsonl``).  The supervisor — or anyone holding the run
directory — merges those into the run-level exports at ``<dir>/``.

The merge is deterministic and **order-independent of completion**:
worker directories are folded in sorted name order, counters add,
gauges resolve last-writer-wins by *simulated* update time, and
histograms concatenate.  Because each harness job carries its own label
domain, a parallel run's merged view is identical to a serial run's —
modulo wall-clock fields, which by contract all end in ``wall_s``.

Worker ``audit.jsonl`` decision trails merge the same way: records are
concatenated in sorted worker order, each annotated with a ``job`` field
naming its worker, into a run-level ``audit.jsonl``.
"""

from __future__ import annotations

import os
import re
from typing import Any

from repro.ioutil import atomic_write_text
from repro.telemetry.audit import (
    AUDIT_NAME,
    audit_path,
    read_audit,
    render_audit_jsonl,
)
from repro.telemetry.core import Telemetry
from repro.telemetry.exporters import (
    EVENTS_NAME,
    SNAPSHOT_NAME,
    read_events,
    read_snapshot,
    write_exports,
)
from repro.telemetry.registry import MetricsRegistry

WORKERS_SUBDIR = "workers"

_UNSAFE_RE = re.compile(r"[^A-Za-z0-9._=-]")


def worker_dir(telemetry_dir: str | os.PathLike[str], name: str) -> str:
    """Directory a named worker writes its telemetry files into."""
    return os.path.join(os.fspath(telemetry_dir), WORKERS_SUBDIR,
                        _UNSAFE_RE.sub("_", name))


def export_worker(telemetry: Telemetry,
                  telemetry_dir: str | os.PathLike[str], name: str) -> str:
    """Write one worker's telemetry under ``<dir>/workers/<name>/``."""
    target = worker_dir(telemetry_dir, name)
    write_exports(target, telemetry.registry, telemetry.events)
    return target


def merge_directory(
    telemetry_dir: str | os.PathLike[str],
    extra: list[Telemetry] | None = None,
) -> MetricsRegistry:
    """Merge worker telemetry (plus in-process extras) into run-level files.

    Returns the merged registry.  With no workers and no extras the
    run-level exports are still written (empty), so ``repro metrics``
    always has something to read.
    """
    telemetry_dir = os.fspath(telemetry_dir)
    merged = MetricsRegistry()
    events: list[dict[str, Any]] = []
    audit_records: list[dict[str, Any]] = []
    saw_worker_audit = False

    workers_root = os.path.join(telemetry_dir, WORKERS_SUBDIR)
    if os.path.isdir(workers_root):
        for name in sorted(os.listdir(workers_root)):
            wdir = os.path.join(workers_root, name)
            snapshot_path = os.path.join(wdir, SNAPSHOT_NAME)
            if not os.path.isdir(wdir) or not os.path.exists(snapshot_path):
                continue
            merged.merge_snapshot(read_snapshot(snapshot_path))
            # Annotate each worker's events with the worker that emitted
            # them (mirroring the audit merge) so trace stitching and the
            # Chrome-trace exporter can attribute spans to processes.
            events.extend({**event, "job": name}
                          for event in read_events(os.path.join(wdir,
                                                                EVENTS_NAME)))
            worker_audit = read_audit(audit_path(wdir), missing_ok=True)
            if os.path.exists(audit_path(wdir)):
                saw_worker_audit = True
            audit_records.extend({**record, "job": name}
                                 for record in worker_audit)

    for telemetry in extra or []:
        if not telemetry.enabled:
            continue
        merged.merge_snapshot(telemetry.registry.snapshot())
        events.extend(telemetry.events)

    write_exports(telemetry_dir, merged, events)
    if saw_worker_audit:
        atomic_write_text(os.path.join(telemetry_dir, AUDIT_NAME),
                          render_audit_jsonl(audit_records))
    return merged


def strip_wall_clock(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Snapshot copy with every wall-clock metric removed.

    The parity contract: a ``--parallel N`` harness run merged with this
    module equals the serial run on the same seeds after dropping
    metrics whose name ends in ``wall_s`` — nothing else may differ.
    """
    return {
        "schema": snapshot["schema"],
        "counters": [dict(r) for r in snapshot["counters"]
                     if not r["name"].endswith("wall_s")],
        "gauges": [dict(r) for r in snapshot["gauges"]
                   if not r["name"].endswith("wall_s")],
        "histograms": [dict(r) for r in snapshot["histograms"]
                       if not r["name"].endswith("wall_s")],
    }
