"""Labeled metric instruments: counters, gauges, histograms.

The registry is the single source of truth for every count the system
produces — controller health counters, injected-fault counts, harness
job statistics — replacing the ad-hoc per-module tallies that used to
live in ``ControlHealth``, ``FaultInjector.counts`` and the harness
report.  An instrument is identified by ``(name, labels)``; fetching the
same identity twice returns the same object, so hot paths can cache the
instrument once and pay one attribute update per observation.

Histograms keep exact ``count/sum/min/max`` plus a bounded sample buffer
for streaming percentiles: while under the cap every observation is
kept (percentiles are exact); past the cap the buffer is decimated
deterministically (every other sample dropped, the keep-stride doubles),
so memory stays bounded, estimates stay unbiased for stationary streams,
and — crucially for the harness parity guarantee — the state after any
observation sequence is a pure function of that sequence.

Snapshots are plain JSON-safe dicts; :meth:`MetricsRegistry.merge_snapshot`
folds a snapshot into a live registry (counters add, gauges last-writer-
wins by update time, histograms concatenate), which is how per-worker
telemetry files become one run-level view.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import ConfigError

SNAPSHOT_SCHEMA = 1

#: Default sample-buffer cap; 4096 floats per histogram worst case.
HISTOGRAM_SAMPLE_CAP = 4096

#: The percentiles every summary surface reports.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

LabelKey = tuple[tuple[str, str], ...]


def label_key(labels: dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ConfigError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def reset(self) -> None:
        """Zero the counter (start of a new run on a shared registry)."""
        self.value = 0.0


class Gauge:
    """Last-value-wins instantaneous measurement.

    ``updated_at`` carries the *simulated* time of the last set (when the
    caller provides one), which is what makes gauge merges deterministic
    across process boundaries: the sample with the latest sim time wins,
    never the one whose worker happened to finish last.
    """

    __slots__ = ("name", "labels", "value", "updated_at")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updated_at = float("-inf")

    def set(self, value: float, t: float | None = None) -> None:
        self.value = float(value)
        if t is not None:
            self.updated_at = float(t)

    def reset(self) -> None:
        self.value = 0.0
        self.updated_at = float("-inf")


class Histogram:
    """Streaming distribution: exact moments, bounded-memory percentiles."""

    __slots__ = ("name", "labels", "count", "sum", "min", "max",
                 "_samples", "_stride", "_phase", "_cap")

    def __init__(self, name: str, labels: LabelKey = (),
                 cap: int = HISTOGRAM_SAMPLE_CAP):
        if cap < 2:
            raise ConfigError("histogram sample cap must be >= 2")
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1      # keep every _stride-th observation
        self._phase = 0       # position within the current stride window
        self._cap = cap

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0
            self._samples.append(value)
            if len(self._samples) >= self._cap:
                # Deterministic decimation: halve the buffer, double the
                # keep-stride.  State depends only on the value sequence.
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained (decimated) observations, in arrival order."""
        return tuple(self._samples)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile from the retained samples."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"percentile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def p50(self) -> float:
        return self.percentile(0.5)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples = []
        self._stride = 1
        self._phase = 0

    def _absorb(self, count: int, total: float, vmin: float, vmax: float,
                samples: list[float]) -> None:
        """Merge another histogram's exported state into this one."""
        self.count += count
        self.sum += total
        if count:
            self.min = min(self.min, vmin)
            self.max = max(self.max, vmax)
        self._samples.extend(samples)
        while len(self._samples) >= self._cap:
            self._samples = self._samples[::2]
            self._stride *= 2


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by (name, labels).

    A name must stay one kind: registering ``x`` as a counter and later
    as a gauge is a programming error and raises immediately.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._kinds: dict[str, str] = {}

    def _claim(self, name: str, kind: str) -> None:
        seen = self._kinds.setdefault(name, kind)
        if seen != kind:
            raise ConfigError(
                f"metric {name!r} already registered as a {seen}, not a {kind}"
            )

    def counter(self, name: str, **labels: Any) -> Counter:
        self._claim(name, "counter")
        key = (name, label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        self._claim(name, "gauge")
        key = (name, label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        self._claim(name, "histogram")
        key = (name, label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1])
        return instrument

    # -- iteration (always sorted: every export is deterministic) ------

    def counters(self) -> Iterator[Counter]:
        for key in sorted(self._counters):
            yield self._counters[key]

    def gauges(self) -> Iterator[Gauge]:
        for key in sorted(self._gauges):
            yield self._gauges[key]

    def histograms(self) -> Iterator[Histogram]:
        for key in sorted(self._histograms):
            yield self._histograms[key]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump of every instrument's current state."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self.counters()
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value,
                 "updated_at": (g.updated_at
                                if g.updated_at != float("-inf") else None)}
                for g in self.gauges()
            ],
            "histograms": [
                {"name": h.name, "labels": dict(h.labels), "count": h.count,
                 "sum": h.sum,
                 "min": h.min if h.count else None,
                 "max": h.max if h.count else None,
                 "samples": list(h._samples)}
                for h in self.histograms()
            ],
        }

    def merge_snapshot(self, data: dict[str, Any]) -> None:
        """Fold a snapshot (e.g. one worker's) into this registry."""
        schema = data.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ConfigError(
                f"unsupported telemetry snapshot schema {schema!r} "
                f"(expected {SNAPSHOT_SCHEMA})"
            )
        for rec in data["counters"]:
            self.counter(rec["name"], **rec["labels"]).inc(rec["value"])
        for rec in data["gauges"]:
            gauge = self.gauge(rec["name"], **rec["labels"])
            updated = rec.get("updated_at")
            incoming = float("-inf") if updated is None else float(updated)
            if incoming >= gauge.updated_at:
                gauge.value = rec["value"]
                gauge.updated_at = incoming
        for rec in data["histograms"]:
            hist = self.histogram(rec["name"], **rec["labels"])
            hist._absorb(
                int(rec["count"]), float(rec["sum"]),
                float(rec["min"]) if rec.get("min") is not None else float("inf"),
                float(rec["max"]) if rec.get("max") is not None else float("-inf"),
                [float(v) for v in rec["samples"]],
            )

    @classmethod
    def from_snapshot(cls, data: dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge_snapshot(data)
        return registry
