"""Service-level objectives evaluated from telemetry, with burn rates.

An :class:`SloSpec` declares an objective as a *good-fraction target*
("99.9% of admissions complete within 250 ms", "95% of jobs beat their
deadline").  Compliance is read two ways:

- **run-level**, from the merged registry: counter ratios
  (``kind="ratio"``) or the fraction of histogram samples within a
  threshold (``kind="quantile"`` — a p99-style objective expressed as a
  graded fraction rather than a single percentile);
- **windowed**, from timestamped event samples (the SRE multi-window
  technique): per window, compliance over just the samples inside it.

The *burn rate* normalizes error spend against the objective's error
budget::

    burn = (1 - compliance) / (1 - target)

1.0 means failing at exactly the tolerated rate; 2.0 burns a period's
budget in half the period; multi-window alerting fires only when both a
short and a long window burn hot, filtering blips without missing slow
leaks.  The service daemon exposes these as ``slo_*`` gauges on
``/metrics`` (:meth:`repro.service.daemon.SimulationService.refresh_slo_gauges`)
and ``greengpu slo check --fail-on`` gates CI on the same math.

Everything here is pure and offline-replayable: the same snapshot +
event stream always yields the same report.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ConfigError, SerializationError
from repro.telemetry.exporters import EVENTS_NAME, SNAPSHOT_NAME, read_events
from repro.telemetry.registry import MetricsRegistry

#: Default burn-rate windows (seconds): short catches fast burns, long
#: catches slow leaks.  Deliberately small — runs and CI smokes last
#: seconds to minutes, not the 1h/6h of a production pager.
DEFAULT_WINDOWS: tuple[float, ...] = (60.0, 300.0)

#: Known event-sample extractors, keyed by ``SloSpec.source``.  Each maps
#: one event to ``(t_unix, good)`` or ``None`` when the event is not a
#: sample for that objective.  Declarative (names, not callables) so SLO
#: files stay plain JSON.
_SOURCES = ("span_ok", "service_job_deadline", "service_job_cache",
            "service_admission_latency")


@dataclass(frozen=True)
class SloSpec:
    """One declared objective."""

    name: str
    description: str
    target: float                       # good-fraction objective in [0, 1)
    kind: str = "ratio"                 # "ratio" | "quantile"
    good: tuple[str, ...] = ()          # counter names, good events
    bad: tuple[str, ...] = ()           # counter names, bad events
    total: tuple[str, ...] = ()         # counter names, all events
    histogram: str | None = None        # kind="quantile": histogram name
    threshold: float | None = None      # kind="quantile": good iff <= this
    source: str | None = None           # windowed-sample extractor key

    def __post_init__(self) -> None:
        if not 0.0 <= self.target < 1.0:
            raise ConfigError(
                f"slo {self.name!r}: target must be in [0, 1), "
                f"got {self.target}"
            )
        if self.kind not in ("ratio", "quantile"):
            raise ConfigError(
                f"slo {self.name!r}: unknown kind {self.kind!r}"
            )
        if self.kind == "quantile" and (self.histogram is None
                                        or self.threshold is None):
            raise ConfigError(
                f"slo {self.name!r}: kind='quantile' needs histogram "
                f"and threshold"
            )
        if self.kind == "ratio" and not (self.good or self.bad):
            raise ConfigError(
                f"slo {self.name!r}: kind='ratio' needs good or bad counters"
            )
        if self.source is not None and self.source not in _SOURCES:
            raise ConfigError(
                f"slo {self.name!r}: unknown source {self.source!r} "
                f"(known: {', '.join(_SOURCES)})"
            )


#: Objectives every run understands.  The span-success SLO works on any
#: telemetry-enabled run (including the committed golden runs); the
#: ``service_*`` objectives read as "no data" outside served runs.
DEFAULT_SLOS: tuple[SloSpec, ...] = (
    SloSpec(
        name="span-success",
        description="spans finish without raising",
        target=0.99,
        kind="ratio",
        bad=("span_errors_total",),
        total=("span_total",),
        source="span_ok",
    ),
    SloSpec(
        name="deadline-hit-rate",
        description="served jobs finish before their deadline",
        target=0.95,
        kind="ratio",
        good=("service_jobs_done_total",),
        bad=("service_jobs_expired_total",),
        source="service_job_deadline",
    ),
    SloSpec(
        name="admission-latency-p99",
        description="admission decisions within 250 ms",
        target=0.99,
        kind="quantile",
        histogram="service_admission_latency_s",
        threshold=0.25,
        source="service_admission_latency",
    ),
    SloSpec(
        name="cache-hit-ratio",
        description="submissions served from the result cache "
                    "(informational: target 0 never violates)",
        target=0.0,
        kind="ratio",
        good=("service_cache_hits_total",),
        total=("service_submissions_total",),
        source="service_job_cache",
    ),
)


@dataclass
class SloResult:
    """Evaluation of one objective against one run."""

    spec: SloSpec
    compliance: float | None            # None: no data
    samples: int
    burn: float | None
    window_burns: dict[str, float | None] = field(default_factory=dict)

    @property
    def violated(self) -> bool:
        return (self.compliance is not None
                and self.compliance < self.spec.target)

    @property
    def max_burn(self) -> float | None:
        burns = [b for b in [self.burn, *self.window_burns.values()]
                 if b is not None]
        return max(burns) if burns else None


def burn_rate(compliance: float | None, target: float) -> float | None:
    """Error spend relative to the error budget; ``None`` without data."""
    if compliance is None:
        return None
    return (1.0 - compliance) / (1.0 - target)


def _counter_sum(snapshot_counters: dict[str, float],
                 names: Iterable[str]) -> float:
    return sum(snapshot_counters.get(name, 0.0) for name in names)


def _snapshot_counter_totals(registry: MetricsRegistry) -> dict[str, float]:
    totals: dict[str, float] = {}
    for counter in registry.counters():
        totals[counter.name] = totals.get(counter.name, 0.0) + counter.value
    return totals


def compliance_from_registry(
        spec: SloSpec, registry: MetricsRegistry) -> tuple[float | None, int]:
    """Run-level (compliance, sample count) for one objective."""
    if spec.kind == "quantile":
        within = 0
        samples = 0
        for hist in registry.histograms():
            if hist.name != spec.histogram:
                continue
            retained = hist.samples
            samples += len(retained)
            within += sum(1 for v in retained if v <= spec.threshold)
        if samples == 0:
            return None, 0
        return within / samples, samples

    totals = _snapshot_counter_totals(registry)
    good = _counter_sum(totals, spec.good)
    bad = _counter_sum(totals, spec.bad)
    total = _counter_sum(totals, spec.total) if spec.total else good + bad
    if total <= 0:
        return None, 0
    if not spec.good:
        good = total - bad
    return max(0.0, min(1.0, good / total)), int(total)


def event_samples(spec: SloSpec,
                  events: list[dict[str, Any]]) -> list[tuple[float, bool]]:
    """Timestamped (t_unix, good) samples for windowed burn rates."""
    out: list[tuple[float, bool]] = []
    for event in events:
        sample = _extract_sample(spec, event)
        if sample is not None:
            out.append(sample)
    out.sort(key=lambda s: s[0])
    return out


def _extract_sample(spec: SloSpec,
                    event: dict[str, Any]) -> tuple[float, bool] | None:
    source = spec.source
    if source == "span_ok":
        if event.get("type") != "span" or event.get("t_unix0") is None:
            return None
        return float(event["t_unix0"]), bool(event.get("ok", True))
    if event.get("type") != "event" or event.get("t_unix") is None:
        return None
    t = float(event["t_unix"])
    if source == "service_job_deadline":
        if event.get("name") != "service_job":
            return None
        phase = event.get("phase")
        if phase == "done":
            return t, True
        if phase == "expired":
            return t, False
        return None
    if source == "service_job_cache":
        if event.get("name") != "service_job":
            return None
        return t, bool(event.get("cached", False))
    if source == "service_admission_latency":
        if event.get("name") != "service_admission":
            return None
        threshold = spec.threshold if spec.threshold is not None else 0.25
        return t, float(event.get("latency_s", 0.0)) <= threshold
    return None


def windowed_compliance(samples: list[tuple[float, bool]],
                        window_s: float, now: float) -> float | None:
    """Good fraction over samples inside ``[now - window_s, now]``."""
    lo = now - window_s
    inside = [good for t, good in samples if t >= lo]
    if not inside:
        return None
    return sum(inside) / len(inside)


def evaluate_slos(registry: MetricsRegistry,
                  events: list[dict[str, Any]] | None = None,
                  specs: tuple[SloSpec, ...] = DEFAULT_SLOS,
                  windows: tuple[float, ...] = DEFAULT_WINDOWS,
                  now: float | None = None) -> list[SloResult]:
    """Evaluate every objective; offline ``now`` defaults to the stream end."""
    events = events or []
    per_spec_samples = {spec.name: event_samples(spec, events)
                        for spec in specs if spec.source is not None}
    if now is None:
        ends = [s[-1][0] for s in per_spec_samples.values() if s]
        now = max(ends) if ends else 0.0
    results: list[SloResult] = []
    for spec in specs:
        compliance, n = compliance_from_registry(spec, registry)
        result = SloResult(spec=spec, compliance=compliance, samples=n,
                           burn=burn_rate(compliance, spec.target))
        if spec.source is not None:
            samples = per_spec_samples[spec.name]
            for window_s in windows:
                wc = windowed_compliance(samples, window_s, now)
                result.window_burns[f"{window_s:g}s"] = burn_rate(
                    wc, spec.target)
        results.append(result)
    return results


def evaluate_directory(directory: str | os.PathLike[str],
                       specs: tuple[SloSpec, ...] = DEFAULT_SLOS,
                       windows: tuple[float, ...] = DEFAULT_WINDOWS,
                       ) -> list[SloResult]:
    """Evaluate objectives against a run directory's merged exports."""
    directory = os.fspath(directory)
    snapshot_path = os.path.join(directory, SNAPSHOT_NAME)
    if not os.path.exists(snapshot_path):
        raise SerializationError(
            f"{snapshot_path}: no telemetry snapshot "
            f"(re-run with --telemetry to record one)"
        )
    from repro.telemetry.exporters import read_snapshot
    registry = MetricsRegistry()
    registry.merge_snapshot(read_snapshot(snapshot_path))
    events = read_events(os.path.join(directory, EVENTS_NAME))
    return evaluate_slos(registry, events, specs=specs, windows=windows)


def format_slo_report(results: list[SloResult]) -> str:
    """Human-readable table of objectives, compliance, and burn rates."""
    from repro.analysis.tables import format_table  # deferred: avoids cycle

    def fmt(value: float | None, pattern: str = "{:.4f}") -> str:
        return pattern.format(value) if value is not None else "-"

    windows = sorted({w for r in results for w in r.window_burns},
                     key=lambda w: float(w[:-1]))
    header = ["slo", "target", "compliance", "samples", "burn",
              *[f"burn[{w}]" for w in windows], "status"]
    rows = []
    for result in results:
        status = ("VIOLATED" if result.violated
                  else "no-data" if result.compliance is None else "ok")
        rows.append([
            result.spec.name,
            f"{result.spec.target:.4f}",
            fmt(result.compliance),
            str(result.samples),
            fmt(result.burn, "{:.2f}"),
            *[fmt(result.window_burns.get(w), "{:.2f}") for w in windows],
            status,
        ])
    return format_table(header, rows)


def parse_fail_on(pairs: list[str] | None) -> dict[str, float]:
    """Parse ``--fail-on`` gates: ``violations=N`` and/or ``burn=X``."""
    gates: dict[str, float] = {}
    for chunk in pairs or []:
        for pair in chunk.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, raw = pair.partition("=")
            key = key.strip()
            if not sep or key not in ("violations", "burn"):
                raise ConfigError(
                    f"--fail-on expects violations=N or burn=X, got {pair!r}"
                )
            try:
                gates[key] = float(raw)
            except ValueError as exc:
                raise ConfigError(f"--fail-on {pair!r}: not a number") from exc
    return gates


def check_slos(results: list[SloResult],
               gates: dict[str, float]) -> list[str]:
    """Apply gates; return human-readable failure strings (empty = pass)."""
    failures: list[str] = []
    if "violations" in gates:
        violated = [r.spec.name for r in results if r.violated]
        if len(violated) > gates["violations"]:
            failures.append(
                f"{len(violated)} violated objective(s) "
                f"(allowed {gates['violations']:g}): {', '.join(violated)}"
            )
    if "burn" in gates:
        for result in results:
            # Informational objectives (target 0) burn by definition;
            # the burn gate watches objectives with a real error budget.
            if result.spec.target <= 0.0:
                continue
            max_burn = result.max_burn
            if max_burn is not None and max_burn > gates["burn"]:
                failures.append(
                    f"{result.spec.name}: burn rate {max_burn:.2f} "
                    f"exceeds {gates['burn']:g}"
                )
    return failures


def load_slo_file(path: str) -> tuple[SloSpec, ...]:
    """Load objectives from a JSON file: ``{"slos": [{...}, ...]}``."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise SerializationError(f"{path}: cannot read SLO file ({exc})") \
            from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: corrupt SLO file ({exc})") from exc
    raw_specs = payload.get("slos") if isinstance(payload, dict) else None
    if not isinstance(raw_specs, list) or not raw_specs:
        raise ConfigError(f"{path}: expected an object with a 'slos' list")
    specs = []
    for raw in raw_specs:
        if not isinstance(raw, dict):
            raise ConfigError(f"{path}: each slo must be an object")
        try:
            specs.append(SloSpec(
                name=str(raw["name"]),
                description=str(raw.get("description", "")),
                target=float(raw["target"]),
                kind=str(raw.get("kind", "ratio")),
                good=tuple(raw.get("good", ())),
                bad=tuple(raw.get("bad", ())),
                total=tuple(raw.get("total", ())),
                histogram=raw.get("histogram"),
                threshold=(float(raw["threshold"])
                           if raw.get("threshold") is not None else None),
                source=raw.get("source"),
            ))
        except KeyError as exc:
            raise ConfigError(f"{path}: slo missing field {exc}") from exc
    return tuple(specs)
