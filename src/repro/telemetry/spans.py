"""Structured span tracing with dual sim-clock / wall-clock timestamps.

A span brackets one unit of control-loop work — a scaling tick, a
monitor read, a WMA update, a frequency actuation — and records both
time bases:

- **simulated time** (when a sim clock is bound): where the span sits in
  the experiment's timeline, identical across reruns and across serial
  vs parallel harness execution;
- **wall time** (``perf_counter``): what the span actually cost the
  host, the number the performance budget watches.

Every finished span feeds two registry histograms —
``span_sim_s{span=...}`` and ``span_wall_s{span=...}`` — and appends one
structured event to the telemetry event stream, so the aggregate view
(count, p50/p95/p99) and the raw trace are always consistent.  Spans
nest: the tracer keeps an explicit stack, and each event records its
depth and parent span name.  The ``_wall_s``/``wall_s`` naming is a
contract: merge-parity checks exclude exactly those fields, nothing
else.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.errors import SimulationError
from repro.telemetry.registry import MetricsRegistry


class Span:
    """One active span; a reusable-per-call context manager."""

    __slots__ = ("tracer", "name", "labels", "t_sim_start", "t_wall_start")

    def __init__(self, tracer: "SpanTracer", name: str,
                 labels: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.labels = labels

    def __enter__(self) -> "Span":
        self.t_sim_start = self.tracer.now_sim()
        self.tracer._stack.append(self.name)
        self.t_wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall_s = time.perf_counter() - self.t_wall_start
        tracer = self.tracer
        stack = tracer._stack
        if not stack or stack[-1] != self.name:
            raise SimulationError(
                f"span {self.name!r} closed out of order (stack: {stack})"
            )
        stack.pop()
        tracer._finish(self, wall_s, ok=exc_type is None)
        return False  # never swallow the exception


class SpanTracer:
    """Factory and sink for spans; owns the nesting stack."""

    def __init__(self, registry: MetricsRegistry,
                 events: list[dict[str, Any]],
                 base_labels: dict[str, Any] | None = None):
        self.registry = registry
        self.events = events
        self.base_labels = dict(base_labels or {})
        self._stack: list[str] = []
        self._clock_fn: Callable[[], float] | None = None

    def bind_clock(self, clock_fn: Callable[[], float]) -> None:
        """Attach the simulated-time source (e.g. ``lambda: clock.now``)."""
        self._clock_fn = clock_fn

    def now_sim(self) -> float:
        """Current simulated time, or -1.0 when no sim clock is bound."""
        return self._clock_fn() if self._clock_fn is not None else -1.0

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return len(self._stack)

    def span(self, name: str, **labels: Any) -> Span:
        merged = {**self.base_labels, **labels} if labels else self.base_labels
        return Span(self, name, merged)

    def _finish(self, span: Span, wall_s: float, ok: bool) -> None:
        t_sim_end = self.now_sim()
        labels = span.labels
        self.registry.histogram("span_sim_s", span=span.name, **labels).observe(
            max(0.0, t_sim_end - span.t_sim_start)
        )
        self.registry.histogram("span_wall_s", span=span.name, **labels).observe(
            wall_s
        )
        self.registry.counter("span_total", span=span.name, **labels).inc()
        if not ok:
            self.registry.counter("span_errors_total", span=span.name,
                                  **labels).inc()
        self.events.append({
            "type": "span",
            "name": span.name,
            "labels": {str(k): str(v) for k, v in labels.items()},
            "sim_t0": span.t_sim_start,
            "sim_t1": t_sim_end,
            "wall_s": wall_s,
            "depth": len(self._stack),
            "parent": self._stack[-1] if self._stack else None,
            "ok": ok,
        })
