"""Structured span tracing with dual sim-clock / wall-clock timestamps.

A span brackets one unit of control-loop work — a scaling tick, a
monitor read, a WMA update, a frequency actuation — and records both
time bases:

- **simulated time** (when a sim clock is bound): where the span sits in
  the experiment's timeline, identical across reruns and across serial
  vs parallel harness execution;
- **wall time** (``perf_counter``): what the span actually cost the
  host, the number the performance budget watches.

Every finished span feeds two registry histograms —
``span_sim_s{span=...}`` and ``span_wall_s{span=...}`` — and appends one
structured event to the telemetry event stream, so the aggregate view
(count, p50/p95/p99) and the raw trace are always consistent.  Spans
nest: the tracer keeps an explicit stack, and each event records its
depth and parent span name.  The ``_wall_s``/``wall_s`` naming is a
contract: merge-parity checks exclude exactly those fields, nothing
else.

Every span also carries a deterministic distributed-tracing identity
(``trace_id``/``span_id``/``parent_id``, see
:mod:`repro.telemetry.tracecontext`): ids derive from the parent
context, the span name, and a per-(parent, name) occurrence counter, so
reruns — and serial vs parallel executions of the same jobs — produce
identical trace trees.  ``t_unix0`` (wall-clock epoch at entry) rides
along for waterfall/Chrome-trace rendering; like ``wall_s`` it is
excluded from parity comparisons, which only inspect snapshots.

For spans whose lifetime cannot bracket a ``with`` block — an asyncio
daemon awaiting between start and finish would corrupt the LIFO stack —
:meth:`SpanTracer.record_at` records a completed span directly against
an explicit :class:`~repro.telemetry.tracecontext.TraceContext`.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.errors import SimulationError
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracecontext import (
    TraceContext,
    default_context,
    derive_id,
    format_span_id,
    format_trace_id,
)


class Span:
    """One active span; a reusable-per-call context manager."""

    __slots__ = ("tracer", "name", "labels", "trace", "t_sim_start",
                 "t_wall_start", "t_unix_start", "trace_id", "span_id",
                 "parent_id")

    def __init__(self, tracer: "SpanTracer", name: str,
                 labels: dict[str, Any],
                 trace: TraceContext | None = None):
        self.tracer = tracer
        self.name = name
        self.labels = labels
        self.trace = trace

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.t_sim_start = tracer.now_sim()
        base = self.trace if self.trace is not None else tracer.current_context()
        seq_key = (base.span_id, self.name)
        n = tracer._span_seq.get(seq_key, 0)
        tracer._span_seq[seq_key] = n + 1
        self.trace_id = base.trace_id
        self.parent_id = base.span_id
        self.span_id = derive_id(base.trace_id, base.span_id, self.name, n)
        tracer._stack.append((self.name, self.trace_id, self.span_id))
        self.t_unix_start = time.time()
        self.t_wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall_s = time.perf_counter() - self.t_wall_start
        tracer = self.tracer
        stack = tracer._stack
        if not stack or stack[-1][2] != self.span_id:
            if exc_type is None:
                names = [entry[0] for entry in stack]
                raise SimulationError(
                    f"span {self.name!r} closed out of order (stack: {names})"
                )
            # An exception is already propagating; raising here would
            # mask it.  Best-effort resync — drop through this span if
            # it is still on the stack — record the failure, and let the
            # original error through untouched.
            for i in range(len(stack) - 1, -1, -1):
                if stack[i][2] == self.span_id:
                    del stack[i:]
                    break
            tracer._finish(self, wall_s, ok=False)
            return False
        stack.pop()
        tracer._finish(self, wall_s, ok=exc_type is None)
        return False  # never swallow the exception


class SpanTracer:
    """Factory and sink for spans; owns the nesting stack."""

    def __init__(self, registry: MetricsRegistry,
                 events: list[dict[str, Any]],
                 base_labels: dict[str, Any] | None = None,
                 trace: TraceContext | None = None):
        self.registry = registry
        self.events = events
        self.base_labels = dict(base_labels or {})
        self.trace = trace if trace is not None else default_context()
        self._stack: list[tuple[str, int, int]] = []
        self._span_seq: dict[tuple[int, str], int] = {}
        self._clock_fn: Callable[[], float] | None = None

    def bind_clock(self, clock_fn: Callable[[], float]) -> None:
        """Attach the simulated-time source (e.g. ``lambda: clock.now``)."""
        self._clock_fn = clock_fn

    def now_sim(self) -> float:
        """Current simulated time, or -1.0 when no sim clock is bound."""
        return self._clock_fn() if self._clock_fn is not None else -1.0

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return len(self._stack)

    def current_context(self) -> TraceContext:
        """Context of the innermost open span, else the tracer's root."""
        if self._stack:
            _name, trace_id, span_id = self._stack[-1]
            return TraceContext(trace_id=trace_id, span_id=span_id)
        return self.trace

    def child_context(self, *parts: Any) -> TraceContext:
        """Derive a child of the current context (for handing to workers)."""
        return self.current_context().child(*parts)

    def span(self, name: str, trace: TraceContext | None = None,
             **labels: Any) -> Span:
        merged = {**self.base_labels, **labels} if labels else self.base_labels
        return Span(self, name, merged, trace=trace)

    def record_at(self, context: TraceContext, name: str, *,
                  wall_s: float, t_unix0: float | None = None,
                  sim_t0: float = -1.0, sim_t1: float = -1.0,
                  ok: bool = True,
                  labels: dict[str, Any] | None = None,
                  event_extra: dict[str, Any] | None = None) -> None:
        """Record an already-finished span at an explicit trace position.

        Bypasses the nesting stack entirely, so it is safe from code
        that cannot hold a ``with`` block open across its span's
        lifetime (the asyncio service daemon, the harness supervisor
        attributing work to finished jobs).  ``context`` *is* the span's
        identity — callers derive it via
        :meth:`~repro.telemetry.tracecontext.TraceContext.child`.
        ``labels`` feed the metric instruments (keep cardinality
        bounded); ``event_extra`` fields land only on the event.
        """
        merged = {**self.base_labels, **(labels or {})}
        self.registry.histogram("span_sim_s", span=name, **merged).observe(
            max(0.0, sim_t1 - sim_t0)
        )
        self.registry.histogram("span_wall_s", span=name, **merged).observe(
            wall_s
        )
        self.registry.counter("span_total", span=name, **merged).inc()
        if not ok:
            self.registry.counter("span_errors_total", span=name,
                                  **merged).inc()
        record: dict[str, Any] = {
            "type": "span",
            "name": name,
            "labels": {str(k): str(v) for k, v in merged.items()},
            "sim_t0": sim_t0,
            "sim_t1": sim_t1,
            "wall_s": wall_s,
            "depth": 0,
            "parent": None,
            "ok": ok,
            "trace_id": format_trace_id(context.trace_id),
            "span_id": format_span_id(context.span_id),
            "parent_id": (format_span_id(context.parent_id)
                          if context.parent_id is not None else None),
        }
        if t_unix0 is not None:
            record["t_unix0"] = t_unix0
        if event_extra:
            record.update(event_extra)
        self.events.append(record)

    def _finish(self, span: Span, wall_s: float, ok: bool) -> None:
        t_sim_end = self.now_sim()
        labels = span.labels
        self.registry.histogram("span_sim_s", span=span.name, **labels).observe(
            max(0.0, t_sim_end - span.t_sim_start)
        )
        self.registry.histogram("span_wall_s", span=span.name, **labels).observe(
            wall_s
        )
        self.registry.counter("span_total", span=span.name, **labels).inc()
        if not ok:
            self.registry.counter("span_errors_total", span=span.name,
                                  **labels).inc()
        self.events.append({
            "type": "span",
            "name": span.name,
            "labels": {str(k): str(v) for k, v in labels.items()},
            "sim_t0": span.t_sim_start,
            "sim_t1": t_sim_end,
            "wall_s": wall_s,
            "depth": len(self._stack),
            "parent": self._stack[-1][0] if self._stack else None,
            "ok": ok,
            "trace_id": format_trace_id(span.trace_id),
            "span_id": format_span_id(span.span_id),
            "parent_id": format_span_id(span.parent_id),
            "t_unix0": span.t_unix_start,
        })
