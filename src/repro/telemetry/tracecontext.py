"""Deterministic trace-context propagation across process boundaries.

Distributed tracing normally mints random trace/span ids; this repo
cannot — runs must be bit-reproducible, and a ``--parallel 4`` harness
run must stitch into the *same* trace tree as the serial run on the same
seeds.  So every id here is **derived, never drawn**: a 64-bit value
produced by folding the causal path (parent ids, span names, occurrence
counters) through the same SplitMix64 finalizer the seeding module uses
(:func:`repro.seeding.spawn_seed`).  Two processes that agree on the
path agree on the id, with no coordination and no shared state.

The wire format is W3C ``traceparent``-shaped::

    00-<trace_id as 032x>-<span_id as 016x>-01

which Perfetto, service clients, and plain ``curl`` all understand as an
opaque correlation header.  Propagation channels:

- **HTTP**: a ``traceparent`` request/response header
  (:mod:`repro.service.http`, :mod:`repro.service.client`);
- **spawned workers**: the :data:`TRACEPARENT_ENV` environment variable,
  set by :func:`repro.harness.worker.run_job_inline` in the child before
  the job target runs (the harness supervisor ships the header through
  the worker argument list, so spawn and inline execution agree);
- **explicit kwargs**: service job targets receive ``traceparent=`` so
  content-addressed cache keys (computed from the *request* kwargs)
  stay pure.

Builtin ``hash()`` is per-process salted and must never feed an id;
string parts are digested with SHA-256 (cached) instead.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Iterator

from repro.seeding import _GOLDEN, _MASK64, _mix64

#: Environment variable carrying the serialized context into workers.
TRACEPARENT_ENV = "GREENGPU_TRACEPARENT"

_VERSION = "00"
_FLAGS = "01"  # always sampled: tracing is on iff telemetry is on


@lru_cache(maxsize=4096)
def _text_digest(text: str) -> int:
    """Stable (cross-process, cross-run) 64-bit digest of a string."""
    raw = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(raw[:8], "big")


def derive_id(*parts: Any) -> int:
    """Fold ``parts`` (ints and strings) into a nonzero 64-bit id.

    Deterministic and order-sensitive: ``derive_id(a, b)`` differs from
    ``derive_id(b, a)``.  Ints mix directly; everything else mixes via
    its stable SHA-256 digest.  Zero is reserved (W3C treats an all-zero
    id as invalid), so a zero result maps to 1.
    """
    state = 0x6A09E667F3BCC909  # sqrt(2) fractional bits, arbitrary anchor
    for part in parts:
        if isinstance(part, bool) or not isinstance(part, int):
            value = _text_digest(str(part))
        else:
            value = part & _MASK64
        state = _mix64((state ^ value) + _GOLDEN & _MASK64)
    return state or 1


@dataclass(frozen=True)
class TraceContext:
    """Position in a trace: which tree, which node, which parent."""

    trace_id: int
    span_id: int
    parent_id: int | None = None

    def child(self, *parts: Any) -> "TraceContext":
        """Context for a child span derived from this node and ``parts``."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_id(self.trace_id, self.span_id, *parts),
            parent_id=self.span_id,
        )

    def to_traceparent(self) -> str:
        """Serialize as a W3C-style ``traceparent`` header value."""
        return (f"{_VERSION}-{self.trace_id:032x}-"
                f"{self.span_id:016x}-{_FLAGS}")

    @classmethod
    def root(cls, *parts: Any) -> "TraceContext":
        """A new root context named by ``parts`` (deterministic)."""
        trace_id = derive_id("trace", *parts)
        return cls(trace_id=trace_id,
                   span_id=derive_id(trace_id, "root", *parts))

    @classmethod
    def parse(cls, header: str | None) -> "TraceContext | None":
        """Parse a ``traceparent`` value; ``None`` if absent or invalid."""
        if not header:
            return None
        fields = header.strip().split("-")
        if len(fields) != 4:
            return None
        version, trace_hex, span_hex, _flags = fields
        if len(version) != 2 or len(trace_hex) != 32 or len(span_hex) != 16:
            return None
        try:
            trace_id = int(trace_hex, 16)
            span_id = int(span_hex, 16)
        except ValueError:
            return None
        if trace_id == 0 or span_id == 0 or version == "ff":
            return None
        return cls(trace_id=trace_id, span_id=span_id)


#: Root used when no context was propagated.  A *constant*, so detached
#: processes (CLI runs, tests) still agree on ids for identical work.
DEFAULT_ROOT = TraceContext.root("greengpu")


def context_from_env(environ: "os._Environ[str] | dict[str, str] | None" = None,
                     ) -> TraceContext | None:
    """Context propagated via :data:`TRACEPARENT_ENV`, if any."""
    env = os.environ if environ is None else environ
    return TraceContext.parse(env.get(TRACEPARENT_ENV))


def default_context() -> TraceContext:
    """The ambient context: the env-propagated one, else the fixed root."""
    return context_from_env() or DEFAULT_ROOT


@contextmanager
def propagation_env(context: TraceContext | None) -> Iterator[None]:
    """Set :data:`TRACEPARENT_ENV` for the duration of the block.

    ``None`` is a no-op, so call sites can pass an optional context
    straight through.  Restores the previous value on exit (the same
    set/restore discipline the harness uses for ``PYTHONWARNINGS``).
    """
    if context is None:
        yield
        return
    previous = os.environ.get(TRACEPARENT_ENV)
    os.environ[TRACEPARENT_ENV] = context.to_traceparent()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(TRACEPARENT_ENV, None)
        else:
            os.environ[TRACEPARENT_ENV] = previous


def format_span_id(span_id: int) -> str:
    """Canonical hex rendering used in span events (16 hex chars)."""
    return f"{span_id & _MASK64:016x}"


def format_trace_id(trace_id: int) -> str:
    """Canonical hex rendering of a trace id (32 hex chars)."""
    return f"{trace_id:032x}"
