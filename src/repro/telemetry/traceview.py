"""Stitch span events into trace trees and render them.

The merged event stream (``telemetry.jsonl``) interleaves spans from
every process that took part in a run: the service daemon, the harness
supervisor, spawned job workers, fleet shards.  Each span event carries
its deterministic ``trace_id``/``span_id``/``parent_id`` (see
:mod:`repro.telemetry.tracecontext`), so reassembly needs no timestamps
and no process coordination: index by ``span_id``, link by
``parent_id``, and whatever has no in-stream parent is a root.

Two consumers:

- ``greengpu trace <run-dir>`` renders the text waterfall
  (:func:`format_trace_waterfall`);
- tests compare :func:`tree_signature` — the tree *shape* (ids, names,
  parent links) with all timing stripped — which is identical for
  serial vs ``--parallel`` harness runs and inline vs sharded fleet
  runs by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SerializationError
from repro.telemetry.exporters import EVENTS_NAME, read_events


@dataclass
class SpanNode:
    """One stitched span plus its children."""

    span_id: str
    trace_id: str
    parent_id: str | None
    name: str
    job: str | None
    ok: bool
    wall_s: float
    t_unix0: float | None
    sim_t0: float
    sim_t1: float
    labels: dict[str, str]
    children: list["SpanNode"] = field(default_factory=list)


def stitch_spans(events: list[dict[str, Any]]) -> list[SpanNode]:
    """Reassemble span events into a forest of trace trees.

    Spans without trace ids (streams from before tracing existed) are
    skipped.  A span whose ``parent_id`` does not appear in the stream
    becomes a root — that parent lived in a process that did not export
    telemetry (e.g. the fixed ambient root).  Roots and children are
    ordered deterministically by (trace_id, span_id); display callers
    re-sort by time as needed.
    """
    nodes: dict[str, SpanNode] = {}
    order: list[str] = []
    for event in events:
        if event.get("type") != "span" or not event.get("span_id"):
            continue
        span_id = str(event["span_id"])
        if span_id in nodes:
            continue  # record_at replays (e.g. resumed runs) dedupe by id
        nodes[span_id] = SpanNode(
            span_id=span_id,
            trace_id=str(event.get("trace_id", "")),
            parent_id=event.get("parent_id"),
            name=str(event.get("name", "span")),
            job=event.get("job"),
            ok=bool(event.get("ok", True)),
            wall_s=float(event.get("wall_s", 0.0)),
            t_unix0=(float(event["t_unix0"])
                     if event.get("t_unix0") is not None else None),
            sim_t0=float(event.get("sim_t0", -1.0)),
            sim_t1=float(event.get("sim_t1", -1.0)),
            labels=dict(event.get("labels") or {}),
        )
        order.append(span_id)

    roots: list[SpanNode] = []
    for span_id in order:
        node = nodes[span_id]
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.trace_id, n.span_id))
    roots.sort(key=lambda n: (n.trace_id, n.span_id))
    return roots


def tree_signature(roots: list[SpanNode]) -> list[Any]:
    """Timing-free structural fingerprint of a stitched forest.

    Serial vs parallel executions of the same jobs must produce equal
    signatures — ids and links are derived from the causal path alone.
    """
    def node_sig(node: SpanNode) -> dict[str, Any]:
        return {
            "span_id": node.span_id,
            "trace_id": node.trace_id,
            "parent_id": node.parent_id,
            "name": node.name,
            "labels": dict(sorted(node.labels.items())),
            "children": [node_sig(child) for child in node.children],
        }
    return [node_sig(root) for root in roots]


def _iter_depth_first(roots: list[SpanNode]):
    stack = [(root, 0) for root in reversed(roots)]
    while stack:
        node, depth = stack.pop()
        yield node, depth
        children = sorted(node.children,
                          key=lambda n: (n.t_unix0 if n.t_unix0 is not None
                                         else float("inf"),
                                         n.trace_id, n.span_id))
        for child in reversed(children):
            stack.append((child, depth + 1))


def _count(roots: list[SpanNode]) -> int:
    return sum(1 + _count(node.children) for node in roots)


def format_trace_waterfall(events: list[dict[str, Any]], *,
                           limit: int = 80, bar_width: int = 32) -> str:
    """Render stitched traces as an indented text waterfall.

    One row per span: tree-indented name, a proportional start/duration
    bar on the run's wall-clock axis, duration, owning worker, and the
    span id (the handle for Perfetto / ``trace.json`` cross-reference).
    """
    roots = stitch_spans(events)
    if not roots:
        return "no traced spans found\n"

    rows = list(_iter_depth_first(roots))
    total = len(rows)
    if limit > 0:
        rows = rows[:limit]

    starts = [n.t_unix0 for n, _ in rows if n.t_unix0 is not None]
    t0 = min(starts) if starts else 0.0
    t1 = max((n.t_unix0 + n.wall_s for n, _ in rows
              if n.t_unix0 is not None), default=t0)
    extent = max(t1 - t0, 1e-9)

    out = [
        f"{_count(roots)} span(s) in "
        f"{len({n.trace_id for n in roots})} trace(s), "
        f"{len(roots)} root(s)",
        "",
        f"{'span':<44} {'waterfall':<{bar_width}} {'dur':>10}  "
        f"{'worker':<18} span_id",
    ]
    for node, depth in rows:
        label = ("  " * depth + node.name)[:43]
        if not node.ok:
            label += "!"
        if node.t_unix0 is not None:
            lo = int((node.t_unix0 - t0) / extent * (bar_width - 1))
            hi = int((node.t_unix0 - t0 + node.wall_s)
                     / extent * (bar_width - 1))
            hi = min(max(hi, lo), bar_width - 1)
            bar = ("." * lo + "#" * (hi - lo + 1)).ljust(bar_width)
        else:
            bar = "?".ljust(bar_width)
        dur = f"{node.wall_s * 1e3:.2f}ms"
        out.append(
            f"{label:<44} {bar} {dur:>10}  "
            f"{(node.job or '-'):<18} {node.span_id}"
        )
    if total > len(rows):
        out.append(f"... {total - len(rows)} more span(s) "
                   f"(raise --limit to see them)")
    return "\n".join(out) + "\n"


def format_trace_report(directory: str | os.PathLike[str], *,
                        limit: int = 80) -> str:
    """Waterfall for a run directory's merged ``telemetry.jsonl``."""
    directory = os.fspath(directory)
    path = os.path.join(directory, EVENTS_NAME)
    if not os.path.exists(path):
        raise SerializationError(
            f"{path}: no telemetry event stream "
            f"(re-run with --telemetry to record one)"
        )
    return format_trace_waterfall(read_events(path), limit=limit)
