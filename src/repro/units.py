"""Unit helpers and conversions used across the simulator.

The simulator works internally in SI base units: seconds, joules, watts,
hertz, bytes and flops.  The paper quotes frequencies in MHz/GHz, so this
module provides thin, explicit converters instead of sprinkling magic
``1e6`` constants through device code.

These are deliberately plain functions (not a unit-checking framework):
the hot paths of the simulator call them millions of times and must stay
allocation-free.
"""

from __future__ import annotations

MHZ = 1.0e6
GHZ = 1.0e9
KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3
MS = 1.0e-3
US = 1.0e-6


def mhz(value: float) -> float:
    """Convert a frequency given in MHz to Hz."""
    return value * MHZ


def ghz(value: float) -> float:
    """Convert a frequency given in GHz to Hz."""
    return value * GHZ


def to_mhz(hz: float) -> float:
    """Convert a frequency in Hz to MHz (for display)."""
    return hz / MHZ


def gib_per_s(value: float) -> float:
    """Convert a bandwidth in GiB/s to bytes/s."""
    return value * GIB


def gflops(value: float) -> float:
    """Convert a compute rate in Gflop/s to flop/s."""
    return value * 1.0e9


def joules_to_wh(j: float) -> float:
    """Convert joules to watt-hours (the unit WattsUp meters report)."""
    return j / 3600.0


def wh_to_joules(wh: float) -> float:
    """Convert watt-hours to joules."""
    return wh * 3600.0


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval [lo, hi]."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def almost_equal(a: float, b: float, rel: float = 1e-9, abs_: float = 1e-12) -> bool:
    """Tolerant float comparison used by invariant checks in the simulator."""
    return abs(a - b) <= max(rel * max(abs(a), abs(b)), abs_)
