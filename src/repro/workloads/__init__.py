"""Rodinia / CUDA-SDK workload models.

Each workload from the paper's Table II is implemented twice:

1. **A real numpy kernel** — the actual algorithm (k-means clustering,
   hotspot stencil, BFS, LU decomposition, n-body, pathfinder DP,
   quasirandom sequences, SRAD diffusion, stream clustering), with a
   partitioned variant proving that GreenGPU's work division preserves the
   computation's result.
2. **A resource-demand model** — flops/bytes/stall per work unit,
   calibrated so the simulated device reproduces the Table II utilization
   characterization at peak frequencies (see
   :mod:`repro.workloads.characteristics`).

The simulator runs on the demand models (Rodinia-scale inputs would be far
too slow in pure Python); the numpy kernels back the examples and the
functional correctness tests.
"""

from repro.workloads.base import (
    DemandModelWorkload,
    Phase,
    Workload,
    WorkloadProfile,
)
from repro.workloads.characteristics import (
    TABLE_II,
    get_profile,
    make_workload,
    workload_names,
)

__all__ = [
    "Workload",
    "WorkloadProfile",
    "Phase",
    "DemandModelWorkload",
    "TABLE_II",
    "get_profile",
    "make_workload",
    "workload_names",
]
