"""Workload abstractions for the simulated testbed.

A :class:`Workload` describes divisible, iterative work in the paper's
sense: an *iteration* is "the execution of a fixed amount of work" (§IV) —
a reduction point (kmeans), a barrier step (hotspot), or a data chunk —
and its operations repeat across iterations, so the previous iteration
predicts the next.

Work within an iteration is measured in *units* (normalized to 1.0 per
iteration).  The tier-1 divider assigns a fraction ``r`` of units to the
CPU; each side's units are converted to device demands by the workload's
phase generators.

:class:`WorkloadProfile` is the declarative description used by
:class:`DemandModelWorkload`: target utilizations at the calibration
point (peak frequencies, all work on the GPU), the iteration's nominal
GPU duration, the CPU/GPU per-unit speed ratio, and transfer sizes.
Fluctuating workloads (the paper's QG and streamcluster) carry several
:class:`Phase` entries that repeat within each iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.sim.activity import PhaseDemand
from repro.sim.cpu import CpuSpec
from repro.sim.gpu import GpuSpec


@dataclass(frozen=True, slots=True)
class Phase:
    """One utilization phase of a workload (weights sum to the iteration).

    ``u_core``/``u_mem`` are the GPU utilizations this phase exhibits at
    the calibration point; ``weight`` is the fraction of the iteration's
    GPU time spent in this phase.
    """

    weight: float
    u_core: float
    u_mem: float

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise WorkloadError("phase weight must be positive")
        for u in (self.u_core, self.u_mem):
            if not 0.0 <= u <= 1.0:
                raise WorkloadError("phase utilizations must be in [0, 1]")


@dataclass(frozen=True)
class WorkloadProfile:
    """Declarative Table-II-style characterization of one workload."""

    name: str
    description: str                     # Table II "Description" column
    enlargement: str                     # Table II "Enlargement" column
    phases: tuple[Phase, ...]            # GPU utilization phases (weights sum to 1)
    gpu_seconds_per_iteration: float     # at peak freqs, all work on the GPU
    cpu_gpu_time_ratio: float            # per-unit CPU time / GPU time at peak
    h2d_bytes_per_iteration: float       # input transfer if all on the GPU
    d2h_bytes_per_iteration: float       # result transfer if all on the GPU
    cpu_u_core: float = 0.80             # CPU-side compute busy fraction
    cpu_u_mem: float = 0.40              # CPU-side memory busy fraction
    # Non-divisible share of the iteration's GPU-side time: per-step grid
    # synchronization, launch sequences and host<->device staging that are
    # paid in full as long as the GPU participates at all, regardless of
    # how little work it gets.  Large for hotspot (the CUDA version moves
    # the grid every internal step), small for single-kernel workloads.
    serial_fraction: float = 0.02
    serial_u_core: float = 0.05          # GPU utilizations during serial part
    serial_u_mem: float = 0.30
    # How finely the serial tax interleaves with the divisible work.  On
    # real hardware the synchronization cost is paid in slivers (per
    # internal step / per chunk), far below nvidia-smi's sampling window,
    # so a monitor sees the *blend*, not alternating phases.  1 = one
    # contiguous serial block (only sensible for genuinely phase-like
    # serial work).
    serial_interleave: int = 32
    default_iterations: int = 20
    fluctuating: bool = False

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError(f"{self.name}: need at least one phase")
        total = sum(p.weight for p in self.phases)
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(
                f"{self.name}: phase weights sum to {total}, expected 1.0"
            )
        if self.gpu_seconds_per_iteration <= 0.0:
            raise WorkloadError(f"{self.name}: iteration duration must be positive")
        if self.cpu_gpu_time_ratio <= 0.0:
            raise WorkloadError(f"{self.name}: cpu/gpu time ratio must be positive")
        if self.h2d_bytes_per_iteration < 0.0 or self.d2h_bytes_per_iteration < 0.0:
            raise WorkloadError(f"{self.name}: transfer sizes must be non-negative")
        for u in (self.cpu_u_core, self.cpu_u_mem, self.serial_u_core, self.serial_u_mem):
            if not 0.0 <= u <= 1.0:
                raise WorkloadError(f"{self.name}: utilizations must be in [0, 1]")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise WorkloadError(f"{self.name}: serial fraction must be in [0, 1)")
        if self.serial_interleave < 1:
            raise WorkloadError(f"{self.name}: serial interleave must be >= 1")
        if self.default_iterations < 1:
            raise WorkloadError(f"{self.name}: need at least one iteration")

    @property
    def mean_u_core(self) -> float:
        """Time-weighted mean GPU core utilization at the calibration point."""
        return sum(p.weight * p.u_core for p in self.phases)

    @property
    def mean_u_mem(self) -> float:
        """Time-weighted mean GPU memory utilization at the calibration point."""
        return sum(p.weight * p.u_mem for p in self.phases)


class Workload:
    """Interface consumed by the runtime executor."""

    name: str = "abstract"

    def gpu_phases(self, units: float, iteration: int) -> list[PhaseDemand]:
        """Demands for ``units`` of this iteration's work on the GPU."""
        raise NotImplementedError

    def cpu_phases(self, units: float, iteration: int) -> list[PhaseDemand]:
        """Demands for ``units`` of this iteration's work on the CPU."""
        raise NotImplementedError

    def h2d_bytes(self, units: float) -> float:
        """Host-to-device transfer volume for ``units`` of work."""
        raise NotImplementedError

    def d2h_bytes(self, units: float) -> float:
        """Device-to-host transfer volume for ``units`` of work."""
        raise NotImplementedError

    @property
    def default_iterations(self) -> int:
        return 20

    def cache_fingerprint(self):
        """Canonicalizable description of all demand-shaping state.

        Used by :mod:`repro.cache` to content-address run results.  The
        default ``None`` opts out of caching — correct for arbitrary
        subclasses, whose phase generators may close over anything.
        Subclasses whose demands are a pure function of declarative state
        should return that state (see :class:`DemandModelWorkload`).
        """
        return None


class DemandModelWorkload(Workload):
    """Workload whose demands are synthesized from a :class:`WorkloadProfile`.

    Calibration: at peak frequencies with all work on the GPU, one
    iteration takes ``profile.gpu_seconds_per_iteration`` seconds, split
    across the profile's phases by weight, and each phase exhibits exactly
    its (u_core, u_mem) pair.  The stall component is solved per phase
    from the GPU's roofline model (see
    :meth:`repro.sim.perf.RooflineModel.stall_for_utilizations`).

    CPU demands are analogous, calibrated against the CPU spec so that one
    unit of work takes ``cpu_gpu_time_ratio`` times its GPU duration at
    the CPU's peak P-state.
    """

    def __init__(self, profile: WorkloadProfile, gpu: GpuSpec, cpu: CpuSpec):
        self.profile = profile
        self.name = profile.name
        self._gpu_spec = gpu
        self._cpu_spec = cpu
        self._gpu_unit_phases = self._build_gpu_unit_phases(profile, gpu)
        self._gpu_serial_phase = self._build_gpu_serial_phase(profile, gpu)
        self._cpu_unit_phase = self._build_cpu_unit_phase(profile, cpu)

    @staticmethod
    def _phase_for(
        u_core: float,
        u_mem: float,
        seconds: float,
        compute_rate: float,
        bandwidth: float,
        roofline,
    ) -> PhaseDemand:
        stall_fraction = roofline.stall_for_utilizations(u_core, u_mem)
        return PhaseDemand(
            flops=u_core * seconds * compute_rate,
            bytes=u_mem * seconds * bandwidth,
            stall_s=stall_fraction * seconds,
        )

    @classmethod
    def _build_gpu_unit_phases(
        cls, profile: WorkloadProfile, gpu: GpuSpec
    ) -> tuple[PhaseDemand, ...]:
        divisible_s = (1.0 - profile.serial_fraction) * profile.gpu_seconds_per_iteration
        return tuple(
            cls._phase_for(
                phase.u_core,
                phase.u_mem,
                phase.weight * divisible_s,
                gpu.peak_compute_rate,
                gpu.peak_bandwidth,
                gpu.roofline,
            )
            for phase in profile.phases
        )

    @classmethod
    def _build_gpu_serial_phase(
        cls, profile: WorkloadProfile, gpu: GpuSpec
    ) -> PhaseDemand | None:
        if profile.serial_fraction == 0.0:
            return None
        return cls._phase_for(
            profile.serial_u_core,
            profile.serial_u_mem,
            profile.serial_fraction * profile.gpu_seconds_per_iteration,
            gpu.peak_compute_rate,
            gpu.peak_bandwidth,
            gpu.roofline,
        )

    @classmethod
    def _build_cpu_unit_phase(cls, profile: WorkloadProfile, cpu: CpuSpec) -> PhaseDemand:
        divisible_s = (1.0 - profile.serial_fraction) * profile.gpu_seconds_per_iteration
        return cls._phase_for(
            profile.cpu_u_core,
            profile.cpu_u_mem,
            profile.cpu_gpu_time_ratio * divisible_s,
            cpu.peak_compute_rate,
            cpu.host_bandwidth,
            cpu.roofline,
        )

    # -- Workload interface ---------------------------------------------------------

    def gpu_phases(self, units: float, iteration: int) -> list[PhaseDemand]:
        if units < 0.0:
            raise WorkloadError("units must be non-negative")
        if units == 0.0:
            return []
        divisible = [d.scaled(units) for d in self._gpu_unit_phases]
        if self._gpu_serial_phase is None:
            return divisible
        # The serial part is paid in full whenever the GPU participates,
        # interleaved in slivers *within* each divisible phase: a real
        # sampling window sees the serial/compute blend, while the
        # workload's macro phase structure (what makes QG and SC
        # fluctuating) is preserved.  Serial time allocates to phases
        # proportionally to their weights.
        n = self.profile.serial_interleave
        phases: list[PhaseDemand] = []
        for demand, phase in zip(divisible, self.profile.phases):
            chunks = max(1, round(n * phase.weight))
            serial_chunk = self._gpu_serial_phase.scaled(phase.weight / chunks)
            demand_chunk = demand.scaled(1.0 / chunks)
            for _ in range(chunks):
                phases.append(serial_chunk)
                phases.append(demand_chunk)
        return phases

    def cpu_phases(self, units: float, iteration: int) -> list[PhaseDemand]:
        if units < 0.0:
            raise WorkloadError("units must be non-negative")
        if units == 0.0:
            return []
        return [self._cpu_unit_phase.scaled(units)]

    def h2d_bytes(self, units: float) -> float:
        return units * self.profile.h2d_bytes_per_iteration

    def d2h_bytes(self, units: float) -> float:
        return units * self.profile.d2h_bytes_per_iteration

    @property
    def default_iterations(self) -> int:
        return self.profile.default_iterations

    def cache_fingerprint(self):
        """Profile plus the device specs the demands were calibrated against."""
        return {
            "profile": self.profile,
            "gpu_spec": self._gpu_spec,
            "cpu_spec": self._cpu_spec,
        }
