"""The *bfs* workload (Rodinia).

Table II: "65536 iterations" — high core and memory utilization (graph
traversal saturates both instruction issue and memory bandwidth with its
irregular accesses).

The functional kernel is level-synchronous breadth-first search in CSR
form, the same structure as Rodinia's bfs: each level expands the current
frontier and marks newly discovered vertices.  A level is a natural
tier-1 iteration (a barrier separates levels), and the frontier vertices
divide between the CPU and GPU — each side expands its slice of the
frontier and the discoveries merge at the barrier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.partition import partition_slices
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import make_workload

UNVISITED = -1


@dataclass(frozen=True)
class CsrGraph:
    """Compressed-sparse-row adjacency (directed edges)."""

    indptr: np.ndarray   # (n + 1,)
    indices: np.ndarray  # (m,)

    def __post_init__(self) -> None:
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise WorkloadError("CSR arrays must be 1-D")
        if len(self.indptr) < 2:
            raise WorkloadError("graph needs at least one vertex")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise WorkloadError("malformed indptr")
        if np.any(np.diff(self.indptr) < 0):
            raise WorkloadError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.n
        ):
            raise WorkloadError("edge endpoint out of range")

    @property
    def n(self) -> int:
        return len(self.indptr) - 1

    @property
    def m(self) -> int:
        return len(self.indices)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]


def generate_graph(n: int = 2048, avg_degree: int = 8, seed: int = 0) -> CsrGraph:
    """Random graph in Rodinia's style (uniform degree-bounded edges).

    A chain backbone guarantees connectivity so BFS reaches every vertex.
    """
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(max(avg_degree - 1, 1), size=n)
    targets = [rng.integers(0, n, size=d) for d in degrees]
    # Backbone edge v -> v+1 keeps the graph connected from vertex 0.
    adjacency = [
        np.concatenate((t, [v + 1])) if v + 1 < n else t
        for v, t in enumerate(targets)
    ]
    counts = np.array([len(a) for a in adjacency])
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.concatenate(adjacency) if n else np.empty(0, dtype=np.int64)
    return CsrGraph(indptr=indptr, indices=indices.astype(np.int64))


def _expand(graph: CsrGraph, frontier: np.ndarray) -> np.ndarray:
    """All neighbours of a frontier slice (with duplicates)."""
    if frontier.size == 0:
        return np.empty(0, dtype=np.int64)
    counts = graph.indptr[frontier + 1] - graph.indptr[frontier]
    out = np.empty(int(counts.sum()), dtype=np.int64)
    pos = 0
    for v, c in zip(frontier, counts):
        out[pos : pos + c] = graph.indices[graph.indptr[v] : graph.indptr[v] + c]
        pos += c
    return out


def bfs_level(
    graph: CsrGraph, depth: np.ndarray, frontier: np.ndarray, level: int, r: float = 0.0
) -> np.ndarray:
    """Expand one BFS level, optionally divided by CPU share ``r``.

    Marks newly discovered vertices with ``level + 1`` in ``depth``
    (in place) and returns the next frontier (sorted, unique).
    """
    cpu_sl, gpu_sl = partition_slices(len(frontier), r)
    discovered_parts = [
        _expand(graph, frontier[sl]) for sl in (cpu_sl, gpu_sl)
    ]
    discovered = np.concatenate(discovered_parts) if discovered_parts else frontier[:0]
    if discovered.size == 0:
        return discovered
    fresh = np.unique(discovered[depth[discovered] == UNVISITED])
    depth[fresh] = level + 1
    return fresh


def bfs(graph: CsrGraph, source: int = 0, r: float = 0.0) -> np.ndarray:
    """Full BFS from ``source``; returns per-vertex depth (-1 unreachable)."""
    if not 0 <= source < graph.n:
        raise WorkloadError(f"source {source} out of range")
    depth = np.full(graph.n, UNVISITED, dtype=np.int64)
    depth[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        frontier = bfs_level(graph, depth, frontier, level, r)
        level += 1
    return depth


def workload(**overrides: object) -> DemandModelWorkload:
    """The simulator-facing bfs workload (Table II demand model)."""
    return make_workload("bfs", **overrides)
