"""Table II: the workload characterization registry.

Each :class:`~repro.workloads.base.WorkloadProfile` below encodes one row
of the paper's Table II.  Utilization targets translate the table's
qualitative classes (high / medium / low / fluctuating) into calibration
numbers, with three quantitative anchors from the paper's text:

- *streamcluster* is memory-bounded (§III-A) and its memory frequency
  converges to 820 MHz — one level below peak — in Fig. 5b, implying a
  dominant-phase memory utilization near that level's umean (0.8);
- *streamcluster*'s core frequency tolerates throttling to ~410 MHz before
  becoming the bottleneck (§III-A), implying a core utilization near 0.55;
- *nbody* is core-bounded (§III-A): memory can be throttled across the
  whole ladder with minor loss, implying memory utilization <= ~0.5.

``cpu_gpu_time_ratio`` (per-unit CPU time / GPU time at peak) anchors the
tier-1 behaviour: kmeans' ratio puts the equal-finish division near the
paper's 15-20 % CPU (Fig. 7a) and hotspot's near 50/50 (Fig. 7b —
hotspot's CUDA version pays heavy per-step grid transfers, so its
effective GPU advantage collapses to parity).

Iteration durations honour the tier-decoupling rule (>= 40 x the 3 s
scaling interval) for the workloads used in division experiments; the
tier-2-only workloads use shorter iterations since their experiments run
the GPU continuously.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import WorkloadError
from repro.sim.cpu import CpuSpec
from repro.sim.gpu import GpuSpec
from repro.workloads.base import DemandModelWorkload, Phase, WorkloadProfile

_MB = 1.0e6

TABLE_II: dict[str, WorkloadProfile] = {}


def _register(profile: WorkloadProfile) -> WorkloadProfile:
    if profile.name in TABLE_II:
        raise WorkloadError(f"duplicate workload {profile.name!r}")
    TABLE_II[profile.name] = profile
    return profile


BFS = _register(
    WorkloadProfile(
        name="bfs",
        description="High core and memory utilization",
        enlargement="65536 iterations",
        # Near-saturated on both domains: the WMA scaler correctly keeps
        # the clocks at peak, so bfs shows the smallest saving of the
        # suite (paper §VII-A: "for the applications with high
        # utilization rates, such as bfs, the energy savings are
        # smaller").
        phases=(Phase(1.0, 0.85, 0.78),),
        gpu_seconds_per_iteration=30.0,
        cpu_gpu_time_ratio=3.0,
        h2d_bytes_per_iteration=48.0 * _MB,
        d2h_bytes_per_iteration=8.0 * _MB,
        cpu_u_core=0.70,
        cpu_u_mem=0.55,
    )
)

LUD = _register(
    WorkloadProfile(
        name="lud",
        description="Medium core utilization, low memory utilization",
        enlargement="10 iterations; 8192 by 8192 matrix",
        phases=(Phase(1.0, 0.55, 0.22),),
        gpu_seconds_per_iteration=30.0,
        cpu_gpu_time_ratio=4.0,
        h2d_bytes_per_iteration=64.0 * _MB,
        d2h_bytes_per_iteration=64.0 * _MB,
        default_iterations=10,
    )
)

NBODY = _register(
    WorkloadProfile(
        name="nbody",
        description="High core and memory utilization",
        enlargement="50 iterations",
        phases=(Phase(1.0, 0.90, 0.42),),
        gpu_seconds_per_iteration=30.0,
        cpu_gpu_time_ratio=12.0,
        h2d_bytes_per_iteration=16.0 * _MB,
        d2h_bytes_per_iteration=16.0 * _MB,
        cpu_u_core=0.90,
        cpu_u_mem=0.20,
        default_iterations=50,
    )
)

PATHFINDER = _register(
    WorkloadProfile(
        name="pathfinder",
        description="Low core and memory utilization",
        enlargement="2048 by 2048 dimensions",
        phases=(Phase(1.0, 0.30, 0.25),),
        gpu_seconds_per_iteration=30.0,
        cpu_gpu_time_ratio=2.5,
        h2d_bytes_per_iteration=16.0 * _MB,
        d2h_bytes_per_iteration=0.1 * _MB,
    )
)

QUASIRANDOM = _register(
    WorkloadProfile(
        name="quasirandom",
        description="Utilizations highly fluctuate",
        enlargement="600 iterations; 16777216 points",
        phases=(
            Phase(0.5, 0.85, 0.20),
            Phase(0.5, 0.25, 0.65),
        ),
        gpu_seconds_per_iteration=30.0,
        cpu_gpu_time_ratio=6.0,
        h2d_bytes_per_iteration=4.0 * _MB,
        d2h_bytes_per_iteration=64.0 * _MB,
        fluctuating=True,
    )
)

SRAD = _register(
    WorkloadProfile(
        name="srad_v2",
        description="High core utilization, medium memory utilization",
        enlargement="2048 columns by 2048 rows",
        phases=(Phase(1.0, 0.82, 0.45),),
        gpu_seconds_per_iteration=30.0,
        cpu_gpu_time_ratio=5.0,
        h2d_bytes_per_iteration=32.0 * _MB,
        d2h_bytes_per_iteration=32.0 * _MB,
    )
)

HOTSPOT = _register(
    WorkloadProfile(
        name="hotspot",
        description="Medium core utilization, low memory utilization",
        enlargement="2048 by 2048 grids of 600 iterations",
        # The divisible stencil phase runs at (0.62, 0.30); the 30 %
        # serial synchronization tax at (0.05, 0.30) pulls the measured
        # whole-iteration averages to ~(0.45, 0.30) — medium core, low
        # memory, per Table II.
        phases=(Phase(1.0, 0.62, 0.30),),
        gpu_seconds_per_iteration=130.0,
        # Hotspot's CUDA version synchronizes the whole grid across the bus
        # every internal step, so ~30 % of the GPU-side iteration time is a
        # non-divisible serial tax.  The divisible remainder runs ~1.75x
        # slower per unit on the CPU, which puts both the equal-finish point
        # and the static energy minimum exactly at 50/50 (paper Fig. 7b).
        cpu_gpu_time_ratio=1.75,
        serial_fraction=0.30,
        # The grid sync is paid on every one of the 600 internal steps; a
        # fine interleave keeps any sampling window seeing the blend.
        serial_interleave=128,
        h2d_bytes_per_iteration=32.0 * _MB,
        d2h_bytes_per_iteration=32.0 * _MB,
        cpu_u_core=0.75,
        cpu_u_mem=0.50,
    )
)

KMEANS = _register(
    WorkloadProfile(
        name="kmeans",
        description="Medium core utilization, low memory utilization",
        enlargement="988040 data points",
        phases=(Phase(1.0, 0.60, 0.25),),
        gpu_seconds_per_iteration=130.0,
        # Equal-finish at r = 1/5.5 ~ 0.186: off the 5 % division grid, so
        # the divider parks on {0.15, 0.20} via the oscillation safeguard —
        # converging to 20/80 from above like the paper (§VII-B) — while
        # the static energy minimum lands on 15/85, also like the paper.
        cpu_gpu_time_ratio=4.5,
        h2d_bytes_per_iteration=80.0 * _MB,
        d2h_bytes_per_iteration=4.0 * _MB,
        cpu_u_core=0.80,
        cpu_u_mem=0.45,
    )
)

STREAMCLUSTER = _register(
    WorkloadProfile(
        name="streamcluster",
        description="Utilizations highly fluctuate",
        enlargement="65536 points with 512 dimensions",
        # The dominant pgain scan phase streams points at ~74 % of peak
        # bandwidth; at 820 MHz the measured utilization sits just below
        # that level's umean, so the WMA parks the memory clock one level
        # below peak — the exact convergence the paper traces in Fig. 5b.
        phases=(
            Phase(0.7, 0.50, 0.74),
            Phase(0.3, 0.30, 0.50),
        ),
        gpu_seconds_per_iteration=30.0,
        cpu_gpu_time_ratio=4.0,
        h2d_bytes_per_iteration=64.0 * _MB,
        d2h_bytes_per_iteration=2.0 * _MB,
        cpu_u_core=0.65,
        cpu_u_mem=0.60,
        fluctuating=True,
    )
)

#: Short names used in the paper's figures.
ALIASES = {
    "PF": "pathfinder",
    "QG": "quasirandom",
    "SC": "streamcluster",
    "srad": "srad_v2",
}


def workload_names() -> list[str]:
    """Canonical Table II workload names, in the paper's order."""
    return list(TABLE_II)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by canonical name or paper alias."""
    canonical = ALIASES.get(name, name)
    try:
        return TABLE_II[canonical]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(TABLE_II)} "
            f"plus aliases {sorted(ALIASES)}"
        ) from None


def make_workload(
    name: str,
    gpu: GpuSpec | None = None,
    cpu: CpuSpec | None = None,
    **overrides: object,
) -> DemandModelWorkload:
    """Instantiate a Table II workload against a testbed's device specs.

    ``overrides`` replace profile fields (e.g. shorter iterations for
    tests: ``make_workload("kmeans", gpu_seconds_per_iteration=5.0)``).
    """
    profile = get_profile(name)
    if overrides:
        profile = replace(profile, **overrides)  # type: ignore[arg-type]
    if gpu is None or cpu is None:
        from repro.sim.calibration import geforce_8800_gtx_spec, phenom_ii_x2_spec

        gpu = gpu or geforce_8800_gtx_spec()
        cpu = cpu or phenom_ii_x2_spec()
    return DemandModelWorkload(profile, gpu, cpu)
