"""Synthetic workload generation for stress tests and ablations.

The Table II workloads pin down nine specific utilization profiles; the
generators here produce arbitrary ones — random stationary profiles,
alternating-phase (fluctuating) profiles, and parametric families used by
the ablation benches to map where GreenGPU's savings come from.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.sim.cpu import CpuSpec
from repro.sim.gpu import GpuSpec
from repro.sim.perf import RooflineModel
from repro.workloads.base import DemandModelWorkload, Phase, WorkloadProfile


def feasible_pair(
    rng: np.random.Generator, roofline: RooflineModel, margin: float = 0.02
) -> tuple[float, float]:
    """Draw a (u_core, u_mem) pair achievable under ``roofline``.

    Rejection-samples the unit square against the overlap-exponent
    feasibility region (p-norm <= 1 - margin).
    """
    if not 0.0 <= margin < 1.0:
        raise WorkloadError("margin must be in [0, 1)")
    for _ in range(10_000):
        u_core = float(rng.uniform(0.0, 1.0))
        u_mem = float(rng.uniform(0.0, 1.0))
        if roofline.utilization_norm(u_core, u_mem) <= 1.0 - margin:
            return u_core, u_mem
    raise WorkloadError("could not sample a feasible utilization pair")


def random_profile(
    seed: int,
    gpu: GpuSpec,
    n_phases: int = 1,
    gpu_seconds_per_iteration: float = 20.0,
    cpu_gpu_time_ratio: float | None = None,
    name: str | None = None,
) -> WorkloadProfile:
    """A random, feasible workload profile (stationary or fluctuating)."""
    if n_phases < 1:
        raise WorkloadError("need at least one phase")
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.ones(n_phases) * 4.0)
    phases = tuple(
        Phase(float(w), *feasible_pair(rng, gpu.roofline))
        for w in weights
    )
    ratio = (
        float(rng.uniform(1.0, 10.0))
        if cpu_gpu_time_ratio is None
        else cpu_gpu_time_ratio
    )
    return WorkloadProfile(
        name=name or f"synthetic-{seed}",
        description="randomly generated profile",
        enlargement="n/a",
        phases=phases,
        gpu_seconds_per_iteration=gpu_seconds_per_iteration,
        cpu_gpu_time_ratio=ratio,
        h2d_bytes_per_iteration=float(rng.uniform(1e6, 1e8)),
        d2h_bytes_per_iteration=float(rng.uniform(1e5, 1e7)),
        fluctuating=n_phases > 1,
    )


def uniform_profile(
    u_core: float,
    u_mem: float,
    gpu_seconds_per_iteration: float = 20.0,
    cpu_gpu_time_ratio: float = 4.0,
    serial_fraction: float = 0.02,
    name: str | None = None,
) -> WorkloadProfile:
    """A single-phase profile at an exact utilization point.

    The ablation benches sweep this over the utilization plane to map
    the savings landscape of the WMA scaler.
    """
    return WorkloadProfile(
        name=name or f"uniform-{u_core:.2f}-{u_mem:.2f}",
        description="parametric single-phase profile",
        enlargement="n/a",
        phases=(Phase(1.0, u_core, u_mem),),
        gpu_seconds_per_iteration=gpu_seconds_per_iteration,
        cpu_gpu_time_ratio=cpu_gpu_time_ratio,
        h2d_bytes_per_iteration=8.0e6,
        d2h_bytes_per_iteration=1.0e6,
        serial_fraction=serial_fraction,
    )


def synthetic_workload(
    profile: WorkloadProfile, gpu: GpuSpec, cpu: CpuSpec
) -> DemandModelWorkload:
    """Instantiate a generated profile against device specs."""
    return DemandModelWorkload(profile, gpu, cpu)
